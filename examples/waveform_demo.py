"""Waveform demo: watch the MSROPM's computation cycles (the paper's Figure 3).

Run with::

    python examples/waveform_demo.py

A small King's graph is solved with full trajectory recording; the script then
prints, for each control interval (random initialization, coupled annealing,
SHIL 1 lock, re-initialization, partitioned annealing, SHIL 1 / SHIL 2 lock),
how many distinct phase clusters the oscillators occupy — 2 after the first
SHIL, 4 after the final stage — and renders the reconstructed output voltage
of two oscillators as ASCII art.
"""

from __future__ import annotations

import numpy as np

from repro import MSROPMConfig
from repro.experiments import render_figure3, run_figure3
from repro.ising import phases_to_spins


def main() -> None:
    config = MSROPMConfig(num_colors=4, seed=7, record_every=1)
    result = run_figure3(rows=4, cols=4, config=config, seed=7, num_traced_oscillators=4)

    print(render_figure3(result))

    # Show how the final phases map onto the four color read-out bins.
    final_phases = result.iteration.stage_results[-1].final_phases
    colors = phases_to_spins(final_phases, 4)
    print("Final phase read-out (oscillator index -> color):")
    for index, color in enumerate(colors):
        print(f"  ROSC {index:2d}: phase {np.mod(final_phases[index], 2 * np.pi):5.2f} rad -> color {color}")
    print()
    print(f"4-coloring accuracy of this run: {result.iteration.accuracy:.3f}")
    print(f"Total modeled run time: {result.iteration.run_time * 1e9:.0f} ns")


if __name__ == "__main__":
    main()
