"""Extension demo: 8-coloring with three solution stages.

The paper proposes extending the MSROPM to more colors by adding solution
stages and phase-shifted SHILs.  This example exercises that extension: a
planar graph (a random Delaunay triangulation) is colored with 8 colors using
a three-stage machine (offsets 0, pi/4, ..., yielding 8 equally spaced lock
phases), and the result is compared with the 4-color run and a classical
DSATUR coloring.

Run with::

    python examples/eight_coloring_extension.py
"""

from __future__ import annotations

from repro import MSROPM, MSROPMConfig
from repro.analysis import format_table
from repro.graphs import dsatur_coloring, random_planar_triangulation


def main() -> None:
    graph = random_planar_triangulation(120, seed=11)
    print(f"Problem: coloring a random planar triangulation with "
          f"{graph.num_nodes} nodes / {graph.num_edges} edges")
    print()

    rows = []
    for num_colors in (4, 8):
        config = MSROPMConfig(num_colors=num_colors, seed=3)
        machine = MSROPM(graph, config, stage1_reference_cut=graph.num_edges)
        result = machine.solve(iterations=8, seed=3)
        rows.append([
            f"MSROPM, {num_colors} colors ({config.num_stages} stages)",
            f"{result.best_accuracy:.3f}",
            f"{result.accuracies.mean():.3f}",
            f"{machine.time_to_solution() * 1e9:.0f} ns",
        ])
        print(f"finished {num_colors}-color run "
              f"(best accuracy {result.best_accuracy:.3f}, "
              f"{config.num_stages} stages, {machine.time_to_solution() * 1e9:.0f} ns per run)")

    dsatur = dsatur_coloring(graph)
    rows.append([
        f"DSATUR ({len(dsatur.used_colors())} colors used)",
        f"{dsatur.accuracy(graph):.3f}",
        f"{dsatur.accuracy(graph):.3f}",
        "software",
    ])

    print()
    print(format_table(
        ("solver", "best accuracy", "mean accuracy", "time per run"),
        rows,
        title="4-coloring vs 8-coloring (3-stage extension) on a planar triangulation",
    ))
    print()
    print("With 8 colors the constraint graph is far under-constrained, so the")
    print("3-stage machine should reach (near-)proper colorings even more easily")
    print("than the 2-stage 4-coloring run — at the cost of a 90 ns run time.")


if __name__ == "__main__":
    main()
