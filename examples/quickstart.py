"""Quickstart: solve the paper's 49-node 4-coloring benchmark with the MSROPM.

Run with::

    python examples/quickstart.py

The script builds the 7x7 King's graph (the smallest benchmark of the paper),
runs the multi-stage ring-oscillator Potts machine for a handful of
iterations, and prints the per-iteration accuracies together with the best
solution found — mirroring the paper's observation that the 49-node problem is
solved exactly in a fraction of the runs and near-exactly on average.
"""

from __future__ import annotations

from repro import MSROPM, MSROPMConfig, kings_graph
from repro.analysis import format_table


def main() -> None:
    graph = kings_graph(7, 7)
    print(f"Problem: 4-coloring of a King's graph with {graph.num_nodes} nodes / {graph.num_edges} edges")
    print(f"Potts search space: 4^{graph.num_nodes}")
    print()

    config = MSROPMConfig(num_colors=4, seed=2025)
    machine = MSROPM(graph, config)
    print(f"Machine: {machine.num_oscillators} coupled ring oscillators at "
          f"{config.oscillator_frequency / 1e9:.1f} GHz, "
          f"{config.total_run_time * 1e9:.0f} ns per run")
    print()

    result = machine.solve(iterations=10, seed=2025)

    rows = [
        [item.iteration_index,
         f"{item.stage1_accuracy:.3f}",
         f"{item.accuracy:.3f}",
         "yes" if item.is_exact else "no"]
        for item in result.iterations
    ]
    print(format_table(
        ("iteration", "stage-1 (max-cut) accuracy", "4-coloring accuracy", "exact"),
        rows,
        title="Per-iteration results",
    ))
    print()
    print(f"Best accuracy:   {result.best_accuracy:.3f}")
    print(f"Mean accuracy:   {result.accuracies.mean():.3f}")
    print(f"Exact solutions: {result.num_exact_solutions}/{result.num_iterations}")
    print(f"Estimated power: {machine.estimated_power() * 1e3:.1f} mW")

    best = result.best.coloring
    print()
    print("Best coloring (rows of the 7x7 board):")
    for r in range(7):
        print("  " + " ".join(str(best.color_of((r, c))) for c in range(7)))


if __name__ == "__main__":
    main()
