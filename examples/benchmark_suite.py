"""Run the paper's benchmark suite (scaled) and compare against software baselines.

Run with::

    python examples/benchmark_suite.py [--scale 0.25] [--iterations 10]

For each benchmark problem size the script runs the MSROPM, the simulated-
annealing and TabuCol software baselines, and the exact solver, then prints a
side-by-side accuracy table — the workload of the paper's Table 1 enriched
with the software baselines the hardware is meant to accelerate.

The MSROPM solves route through the experiment runtime: ``--workers`` shards
the problems across processes and results land in the default on-disk cache,
so a rerun (or a prior ``msropm table1`` under the same seeds) skips them.
"""

from __future__ import annotations

import argparse

from repro import ExperimentRunner, MSROPMConfig, PowerModel
from repro.runtime.cache import default_cache_dir
from repro.analysis import format_table
from repro.baselines import anneal_coloring, exact_coloring, tabucol
from repro.core.metrics import coloring_accuracy
from repro.experiments import scaled_iterations, scaled_problem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="problem scale in (0, 1]; 1.0 runs the paper's exact sizes")
    parser.add_argument("--iterations", type=int, default=None,
                        help="MSROPM iterations per problem (default: scaled from the paper's 40)")
    parser.add_argument("--sizes", type=int, nargs="+", default=[49, 400, 1024],
                        help="requested problem sizes (paper: 49 400 1024 2116)")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the MSROPM solves")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    args = parser.parse_args()

    iterations = args.iterations or scaled_iterations(args.scale)
    config = MSROPMConfig(num_colors=4, seed=args.seed)
    runner = ExperimentRunner(
        workers=args.workers,
        cache_dir=None if args.no_cache else default_cache_dir(),
    )

    rows = []
    for requested in args.sizes:
        problem = scaled_problem(requested, scale=args.scale)
        graph = problem.graph
        result = runner.solve(problem.spec, config, iterations=iterations, seed=args.seed + requested)

        sa = anneal_coloring(graph, 4, seed=args.seed)
        tabu = tabucol(graph, 4, seed=args.seed)
        exact = exact_coloring(graph, 4)

        rows.append([
            f"{requested}-node (simulated as {graph.num_nodes})",
            f"{result.best_accuracy:.3f}",
            f"{result.accuracies.mean():.3f}",
            f"{coloring_accuracy(graph, sa):.3f}",
            f"{coloring_accuracy(graph, tabu):.3f}",
            f"{coloring_accuracy(graph, exact):.3f}" if exact is not None else "n/a",
            f"{PowerModel().total_power(graph.num_nodes, graph.num_edges) * 1e3:.1f} mW",
        ])
        print(f"finished {requested}-node problem "
              f"({iterations} MSROPM iterations, best accuracy {result.best_accuracy:.3f})")

    print()
    print(format_table(
        ("problem", "MSROPM best", "MSROPM mean", "SA", "TabuCol", "exact", "modeled power"),
        rows,
        title="MSROPM vs software baselines (4-coloring accuracy)",
    ))


if __name__ == "__main__":
    main()
