"""Collect the paper-vs-measured numbers recorded in EXPERIMENTS.md.

Run with::

    python examples/collect_paper_numbers.py [--iterations 40]

This runs the full-size benchmark problems (49/400/1024/2116-node King's
graphs) with the paper's 40 iterations each, prints the Table 1 rows, the
Figure 5 summary statistics (per-problem accuracy series, stage-1 correlation,
Hamming-distance spread), and the measured Table 2 rows.  It is the script
that produced the measured values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis import format_table, text_histogram
from repro.circuit import PAPER_POWER_MW, PowerModel
from repro.core import MSROPM, MSROPMConfig
from repro.experiments import run_table2
from repro.graphs import kings_graph
from repro.ising import kings_graph_reference_cut


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--sizes", type=int, nargs="+", default=[49, 400, 1024, 2116])
    parser.add_argument("--seed", type=int, default=2025)
    args = parser.parse_args()

    sides = {49: 7, 400: 20, 1024: 32, 2116: 46}
    config = MSROPMConfig(num_colors=4, seed=args.seed)
    power_model = PowerModel()

    table1_rows = []
    fig5_blocks = []
    for size in args.sizes:
        side = sides[size]
        graph = kings_graph(side, side)
        machine = MSROPM(graph, config)
        start = time.time()
        result = machine.solve(iterations=args.iterations, seed=args.seed + size)
        elapsed = time.time() - start
        power_mw = power_model.total_power_mw(graph.num_nodes, graph.num_edges)
        table1_rows.append([
            f"{size}-node",
            f"4^{size}",
            args.iterations,
            f"{power_mw:.1f} mW (paper {PAPER_POWER_MW[size]:.1f} mW)",
            f"{result.best_accuracy:.2f}",
            f"{result.accuracies.mean():.3f}",
            result.num_exact_solutions,
            f"{elapsed:.0f} s",
        ])
        distances = result.hamming_distances()
        fig5_blocks.append(
            "\n".join(
                [
                    f"--- {size}-node problem ({args.iterations} iterations) ---",
                    f"4-coloring accuracy:  best {result.best_accuracy:.3f}, "
                    f"worst {result.accuracies.min():.3f}, mean {result.accuracies.mean():.3f}",
                    f"stage-1 max-cut:      best {result.stage1_accuracies.max():.3f}, "
                    f"worst {result.stage1_accuracies.min():.3f}, mean {result.stage1_accuracies.mean():.3f}",
                    f"stage-1 vs final correlation: {result.stage_correlation():+.3f}",
                    f"Hamming distances:    min {distances.min():.3f}, max {distances.max():.3f}, "
                    f"mean {distances.mean():.3f}",
                    text_histogram(distances, num_bins=10, value_range=(0.0, 1.0), label="Hamming histogram:"),
                ]
            )
        )
        print(f"finished {size}-node problem in {elapsed:.0f} s "
              f"(best {result.best_accuracy:.3f}, mean {result.accuracies.mean():.3f})", flush=True)

    print()
    print(format_table(
        ("Graph size", "Search space", "Iterations", "Average power", "Top accuracy",
         "Mean accuracy", "Exact solutions", "Wall clock"),
        table1_rows,
        title="Table 1 (measured, full problem sizes)",
    ))
    print()
    print("Figure 5 summaries")
    for block in fig5_blocks:
        print(block)
        print()

    print("Table 2 (measured rows, full scale)")
    table2 = run_table2(msropm_nodes=2116, comparison_nodes=400, iterations=min(args.iterations, 20),
                        scale=1.0, config=config, seed=args.seed)
    print(table2.render())


if __name__ == "__main__":
    main()
