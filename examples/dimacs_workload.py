"""DIMACS workload demo: solve an externally supplied ``.col`` instance.

Run with::

    python examples/dimacs_workload.py [path/to/instance.col]

If no path is given, the script generates a King's-graph instance, writes it
to a temporary DIMACS ``.col`` file and reads it back — demonstrating the full
round trip an external benchmark instance would take: parse the file, check
4-colorability bounds, map the graph onto the oscillator fabric, run the
MSROPM, and report accuracy against the SAT-based exact baseline.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import MSROPM, MSROPMConfig
from repro.baselines import exact_coloring
from repro.core.metrics import coloring_accuracy
from repro.graphs import (
    chromatic_number_bounds,
    degree_statistics,
    kings_graph,
    read_dimacs,
    write_dimacs,
)


def load_instance(argv: list) -> tuple:
    """Return (graph, description) from the CLI argument or a generated fallback."""
    if len(argv) > 1:
        path = Path(argv[1])
        return read_dimacs(path), f"DIMACS instance {path.name}"
    # No instance supplied: write and re-read a generated one to exercise the I/O path.
    graph = kings_graph(8, 8)
    with tempfile.NamedTemporaryFile("w", suffix=".col", delete=False) as handle:
        path = Path(handle.name)
    write_dimacs(graph, path, comment="generated 8x8 King's graph")
    return read_dimacs(path), f"generated 8x8 King's graph round-tripped through {path}"


def main() -> None:
    graph, description = load_instance(sys.argv)
    stats = degree_statistics(graph)
    lower, upper = chromatic_number_bounds(graph)
    print(f"Workload: {description}")
    print(f"  nodes={graph.num_nodes} edges={graph.num_edges} "
          f"max degree={stats['max']:.0f} density={stats['density']:.3f}")
    print(f"  chromatic number bounds: [{lower}, {upper}]")
    print()

    num_colors = 4 if lower <= 4 else 1 << (lower - 1).bit_length()
    print(f"Running the MSROPM with {num_colors} colors "
          f"({'paper configuration' if num_colors == 4 else 'extended multi-stage configuration'})")
    config = MSROPMConfig(num_colors=num_colors, seed=1)
    machine = MSROPM(graph, config, stage1_reference_cut=graph.num_edges)
    result = machine.solve(iterations=10, seed=1)
    print(f"  best accuracy: {result.best_accuracy:.3f}")
    print(f"  mean accuracy: {result.accuracies.mean():.3f}")
    print(f"  exact solutions: {result.num_exact_solutions}/{result.num_iterations}")
    print(f"  modeled run time: {machine.time_to_solution() * 1e9:.0f} ns, "
          f"power {machine.estimated_power() * 1e3:.1f} mW")

    if graph.num_nodes <= 100:
        exact = exact_coloring(graph, num_colors)
        if exact is None:
            print(f"  exact baseline: the instance is NOT {num_colors}-colorable")
        else:
            print(f"  exact baseline accuracy: {coloring_accuracy(graph, exact):.3f} (proper coloring found)")
    else:
        print("  exact baseline skipped (instance too large for the bundled SAT solver demo)")


if __name__ == "__main__":
    main()
