"""Tests for fleet execution: executor backends, the job spool, the artifact
store, and their CLI.

The load-bearing invariant is *bit-identity across topologies*: the same jobs
must produce byte-identical payloads (and therefore identical reports) whether
they ran serially, on a local process pool, or were stolen from a shared
filesystem spool by any number of concurrent workers — including workers that
were SIGKILLed mid-job and had their claims reclaimed.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tarfile
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.circuit.control import TimingPlan
from repro.core.config import MSROPMConfig
from repro.exceptions import ConfigurationError
from repro.runtime.cache import CACHE_SCHEMA_VERSION, ResultCache, integrity_hash
from repro.runtime.executors import (
    LocalPoolExecutorBackend,
    SpoolExecutorBackend,
    make_backend,
)
from repro.runtime.jobs import Job, KingsGraphSpec, SolveJob
from repro.runtime.scheduler import JobScheduler
from repro.runtime.spool import (
    JobFailedError,
    JobSpool,
    SpoolError,
    SpoolWorker,
    run_fleet_worker,
)
from repro.units import ns

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker-process tests rely on fork inheriting the loaded test module",
)


# ----------------------------------------------------------------------
# Cheap test jobs (picklable module-level value objects, per the protocol)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AddJob(Job):
    """A trivially-verifiable cacheable job: payload is the sum of two ints."""

    a: int
    b: int

    job_kind = "test-add"

    @property
    def cacheable(self) -> bool:
        return True

    def describe(self):
        return {"job_kind": self.job_kind, "a": self.a, "b": self.b}

    @property
    def label(self) -> str:
        return f"add-{self.a}-{self.b}"

    def execute(self):
        return {"sum": self.a + self.b}

    def decode(self, payload):
        return payload


@dataclass(frozen=True)
class FailJob(Job):
    """A job that deterministically raises in whichever worker runs it."""

    token: int = 0

    job_kind = "test-fail"

    @property
    def cacheable(self) -> bool:
        return True

    def describe(self):
        return {"job_kind": self.job_kind, "token": self.token}

    @property
    def label(self) -> str:
        return f"fail-{self.token}"

    def execute(self):
        raise ValueError("deliberate test failure")

    def decode(self, payload):
        return payload


@dataclass(frozen=True)
class UnhashedJob(Job):
    """An uncacheable job (no content hash): must run inline in the submitter."""

    job_kind = "test-unhashed"

    @property
    def cacheable(self) -> bool:
        return False

    def describe(self):
        return {"job_kind": self.job_kind}

    @property
    def label(self) -> str:
        return "unhashed"

    def execute(self):
        return {"value": 42}

    def decode(self, payload):
        return payload


@dataclass(frozen=True)
class CrashOnceJob(Job):
    """Kills its worker process the first time it runs (sentinel-gated).

    Models a one-off worker death (OOM kill, segfault): the first execution
    writes the sentinel and dies, poisoning the pool; the retried batch finds
    the sentinel and succeeds.
    """

    sentinel: str
    token: int = 0

    job_kind = "test-crash-once"

    @property
    def cacheable(self) -> bool:
        return True

    def describe(self):
        return {"job_kind": self.job_kind, "sentinel": self.sentinel, "token": self.token}

    @property
    def label(self) -> str:
        return f"crash-once-{self.token}"

    def execute(self):
        path = Path(self.sentinel)
        if not path.exists():
            path.write_text("died", encoding="utf-8")
            os._exit(1)
        return {"token": self.token}

    def decode(self, payload):
        return payload


def _solve_jobs(seeds, iterations=2):
    """Real MSROPM solves, small enough to keep the fleet tests quick."""
    config = MSROPMConfig(
        num_colors=4,
        timing=TimingPlan(initialization=ns(1.0), annealing=ns(6.0), shil_settling=ns(2.0)),
        time_step=0.05e-9,
        seed=4321,
    )
    return [
        SolveJob(spec=KingsGraphSpec(4, 4), config=config, seed=seed, total_iterations=iterations)
        for seed in seeds
    ]


def _fingerprint(results):
    return [
        [
            (item.iteration_index, item.seed, item.accuracy, item.coloring.assignment)
            for item in result.iterations
        ]
        for result in results
    ]


# ----------------------------------------------------------------------
# Worker-process entry points (must be module-level for multiprocessing)
# ----------------------------------------------------------------------
def _fleet_drain(spool_dir):
    """Body of an external fleet worker: poll until stop or idle timeout."""
    run_fleet_worker(spool_dir, wait=True, idle_timeout=30.0, poll_interval=0.01)


def _claim_and_hang(spool_dir, ready_path):
    """Claim one job, report the claim, then hang until killed."""
    spool = JobSpool(spool_dir)
    claimed = spool.claim_next()
    Path(ready_path).write_text(claimed[0] if claimed else "none", encoding="utf-8")
    time.sleep(300)


# ----------------------------------------------------------------------
# JobSpool mechanics
# ----------------------------------------------------------------------
class TestJobSpool:
    def test_enqueue_is_idempotent_by_hash(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        job = AddJob(1, 2)
        assert spool.enqueue(job) is True
        assert spool.enqueue(AddJob(1, 2)) is False  # same content hash
        assert spool.counts()["pending"] == 1

    def test_claim_is_exclusive_and_result_publishes(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        job = AddJob(3, 4)
        spool.enqueue(job)
        claimed = spool.claim_next()
        assert claimed is not None
        job_hash, path = claimed
        assert job_hash == job.job_hash
        assert spool.claim_next() is None  # the only pending file is claimed
        loaded = spool.load_job(path)
        spool.store_result(job_hash, loaded.execute())
        spool.release(job_hash)
        assert spool.load_result(job_hash) == {"sum": 7}
        assert spool.counts() == {"pending": 0, "active": 0, "results": 1}

    def test_claim_discards_pending_with_published_result(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        job = AddJob(5, 6)
        spool.enqueue(job)
        spool.store_result(job.job_hash, {"sum": 11})
        assert spool.claim_next() is None
        assert spool.counts()["pending"] == 0  # the stale pending file is gone

    def test_failure_envelope_raises_and_reenqueue_clears_it(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        job = AddJob(7, 8)
        spool.store_failure(job.job_hash, "ValueError: boom")
        with pytest.raises(JobFailedError, match="boom"):
            spool.load_result(job.job_hash)
        # Resubmission is the retry: the failure record must not poison the
        # hash forever.
        assert spool.enqueue(job) is True
        assert spool.load_result(job.job_hash) is None
        assert spool.counts()["pending"] == 1

    def test_corrupt_result_raises_and_reenqueue_clears_it(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        job = AddJob(9, 10)
        path = spool.result_path(job.job_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(SpoolError):
            spool.load_result(job.job_hash)
        assert spool.enqueue(job) is True
        assert spool.counts() == {"pending": 1, "active": 0, "results": 0}

    def test_reclaim_returns_only_expired_claims(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_timeout=60.0)
        spool.ensure()
        job = AddJob(11, 12)
        spool.enqueue(job)
        job_hash, path = spool.claim_next()
        assert spool.reclaim_expired() == 0  # fresh lease: not reclaimable
        stale = time.time() - 120.0
        os.utime(path, (stale, stale))
        assert spool.reclaim_expired() == 1
        assert spool.counts() == {"pending": 1, "active": 0, "results": 0}
        # The reclaimed job is claimable (and executable) again.
        assert spool.claim_next() is not None

    def test_expired_claim_with_result_is_dropped_not_reclaimed(self, tmp_path):
        spool = JobSpool(tmp_path / "spool", lease_timeout=60.0)
        spool.ensure()
        job = AddJob(13, 14)
        spool.enqueue(job)
        job_hash, path = spool.claim_next()
        spool.store_result(job_hash, {"sum": 27})
        stale = time.time() - 120.0
        os.utime(path, (stale, stale))
        assert spool.reclaim_expired() == 0
        assert spool.counts() == {"pending": 0, "active": 0, "results": 1}

    def test_stop_marker_roundtrip(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        assert not spool.stop_requested
        spool.request_stop()
        assert spool.stop_requested
        spool.clear_stop()
        assert not spool.stop_requested

    def test_lease_timeout_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            JobSpool(tmp_path / "spool", lease_timeout=0)


class TestSpoolWorker:
    def test_drain_mode_executes_everything_and_exits(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        jobs = [AddJob(i, 1) for i in range(3)]
        for job in jobs:
            spool.enqueue(job)
        counters = SpoolWorker(spool, poll_interval=0.01).run()
        assert counters == {"executed": 3, "failed": 0, "reclaimed": 0}
        for job in jobs:
            assert spool.load_result(job.job_hash) == job.execute()
        assert spool.counts() == {"pending": 0, "active": 0, "results": 3}

    def test_raising_job_publishes_failure_and_loop_survives(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        spool.enqueue(FailJob())
        spool.enqueue(AddJob(20, 22))
        counters = SpoolWorker(spool, poll_interval=0.01).run()
        assert counters["executed"] == 1
        assert counters["failed"] == 1
        with pytest.raises(JobFailedError, match="deliberate test failure"):
            spool.load_result(FailJob().job_hash)
        assert spool.load_result(AddJob(20, 22).job_hash) == {"sum": 42}

    def test_wait_mode_exits_on_stop_marker(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.request_stop()
        counters = SpoolWorker(spool, wait=True, poll_interval=0.01).run()
        assert counters == {"executed": 0, "failed": 0, "reclaimed": 0}

    def test_max_jobs_caps_the_run(self, tmp_path):
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        for i in range(3):
            spool.enqueue(AddJob(i, 100))
        counters = SpoolWorker(spool, max_jobs=2, poll_interval=0.01).run()
        assert counters["executed"] == 2
        assert spool.counts()["pending"] == 1


# ----------------------------------------------------------------------
# Executor backends
# ----------------------------------------------------------------------
class TestExecutorBackends:
    def test_make_backend_registry(self, tmp_path):
        assert make_backend("local", workers=2).name == "local"
        assert make_backend("spool", workers=1, spool_dir=tmp_path / "s").name == "spool"
        with pytest.raises(ConfigurationError):
            make_backend("spool", workers=1)  # spool needs a directory
        with pytest.raises(ConfigurationError):
            make_backend("teleport", workers=1)
        with pytest.raises(ConfigurationError):
            make_backend("local", workers=0)

    def test_spool_backend_submitter_drains_alone(self, tmp_path):
        backend = SpoolExecutorBackend(tmp_path / "spool", workers=1, poll_interval=0.01)
        jobs = [AddJob(i, i) for i in range(4)]
        payloads = backend.run_payloads(jobs)
        assert payloads == [{"sum": 0}, {"sum": 2}, {"sum": 4}, {"sum": 6}]
        assert backend.jobs_executed_locally == 4
        assert backend.jobs_stolen == 0
        assert backend.children_spawned == 0

    def test_spool_backend_duplicate_hashes_computed_once(self, tmp_path):
        backend = SpoolExecutorBackend(tmp_path / "spool", workers=1, poll_interval=0.01)
        payloads = backend.run_payloads([AddJob(1, 1), AddJob(1, 1), AddJob(2, 2)])
        assert payloads == [{"sum": 2}, {"sum": 2}, {"sum": 4}]
        assert backend.jobs_executed_locally == 2  # two unique hashes

    def test_spool_backend_runs_uncacheable_jobs_inline(self, tmp_path):
        backend = SpoolExecutorBackend(tmp_path / "spool", workers=1, poll_interval=0.01)
        payloads = backend.run_payloads([UnhashedJob(), AddJob(1, 2)])
        assert payloads == [{"value": 42}, {"sum": 3}]
        # The uncacheable job never touched the spool.
        assert backend.spool.counts()["results"] == 1

    def test_spool_backend_surfaces_worker_failures(self, tmp_path):
        backend = SpoolExecutorBackend(tmp_path / "spool", workers=1, poll_interval=0.01)
        with pytest.raises(JobFailedError, match="deliberate test failure"):
            backend.run_payloads([FailJob()])

    def test_non_participating_backend_without_workers_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SpoolExecutorBackend(
                tmp_path / "spool", workers=1, spawn_workers=0, participate=False
            )

    def test_batch_results_survive_preexisting_spool_results(self, tmp_path):
        # A second batch over the same spool reuses published results
        # (jobs_stolen counts them) instead of re-executing.
        backend = SpoolExecutorBackend(tmp_path / "spool", workers=1, poll_interval=0.01)
        first = backend.run_payloads([AddJob(6, 6)])
        again = backend.run_payloads([AddJob(6, 6)])
        assert first == again == [{"sum": 12}]
        assert backend.jobs_executed_locally == 1
        assert backend.jobs_stolen == 1

    @fork_only
    def test_broken_pool_batch_is_retried_once(self, tmp_path):
        sentinel = tmp_path / "crashed"
        backend = LocalPoolExecutorBackend(workers=2)
        jobs = [AddJob(i, i) for i in range(3)] + [CrashOnceJob(str(sentinel))]
        try:
            # The crashing job kills its worker mid-batch, poisoning the pool;
            # the one-shot retry on a fresh pool finds the sentinel and
            # completes the whole batch.
            payloads = backend.run_payloads(jobs)
        finally:
            backend.close()
        assert payloads == [{"sum": 0}, {"sum": 2}, {"sum": 4}, {"token": 0}]
        assert sentinel.exists()
        assert backend.broken_pool_retries == 1
        assert backend.pools_started == 2


# ----------------------------------------------------------------------
# Cross-topology bit-identity and crash tolerance
# ----------------------------------------------------------------------
class TestFleetTopologies:
    @fork_only
    def test_serial_pool_and_concurrent_spool_workers_bit_identical(self, tmp_path):
        jobs = _solve_jobs(range(4))
        serial = JobScheduler(workers=1).run(jobs)
        with JobScheduler(workers=2) as pool_scheduler:
            pooled = pool_scheduler.run(_solve_jobs(range(4)))

        spool_dir = tmp_path / "spool"
        JobSpool(spool_dir).ensure()
        workers = [
            multiprocessing.Process(target=_fleet_drain, args=(str(spool_dir),))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        backend = SpoolExecutorBackend(
            spool_dir, workers=1, spawn_workers=0, poll_interval=0.01
        )
        try:
            with JobScheduler(backend=backend) as spool_scheduler:
                spooled = spool_scheduler.run(_solve_jobs(range(4)))
        finally:
            JobSpool(spool_dir).request_stop()
            for worker in workers:
                worker.join(timeout=30)
                if worker.is_alive():  # pragma: no cover - hung helper
                    worker.kill()
                    worker.join()
        assert _fingerprint(serial) == _fingerprint(pooled) == _fingerprint(spooled)
        # Every job is accounted for, wherever it ran.
        assert backend.jobs_executed_locally + backend.jobs_stolen == 4
        # The published payload equals the inline execution's payload, byte
        # for byte in canonical form (JSON round-trips lose tuple-ness only).
        from repro.runtime.jobs import canonical_json

        spool = JobSpool(spool_dir)
        job = jobs[0]
        assert canonical_json(spool.load_result(job.job_hash)) == canonical_json(
            json.loads(json.dumps(job.execute()))
        )

    @fork_only
    def test_lease_expiry_recovers_job_from_killed_worker(self, tmp_path):
        spool_dir = tmp_path / "spool"
        spool = JobSpool(spool_dir, lease_timeout=0.3)
        spool.ensure()
        job = AddJob(2, 3)
        spool.enqueue(job)

        ready = tmp_path / "ready"
        holder = multiprocessing.Process(
            target=_claim_and_hang, args=(str(spool_dir), str(ready))
        )
        holder.start()
        deadline = time.monotonic() + 15
        while not ready.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ready.read_text(encoding="utf-8") == job.job_hash
        holder.kill()  # SIGKILL: dies holding the claim, no cleanup runs
        holder.join()
        assert spool.counts() == {"pending": 0, "active": 1, "results": 0}

        # A later worker must reclaim the expired claim and finish the job.
        counters = SpoolWorker(spool, poll_interval=0.02).run()
        assert counters == {"executed": 1, "failed": 0, "reclaimed": 1}
        assert spool.load_result(job.job_hash) == {"sum": 5}
        counts = spool.counts()
        assert counts["pending"] == 0 and counts["active"] == 0


# ----------------------------------------------------------------------
# Artifact store: integrity, verify, gc, bundles
# ----------------------------------------------------------------------
class TestArtifactStore:
    def _store_with_jobs(self, root, count=2):
        store = ResultCache(root)
        jobs = [AddJob(i, 1) for i in range(count)]
        for job in jobs:
            store.store(job, job.execute())
        return store, jobs

    def _tamper(self, store, job):
        path = store.path_for(job.job_hash)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["result"]["sum"] = 999  # integrity hash now disagrees
        path.write_text(json.dumps(envelope), encoding="utf-8")

    def test_envelopes_carry_integrity_hashes(self, tmp_path):
        store, jobs = self._store_with_jobs(tmp_path / "cache")
        envelope = json.loads(
            store.path_for(jobs[0].job_hash).read_text(encoding="utf-8")
        )
        assert envelope["integrity"] == integrity_hash(envelope["result"])

    def test_tampered_entry_is_a_stale_miss_and_verify_flags_it(self, tmp_path):
        store, jobs = self._store_with_jobs(tmp_path / "cache")
        self._tamper(store, jobs[0])
        assert store.load(jobs[0]) is None
        assert store.stale_misses == 1
        report = store.verify()
        assert report["ok"] == 1 and report["corrupt"] == 1
        assert report["corrupt_entries"][0]["detail"] == "integrity mismatch"
        # Pruning removes the corrupt entry; the sound one survives.
        report = store.verify(prune=True)
        assert report["pruned"] == 1
        assert store.verify() == {
            "ok": 1,
            "stale": 0,
            "corrupt": 0,
            "pruned": 0,
            "corrupt_entries": [],
        }

    def test_gc_sweeps_stale_corrupt_and_unreferenced(self, tmp_path):
        store, jobs = self._store_with_jobs(tmp_path / "cache", count=3)
        self._tamper(store, jobs[0])
        # Backdate one entry to the previous schema: readable, but stale.
        path = store.path_for(jobs[1].job_hash)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["cache_schema"] = CACHE_SCHEMA_VERSION - 1
        path.write_text(json.dumps(envelope), encoding="utf-8")
        removed = store.gc(referenced={jobs[2].job_hash})
        assert removed == {"stale": 1, "corrupt": 1, "unreferenced": 0, "kept": 1}
        assert store.load(jobs[2]) == {"sum": 3}

    def test_gc_drops_unreferenced_results_but_not_payloads(self, tmp_path):
        store, jobs = self._store_with_jobs(tmp_path / "cache", count=2)
        key = integrity_hash({"marker": 1})
        store.store_payload("reference", key, {"marker": 1})
        removed = store.gc(referenced={jobs[0].job_hash})
        assert removed["unreferenced"] == 1
        assert store.load(jobs[0]) == {"sum": 1}
        assert store.load(jobs[1]) is None  # swept
        # Payload namespaces are never reference-GC'd.
        assert store.load_payload("reference", key) == {"marker": 1}

    def test_export_import_roundtrip(self, tmp_path):
        store, jobs = self._store_with_jobs(tmp_path / "cache", count=2)
        key = integrity_hash({"marker": 2})
        store.store_payload("reference", key, {"marker": 2})
        bundle = tmp_path / "bundle.tar.gz"
        manifest = store.export_bundle(bundle)
        assert sorted(manifest["entries"]) == sorted(job.job_hash for job in jobs)
        assert manifest["payloads"] == [{"kind": "reference", "key": key}]

        other = ResultCache(tmp_path / "other")
        counters = other.import_bundle(bundle)
        assert counters == {"imported": 3, "existing": 0, "rejected": 0}
        for job in jobs:
            assert other.load(job) == job.execute()
        assert other.load_payload("reference", key) == {"marker": 2}
        # Re-importing is a no-op: entries are content-addressed.
        assert other.import_bundle(bundle) == {
            "imported": 0,
            "existing": 3,
            "rejected": 0,
        }

    def test_export_restricts_to_job_hashes_and_skips_unsound(self, tmp_path):
        store, jobs = self._store_with_jobs(tmp_path / "cache", count=3)
        self._tamper(store, jobs[2])
        manifest = store.export_bundle(
            tmp_path / "b.tar.gz",
            job_hashes=[jobs[0].job_hash, jobs[2].job_hash],
            include_payloads=False,
        )
        assert manifest["entries"] == [jobs[0].job_hash]
        assert manifest["skipped_unsound"] == 1

    def test_import_rejects_tampered_and_traversal_members(self, tmp_path):
        bundle = tmp_path / "evil.tar.gz"
        fake_hash = "ab" * 32
        bad_integrity = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "job_hash": fake_hash,
            "integrity": "not-the-hash",
            "result": {"sum": 1},
        }
        traversal = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "kind": "../escape",
            "key": fake_hash,
            "integrity": integrity_hash({"x": 1}),
            "payload": {"x": 1},
        }
        import io as io_module

        with tarfile.open(bundle, "w:gz") as tar:
            for name, envelope in (
                (f"entries/{fake_hash[:2]}/{fake_hash}.json", bad_integrity),
                ("payloads/../../escape.json", traversal),
            ):
                data = json.dumps(envelope).encode("utf-8")
                info = tarfile.TarInfo(name)
                info.size = len(data)
                tar.addfile(info, io_module.BytesIO(data))
        store = ResultCache(tmp_path / "cache")
        assert store.import_bundle(bundle) == {
            "imported": 0,
            "existing": 0,
            "rejected": 2,
        }
        assert list(store.scan()) == []
        assert not (tmp_path / "escape.json").exists()


# ----------------------------------------------------------------------
# Runner and CLI integration
# ----------------------------------------------------------------------
class TestFleetCLI:
    def test_runner_exposes_executor_name(self, tmp_path):
        with ExperimentRunnerFactory(tmp_path) as runner:
            assert runner.executor == "spool"
            assert runner.workers == 1

    def test_fleet_worker_drains_via_cli(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.runtime.worker_env import WORKER_THREAD_CAPS

        for name, value in WORKER_THREAD_CAPS.items():
            monkeypatch.setenv(name, value)
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        for i in range(2):
            spool.enqueue(AddJob(i, 5))
        rc = main(["fleet", "worker", str(tmp_path / "spool"), "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 job(s) executed" in out
        assert spool.counts() == {"pending": 0, "active": 0, "results": 2}

    def test_fleet_status_and_stop(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fleet", "status", str(tmp_path / "nowhere")]) == 1
        capsys.readouterr()
        spool = JobSpool(tmp_path / "spool")
        spool.ensure()
        spool.enqueue(AddJob(1, 1))
        assert main(["fleet", "status", str(tmp_path / "spool")]) == 0
        out = capsys.readouterr().out
        assert "pending: 1" in out
        assert main(["fleet", "stop", str(tmp_path / "spool")]) == 0
        assert spool.stop_requested
        assert main(["fleet", "stop", str(tmp_path / "spool"), "--clear"]) == 0
        assert not spool.stop_requested

    def test_cache_cli_stats_verify_gc(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        store = ResultCache(cache_dir)
        jobs = [AddJob(i, 2) for i in range(2)]
        for job in jobs:
            store.store(job, job.execute())
        assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "result" in out and "schema v3" in out

        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0
        assert "2 ok" in capsys.readouterr().out

        # Tamper one entry: verify exits 1 until pruned.
        path = store.path_for(jobs[0].job_hash)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["result"]["sum"] = 999
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        assert main(["cache", "verify", "--prune", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()

        assert main(["cache", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "kept 1" in capsys.readouterr().out

    def test_cache_cli_export_import(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = tmp_path / "cache"
        store = ResultCache(cache_dir)
        job = AddJob(4, 4)
        store.store(job, job.execute())
        bundle = tmp_path / "bundle.tar.gz"
        assert main(["cache", "export", str(bundle), "--cache-dir", str(cache_dir)]) == 0
        assert "1 result(s)" in capsys.readouterr().out
        other_dir = tmp_path / "other"
        assert main(["cache", "import", str(bundle), "--cache-dir", str(other_dir)]) == 0
        assert "1 imported" in capsys.readouterr().out
        assert ResultCache(other_dir).load(job) == {"sum": 8}

    def test_scenarios_output_byte_identical_local_vs_spool(self, tmp_path, capsys):
        from repro.cli import main

        base = [
            "scenarios",
            "--family",
            "er",
            "--iterations",
            "1",
            "--baselines",
            "",
        ]
        assert (
            main(base + ["--workers", "1", "--cache-dir", str(tmp_path / "cache-local")])
            == 0
        )
        local_out = capsys.readouterr().out
        assert (
            main(
                base
                + [
                    "--workers",
                    "1",
                    "--executor",
                    "spool",
                    "--spool-dir",
                    str(tmp_path / "spool"),
                    "--cache-dir",
                    str(tmp_path / "cache-spool"),
                ]
            )
            == 0
        )
        spool_out = capsys.readouterr().out
        assert local_out == spool_out


def ExperimentRunnerFactory(tmp_path):
    """A spool-backed runner on a scratch directory (helper, not a fixture)."""
    from repro.runtime.runner import ExperimentRunner

    return ExperimentRunner(
        workers=1,
        executor="spool",
        spool_dir=tmp_path / "runner-spool",
        executor_options={"poll_interval": 0.01},
    )
