"""Tests for the observability layer: metrics spine, sinks, projections,
the ledger follower, the watch/report CLI, and the service's /metrics.

The load-bearing properties:

* the metrics registry is thread-safe, deterministic to snapshot, and
  injectable-clock driven (no wall-clock in timings),
* sink delivery is best-effort — a raising sink increments counters and
  never propagates into the emitting run,
* projections are pure functions of ledger events: same journal, same
  rendered report, byte for byte,
* the follower consumes only committed lines, survives shrunken files and
  malformed lines, and never raises at a torn tail,
* ``campaign watch --once`` / ``campaign report`` work end-to-end from a
  journal alone, and ``GET /metrics`` serves the spine's snapshot.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

import pytest

from repro.campaigns import RunLedger, run_campaign
from repro.cli import main
from repro.obs import (
    CallbackSink,
    CampaignProjection,
    JsonlFileSink,
    LedgerFollower,
    MetricsRegistry,
    Sink,
    SinkEmitError,
    SinkRouter,
    WebhookSink,
    get_metrics,
    project_state,
    render_report,
    render_watch,
    set_metrics,
)
from repro.runtime.jobs import Job
from repro.runtime.runner import ExperimentRunner


@dataclass(frozen=True)
class AddJob(Job):
    """A trivially-verifiable cacheable job: payload is the sum of two ints."""

    a: int
    b: int

    job_kind = "test-add"

    @property
    def cacheable(self) -> bool:
        return True

    def describe(self):
        return {"job_kind": self.job_kind, "a": self.a, "b": self.b}

    @property
    def label(self) -> str:
        return f"add-{self.a}-{self.b}"

    def execute(self):
        return {"sum": self.a + self.b}

    def decode(self, payload):
        return payload


@pytest.fixture()
def fresh_metrics():
    """Isolate the process-global registry for the duration of one test."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


# ----------------------------------------------------------------------
# Metrics spine
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        assert registry.counter("x") == 0
        assert registry.inc("x") == 1
        assert registry.inc("x", 4) == 5
        assert registry.counter("x") == 5
        assert registry.gauge("depth") is None
        registry.set_gauge("depth", 3)
        assert registry.gauge("depth") == 3.0

    def test_timer_uses_injected_clock(self):
        ticks = iter([10.0, 12.5])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.timer("op"):
            pass
        timing = registry.snapshot()["timings"]["op"]
        assert timing["count"] == 1
        assert timing["total_s"] == pytest.approx(2.5)
        assert timing["min_s"] == pytest.approx(2.5)
        assert timing["buckets"]["le_2.5"] == 1

    def test_timer_records_raising_body(self):
        ticks = iter([0.0, 1.0])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with registry.timer("op"):
                raise RuntimeError("boom")
        assert registry.snapshot()["timings"]["op"]["count"] == 1

    def test_observe_bucket_boundaries(self):
        registry = MetricsRegistry()
        registry.observe("op", 0.0005)   # le_0.001
        registry.observe("op", 0.05)     # le_0.1
        registry.observe("op", 100.0)    # le_inf
        buckets = registry.snapshot()["timings"]["op"]["buckets"]
        assert buckets["le_0.001"] == 1
        assert buckets["le_0.1"] == 1
        assert buckets["le_inf"] == 1

    def test_snapshot_is_deterministic_and_json_stable(self):
        registry = MetricsRegistry()
        registry.inc("z.late")
        registry.inc("a.early", 2)
        registry.set_gauge("g", 1.5)
        first = json.dumps(registry.snapshot(), sort_keys=True)
        second = json.dumps(registry.snapshot(), sort_keys=True)
        assert first == second
        assert list(registry.snapshot()["counters"]) == ["a.early", "z.late"]

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()

        def bump():
            for _ in range(500):
                registry.inc("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n") == 4000

    def test_global_swap_and_reset(self, fresh_metrics):
        get_metrics().inc("swapped")
        assert fresh_metrics.counter("swapped") == 1
        fresh_metrics.reset()
        assert fresh_metrics.snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_router_routes_by_kind(self, fresh_metrics):
        seen_all, seen_failures = [], []
        router = (
            SinkRouter()
            .add(CallbackSink(seen_all.append))
            .add(CallbackSink(seen_failures.append), kinds=["stage_failed"])
        )
        router.emit({"event": "stage_started", "stage": "s"})
        router.emit({"event": "stage_failed", "stage": "s", "error": "boom"})
        assert [event["event"] for event in seen_all] == [
            "stage_started",
            "stage_failed",
        ]
        assert [event["event"] for event in seen_failures] == ["stage_failed"]
        assert router.delivered == 3
        assert fresh_metrics.counter("sinks.delivered") == 3

    def test_sink_failure_is_counted_not_raised(self, fresh_metrics):
        class ExplodingSink(Sink):
            def emit(self, event):
                raise RuntimeError("sink down")

        received = []
        router = SinkRouter().add(ExplodingSink()).add(CallbackSink(received.append))
        router.emit({"event": "stage_passed", "stage": "s"})  # must not raise
        assert router.errors == 1
        assert "sink down" in router.stats()["last_error"]
        assert len(received) == 1  # the healthy sink still got the event
        assert fresh_metrics.counter("sinks.errors") == 1

    def test_jsonl_sink_appends_committed_lines(self, tmp_path):
        sink = JsonlFileSink(tmp_path / "events.jsonl")
        sink.emit({"event": "a", "n": 1})
        sink.emit({"event": "b", "n": 2})
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]
        assert sink.delivered == 2

    def test_webhook_sink_posts_json(self):
        requests = []

        def opener(request, timeout):
            requests.append((request, timeout))
            return None

        sink = WebhookSink("http://example.invalid/hook", timeout=2.0, opener=opener)
        sink.emit({"event": "campaign_finished"})
        request, timeout = requests[0]
        assert timeout == 2.0
        assert request.get_method() == "POST"
        assert json.loads(request.data.decode("utf-8")) == {
            "event": "campaign_finished"
        }

    def test_webhook_rejects_non_http_urls(self):
        with pytest.raises(SinkEmitError, match="http"):
            WebhookSink("file:///etc/passwd")


# ----------------------------------------------------------------------
# Projection + renderers
# ----------------------------------------------------------------------
def _synthetic_events(run_id="run1"):
    return [
        {"event": "campaign_started", "campaign": "toy", "params": {"seed": 1},
         "ledger_schema": 2, "ts": 100.0},
        {"event": "stage_started", "stage": "s1", "ts": 101.0},
        {"event": "stage_planned", "stage": "s1", "num_jobs": 4, "ts": 101.0},
        {"event": "jobs_progress", "stage": "s1", "job_hashes": ["a", "b"], "ts": 103.0},
        {"event": "jobs_progress", "stage": "s1", "job_hashes": ["b", "c"], "ts": 105.0},
    ]


class TestCampaignProjection:
    def test_folds_progress_with_dedup(self):
        projection = CampaignProjection("run1").apply_all(_synthetic_events())
        (stage,) = projection.stages
        assert stage.state == "running"
        assert stage.planned == 4
        assert stage.done == 3  # "b" deduplicated
        assert stage.completion == pytest.approx(0.75)
        assert projection.status == "running"

    def test_throughput_and_eta_from_event_timestamps_only(self):
        projection = CampaignProjection("run1").apply_all(_synthetic_events())
        # 3 unique jobs over ts 103..105 -> 1.5 jobs/s; 1 job remains -> 2/3 s.
        assert projection.throughput() == pytest.approx(1.5)
        assert projection.eta_seconds() == pytest.approx(1 / 1.5)

    def test_terminal_states(self):
        events = _synthetic_events() + [
            {"event": "stage_failed", "stage": "s1", "error": "boom", "ts": 106.0}
        ]
        projection = CampaignProjection("run1").apply_all(events)
        assert projection.failed and projection.terminal
        assert projection.eta_seconds() == 0.0
        assert "boom" in render_watch(projection)

    def test_render_report_is_byte_identical(self):
        events = _synthetic_events()
        first = render_report(CampaignProjection("run1").apply_all(events))
        second = render_report(CampaignProjection("run1").apply_all(events))
        assert first == second
        assert "75%" in first

    def test_project_state_from_replayed_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("toy", {"seed": 3})
        ledger.append(run_id, {"event": "stage_started", "stage": "s"})
        ledger.append(run_id, {"event": "stage_planned", "stage": "s", "num_jobs": 1})
        ledger.append(run_id, {"event": "jobs_progress", "stage": "s", "job_hashes": ["h"]})
        ledger.append(run_id, {"event": "stage_passed", "stage": "s"})
        ledger.append(run_id, {"event": "campaign_finished"})
        projection = project_state(ledger.replay(run_id))
        assert projection.finished
        assert projection.jobs_done == 1
        assert projection.stages[0].state == "passed"


# ----------------------------------------------------------------------
# LedgerFollower
# ----------------------------------------------------------------------
class TestLedgerFollower:
    def test_incremental_polling(self, tmp_path):
        path = tmp_path / "run.jsonl"
        follower = LedgerFollower(path)
        assert follower.poll() == []  # file does not exist yet
        path.write_text('{"event": "a"}\n')
        assert [event["event"] for event in follower.poll()] == ["a"]
        assert follower.poll() == []
        with open(path, "a") as handle:
            handle.write('{"event": "b"}\n')
        assert [event["event"] for event in follower.poll()] == ["b"]

    def test_torn_tail_invisible_until_committed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"')  # no trailing newline
        follower = LedgerFollower(path)
        assert [event["event"] for event in follower.poll()] == ["a"]
        with open(path, "a") as handle:
            handle.write("}\n")  # the newline commits it
        assert [event["event"] for event in follower.poll()] == ["b"]

    def test_shrunken_file_resets(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "a"}\n{"event": "b"}\n')
        follower = LedgerFollower(path)
        assert len(follower.poll()) == 2
        path.write_text('{"event": "fresh"}\n')  # rotation/tampering
        events = follower.poll()
        assert follower.truncations == 1
        assert [event["event"] for event in events] == ["fresh"]

    def test_malformed_committed_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "a"}\nnot json\n[1, 2]\n{"event": "b"}\n')
        follower = LedgerFollower(path)
        assert [event["event"] for event in follower.poll()] == ["a", "b"]
        assert follower.malformed == 2


# ----------------------------------------------------------------------
# Runtime progress plumbing + orchestrator events
# ----------------------------------------------------------------------
class TestProgressPlumbing:
    def test_run_jobs_reports_cached_and_computed(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        jobs = [AddJob(1, 2), AddJob(3, 4)]
        runner.run_jobs(jobs)

        seen = []
        runner2 = ExperimentRunner(cache_dir=tmp_path / "cache")
        runner2.run_jobs(
            [AddJob(1, 2), AddJob(5, 6)], progress=lambda job: seen.append(job.label)
        )
        # add-1-2 resolves from disk cache, add-5-6 computes; both announce.
        assert sorted(seen) == ["add-1-2", "add-5-6"]

    def test_scheduler_metrics(self, fresh_metrics, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        runner.run_jobs([AddJob(1, 1), AddJob(2, 2)])
        assert fresh_metrics.counter("scheduler.batches") == 1
        assert fresh_metrics.counter("scheduler.jobs_dispatched") == 2
        assert fresh_metrics.counter("cache.stores") == 2
        snapshot = fresh_metrics.snapshot()
        assert snapshot["timings"]["scheduler.batch_seconds"]["count"] == 1


def _record_campaign(tmp_path, sinks=None):
    """Run a two-stage toy campaign against a real ledger; returns (run, ledger)."""
    from repro.campaigns import CampaignSpec, CampaignStage

    spec = CampaignSpec(
        name="toy-obs",
        description="obs test campaign",
        stages=(
            CampaignStage(name="first", plan=lambda context: [AddJob(1, 2), AddJob(3, 4)]),
            CampaignStage(
                name="second", plan=lambda context: [AddJob(5, 6)], requires=("first",)
            ),
        ),
        param_names=(),
    )
    ledger = RunLedger(tmp_path / "campaigns")
    runner = ExperimentRunner(cache_dir=tmp_path)
    run = run_campaign(spec, {}, runner=runner, ledger=ledger, sinks=sinks)
    return run, ledger


class TestOrchestratorEvents:
    def test_ledger_gains_planned_and_progress_events(self, tmp_path):
        run, ledger = _record_campaign(tmp_path)
        kinds = [event["event"] for event in ledger.events(run.run_id)]
        assert "stage_planned" in kinds
        assert "jobs_progress" in kinds
        state = ledger.replay(run.run_id)
        assert state.planned_jobs == {"first": 2, "second": 1}
        assert state.num_finished_jobs == 3

    def test_sinks_receive_every_recorded_event(self, tmp_path):
        received = []
        router = SinkRouter().add(CallbackSink(received.append))
        run, ledger = _record_campaign(tmp_path, sinks=router)
        sink_kinds = [event["event"] for event in received]
        ledger_kinds = [event["event"] for event in ledger.events(run.run_id)]
        assert sink_kinds == ledger_kinds
        assert all(event["run_id"] == run.run_id for event in received)
        assert router.errors == 0


# ----------------------------------------------------------------------
# CLI: watch / report / list corruption flags
# ----------------------------------------------------------------------
class TestObservabilityCli:
    def test_watch_once_renders_frame(self, tmp_path, capsys):
        run, _ = _record_campaign(tmp_path)
        rc = main(
            ["campaign", "watch", run.run_id, "--cache-dir", str(tmp_path), "--once"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "finished" in out
        assert "first" in out and "second" in out
        assert "100%" in out

    def test_watch_unknown_run(self, tmp_path, capsys):
        rc = main(["campaign", "watch", "ghost", "--cache-dir", str(tmp_path), "--once"])
        assert rc == 2
        assert "unknown campaign run" in capsys.readouterr().err

    def test_report_byte_identical_and_cache_presence(self, tmp_path, capsys):
        run, _ = _record_campaign(tmp_path)
        assert main(["campaign", "report", run.run_id, "--cache-dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert main(["campaign", "report", run.run_id, "--cache-dir", str(tmp_path)]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "cache: 3 of 3 recorded job result(s) present" in first

    def test_report_metrics_out_snapshot(self, tmp_path, capsys):
        run, _ = _record_campaign(tmp_path)
        out_path = tmp_path / "metrics.json"
        rc = main(
            [
                "campaign", "report", run.run_id,
                "--cache-dir", str(tmp_path),
                "--metrics-out", str(out_path),
            ]
        )
        assert rc == 0
        snapshot = json.loads(out_path.read_text())
        assert snapshot["metrics_version"] == 1
        assert set(snapshot) >= {"counters", "gauges", "timings"}

    def test_list_flags_corrupt_journals(self, tmp_path, capsys):
        run, ledger = _record_campaign(tmp_path)
        (ledger.root / "rotted.jsonl").write_text("not json at all\n")
        rc = main(["campaign", "list", "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert run.run_id in captured.out
        assert "CORRUPT" in captured.out
        assert "rotted" in captured.err

    def test_run_with_event_log_sink(self, tmp_path, capsys):
        event_log = tmp_path / "events.jsonl"
        rc = main(
            [
                "campaign", "run", "suite",
                "--scale", "0.05", "--iterations", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--event-log", str(event_log),
            ]
        )
        assert rc == 0
        kinds = [
            json.loads(line)["event"] for line in event_log.read_text().splitlines()
        ]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert "stage_planned" in kinds


# ----------------------------------------------------------------------
# Service: GET /metrics and drain liveness in /v1/stats
# ----------------------------------------------------------------------
class TestServiceMetrics:
    def _service(self, tmp_path):
        from repro.service.server import SolverService

        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        return SolverService(runner, tmp_path / "cache"), runner

    def test_metrics_endpoint(self, fresh_metrics, tmp_path):
        service, runner = self._service(tmp_path)
        runner.run_jobs([AddJob(1, 2)])
        status, payload, _ = service.handle("GET", "/metrics", None)
        assert status == 200
        assert payload["metrics"]["counters"]["scheduler.batches"] == 1
        assert payload["runner"]["jobs_run"] == 1
        # The v1-prefixed alias serves the same snapshot.
        status, alias, _ = service.handle("GET", "/v1/metrics", None)
        assert status == 200 and "metrics" in alias

    def test_metrics_requires_get(self, tmp_path):
        service, _ = self._service(tmp_path)
        status, _, _ = service.handle("POST", "/metrics", {})
        assert status == 405

    def test_stats_reports_queue_depth_and_drain_liveness(self, tmp_path):
        service, runner = self._service(tmp_path)
        status, payload, _ = service.handle("GET", "/v1/stats", None)
        assert status == 200
        assert payload["runner"]["queue_depth"] == 0
        assert payload["runner"]["drain_alive"] == 0
        ticket = runner.submit(AddJob(9, 9))
        assert runner.wait([ticket], timeout=30)
        status, payload, _ = service.handle("GET", "/v1/stats", None)
        assert payload["runner"]["drain_alive"] == 1
        runner.close()
