"""Tests for the one-pass evaluation suite and its runtime integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.suite import plan_suite_requests, run_suite
from repro.runtime.jobs import SolveJob
from repro.runtime.runner import ExperimentRunner

#: Tiny-but-real suite shape used by all tests here.
SUITE_KWARGS = dict(scale=0.05, iterations=2, seed=2025)


def _suite_accuracy_fingerprint(result):
    """Every per-iteration number the suite reports, as comparable arrays."""
    return (
        [(row.problem_name, row.top_accuracy, row.mean_accuracy, row.num_exact) for row in result.table1.rows],
        result.table2.msropm_accuracies.tolist(),
        [
            (series.problem_name, series.coloring_accuracies.tolist(), series.maxcut_accuracies.tolist())
            for series in result.figure5.series
        ],
    )


class TestSuitePlanning:
    def test_plan_covers_all_experiments(self):
        requests = plan_suite_requests(**SUITE_KWARGS)
        # 4 Table 1 problems + 1 Table 2 headline row + 3 Figure 5 problems.
        assert len(requests) == 8

    def test_fig5_jobs_dedupe_against_table1(self):
        """Fig. 5 replots Table 1's sizes under the same seeds: same hashes."""
        requests = plan_suite_requests(**SUITE_KWARGS)
        hashes = [
            SolveJob(
                spec=r.spec, config=r.config, seed=r.seed, total_iterations=r.iterations
            ).job_hash
            for r in requests
        ]
        # The three Figure 5 jobs are hash-identical to three Table 1 jobs.
        assert len(hashes) - len(set(hashes)) == 3


class TestSuiteExecution:
    def test_suite_runs_and_renders(self, tmp_path):
        result = run_suite(runner=ExperimentRunner(cache_dir=tmp_path), **SUITE_KWARGS)
        text = result.render()
        assert "Table 1" in text
        assert "MSROPM (this work)" in text
        assert "Figure 5(a)" in text
        assert "suite finished" in text
        # Deduplication: 8 planned requests, 5 distinct jobs actually solved.
        assert result.runner_stats["jobs_run"] == 5

    def test_parallel_suite_bit_identical_to_serial_and_warm_cache_skips(self, tmp_path):
        """The PR's acceptance property at test scale: workers=4 == workers=1,
        and a warm cache turns the rerun into pure loads."""
        serial = run_suite(runner=ExperimentRunner(workers=1), **SUITE_KWARGS)
        parallel_runner = ExperimentRunner(workers=4, cache_dir=tmp_path)
        parallel = run_suite(runner=parallel_runner, **SUITE_KWARGS)
        assert _suite_accuracy_fingerprint(serial) == _suite_accuracy_fingerprint(parallel)

        warm_runner = ExperimentRunner(workers=4, cache_dir=tmp_path)
        warm = run_suite(runner=warm_runner, **SUITE_KWARGS)
        assert warm.runner_stats["jobs_run"] == 0
        assert warm.runner_stats["cache_hits"] == 5
        assert _suite_accuracy_fingerprint(serial) == _suite_accuracy_fingerprint(warm)
