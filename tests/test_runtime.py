"""Tests for the parallel experiment runtime: jobs, cache, scheduler, runner.

The load-bearing property is determinism: the same seeds must produce
bit-identical colorings, accuracies and cache hashes whether jobs run in one
process, across a worker pool, in replica chunks, or from a warm cache.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.analysis.sweep import coupling_strength_sweep
from repro.core.machine import MSROPM
from repro.graphs.generators import kings_graph
from repro.graphs.io import write_dimacs
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import (
    DimacsGraphSpec,
    ExplicitGraphSpec,
    KingsGraphSpec,
    SolveJob,
    as_graph_spec,
    merge_job_results,
)
from repro.runtime.runner import ExperimentRunner, SolveRequest
from repro.runtime.scheduler import JobScheduler


def _assert_identical(a, b):
    """Two solve results agree bit-for-bit on everything the paper reports."""
    assert np.array_equal(a.accuracies, b.accuracies)
    assert np.array_equal(a.stage1_accuracies, b.stage1_accuracies)
    assert [i.seed for i in a.iterations] == [i.seed for i in b.iterations]
    assert [i.iteration_index for i in a.iterations] == [i.iteration_index for i in b.iterations]
    assert [i.coloring.assignment for i in a.iterations] == [
        i.coloring.assignment for i in b.iterations
    ]


class TestGraphSpecs:
    def test_kings_spec_builds_the_generator_graph(self):
        spec = KingsGraphSpec(4, 5)
        graph = spec.build()
        reference = kings_graph(4, 5)
        assert graph.nodes == reference.nodes
        assert sorted(graph.edges()) == sorted(reference.edges())
        assert spec.fingerprint() == {"kind": "kings", "rows": 4, "cols": 5}

    def test_dimacs_spec_is_content_addressed(self, tmp_path):
        path = tmp_path / "instance.col"
        write_dimacs(kings_graph(4, 4), path)
        spec = DimacsGraphSpec(str(path))
        first = spec.fingerprint()
        assert spec.build().num_nodes == 16
        # Same content elsewhere -> same fingerprint (location-independent).
        moved = tmp_path / "copy.col"
        moved.write_text(path.read_text(encoding="utf-8"), encoding="utf-8")
        assert DimacsGraphSpec(str(moved)).fingerprint() == first
        # Edited content -> different fingerprint (cache invalidates).
        write_dimacs(kings_graph(5, 5), path)
        assert DimacsGraphSpec(str(path)).fingerprint() != first

    def test_explicit_spec_hash_is_cached_and_content_based(self, kings_5x5):
        spec = ExplicitGraphSpec(kings_5x5)
        assert spec.fingerprint() == spec.fingerprint()
        same = ExplicitGraphSpec(kings_graph(5, 5))
        assert same.fingerprint() == spec.fingerprint()
        other = ExplicitGraphSpec(kings_graph(4, 4))
        assert other.fingerprint() != spec.fingerprint()

    def test_as_graph_spec_dispatch(self, kings_5x5, tmp_path):
        assert isinstance(as_graph_spec(kings_5x5), ExplicitGraphSpec)
        assert isinstance(as_graph_spec(KingsGraphSpec(3, 3)), KingsGraphSpec)
        assert isinstance(as_graph_spec(str(tmp_path / "x.col")), DimacsGraphSpec)
        with pytest.raises(ConfigurationError):
            as_graph_spec(42)

    def test_as_graph_spec_loads_json_paths_as_graphs(self, tmp_path):
        from repro.graphs.io import write_json

        path = tmp_path / "board.json"
        write_json(kings_graph(4, 4), path)
        spec = as_graph_spec(str(path))
        assert isinstance(spec, ExplicitGraphSpec)
        assert spec.build().num_nodes == 16

    def test_dimacs_spec_snapshot_survives_file_edits(self, tmp_path):
        """One spec must hash and build the same content even if the file
        changes between scheduling and execution (no cache poisoning)."""
        path = tmp_path / "instance.col"
        write_dimacs(kings_graph(4, 4), path)
        spec = DimacsGraphSpec(str(path))
        before = spec.fingerprint()
        write_dimacs(kings_graph(6, 6), path)
        assert spec.fingerprint() == before
        assert spec.build().num_nodes == 16


class TestSolveJob:
    def test_hash_is_stable_and_sensitive(self, fast_config):
        job = SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=4)
        twin = SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=4)
        assert job.job_hash == twin.job_hash
        assert (
            SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=2, total_iterations=4).job_hash
            != job.job_hash
        )
        assert (
            SolveJob(spec=KingsGraphSpec(5, 4), config=fast_config, seed=1, total_iterations=4).job_hash
            != job.job_hash
        )
        assert (
            SolveJob(
                spec=KingsGraphSpec(4, 4),
                config=fast_config.with_updates(coupling_strength=0.2),
                seed=1,
                total_iterations=4,
            ).job_hash
            != job.job_hash
        )
        assert (
            SolveJob(
                spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=4, replica_stop=2
            ).job_hash
            != job.job_hash
        )

    def test_invalid_ranges_rejected(self, fast_config):
        with pytest.raises(ConfigurationError):
            SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=0)
        with pytest.raises(ConfigurationError):
            SolveJob(
                spec=KingsGraphSpec(4, 4),
                config=fast_config,
                seed=1,
                total_iterations=4,
                replica_start=3,
                replica_stop=3,
            )
        with pytest.raises(ConfigurationError):
            SolveJob(
                spec=KingsGraphSpec(4, 4),
                config=fast_config,
                seed=1,
                total_iterations=4,
                replica_stop=5,
            )

    def test_seedless_jobs_are_uncacheable(self, fast_config):
        job = SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=None, total_iterations=2)
        assert not job.cacheable
        with pytest.raises(ConfigurationError):
            _ = job.job_hash

    def test_split_tiles_the_range_independent_of_workers(self, fast_config):
        job = SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=10)
        chunks = job.split(3)
        assert [(c.replica_start, c.stop) for c in chunks] == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert job.split(None) == [job]
        assert job.split(10) == [job]
        with pytest.raises(ConfigurationError):
            job.split(0)

    def test_chunked_results_merge_bit_identical_to_full_solve(self, fast_config):
        machine = MSROPM(kings_graph(4, 4), fast_config)
        reference = machine.solve(iterations=5, seed=33)
        job = SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=33, total_iterations=5)
        chunks = job.split(2)
        merged = merge_job_results(chunks, [chunk.run() for chunk in chunks])
        _assert_identical(reference, merged)

    def test_solve_range_matches_slice_of_full_solve(self, fast_config):
        machine = MSROPM(kings_graph(4, 4), fast_config)
        reference = machine.solve(iterations=6, seed=9)
        window = machine.solve_range(total_iterations=6, start=2, stop=5, seed=9)
        assert [item.iteration_index for item in window] == [2, 3, 4]
        for ref_item, got in zip(reference.iterations[2:5], window):
            assert ref_item.seed == got.seed
            assert ref_item.accuracy == got.accuracy
            assert ref_item.coloring.assignment == got.coloring.assignment
        with pytest.raises(ConfigurationError):
            machine.solve_range(total_iterations=6, start=4, stop=3, seed=9)


class TestResultCache:
    def _job(self, fast_config, seed=5):
        return SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=seed, total_iterations=2)

    def test_store_and_load_round_trip(self, fast_config, tmp_path):
        cache = ResultCache(tmp_path)
        job = self._job(fast_config)
        result = job.run()
        assert cache.load(job) is None  # cold
        cache.store(job, result)
        loaded = cache.load(job)
        assert loaded is not None
        _assert_identical(result, loaded)
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_corrupt_and_mismatched_entries_read_as_misses(self, fast_config, tmp_path):
        cache = ResultCache(tmp_path)
        job = self._job(fast_config)
        cache.store(job, job.run())
        path = cache.path_for(job.job_hash)

        from repro.runtime.cache import CACHE_SCHEMA_VERSION

        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["cache_schema"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(job) is None

        payload["cache_schema"] = CACHE_SCHEMA_VERSION
        payload["result"]["format_version"] = 1  # stale results schema
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(job) is None

        path.write_text("{not json", encoding="utf-8")
        assert cache.load(job) is None

    def test_uncacheable_jobs_bypass_the_cache(self, fast_config, tmp_path):
        cache = ResultCache(tmp_path)
        job = SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=None, total_iterations=2)
        cache.store(job, job.run())
        assert not any(tmp_path.iterdir())
        assert cache.load(job) is None


class TestSchedulerAndRunner:
    def test_parallel_matches_serial_bit_for_bit(self, fast_config):
        """The acceptance property: --workers N == --workers 1, per seed."""
        requests = [
            SolveRequest(spec=KingsGraphSpec(4, 4), config=fast_config, iterations=4, seed=7),
            SolveRequest(spec=KingsGraphSpec(5, 4), config=fast_config, iterations=3, seed=8),
            SolveRequest(spec=KingsGraphSpec(4, 5), config=fast_config, iterations=2, seed=9),
        ]
        serial = ExperimentRunner(workers=1).solve_many(requests)
        parallel = ExperimentRunner(workers=4).solve_many(requests)
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)

    def test_parallel_chunked_matches_unchunked(self, fast_config):
        request = SolveRequest(spec=KingsGraphSpec(4, 4), config=fast_config, iterations=6, seed=21)
        unchunked = ExperimentRunner(workers=1).solve_many([request])[0]
        chunked = ExperimentRunner(workers=4, replica_chunk=2).solve_many([request])[0]
        _assert_identical(unchunked, chunked)

    def test_job_hashes_are_worker_independent(self, fast_config):
        job = SolveJob(spec=KingsGraphSpec(4, 4), config=fast_config, seed=7, total_iterations=4)
        assert [c.job_hash for c in job.split(2)] == [c.job_hash for c in job.split(2)]

    def test_runner_deduplicates_identical_jobs(self, fast_config):
        request = SolveRequest(spec=KingsGraphSpec(4, 4), config=fast_config, iterations=2, seed=3)
        runner = ExperimentRunner()
        first, second = runner.solve_many([request, request])
        assert runner.jobs_run == 1
        _assert_identical(first, second)
        # A later batch reuses the in-process memo, too.
        third = runner.solve_many([request])[0]
        assert runner.jobs_run == 1
        _assert_identical(first, third)

    def test_warm_cache_skips_all_solves_and_matches(self, fast_config, tmp_path):
        request = SolveRequest(spec=KingsGraphSpec(4, 4), config=fast_config, iterations=3, seed=11)
        cold = ExperimentRunner(cache_dir=tmp_path)
        first = cold.solve_many([request])[0]
        assert cold.stats()["jobs_run"] == 1 and cold.stats()["cache_stores"] == 1
        warm = ExperimentRunner(cache_dir=tmp_path)
        second = warm.solve_many([request])[0]
        assert warm.stats()["jobs_run"] == 0 and warm.stats()["cache_hits"] == 1
        _assert_identical(first, second)

    def test_seedless_requests_run_but_never_cache(self, fast_config, tmp_path):
        request = SolveRequest(spec=KingsGraphSpec(4, 4), config=fast_config, iterations=2, seed=None)
        runner = ExperimentRunner(cache_dir=tmp_path)
        result = runner.solve_many([request])[0]
        assert result.num_iterations == 2
        assert runner.stats()["cache_stores"] == 0

    def test_scheduler_rejects_bad_worker_counts(self):
        with pytest.raises(ConfigurationError):
            JobScheduler(workers=0)

    def test_scheduler_empty_batch(self):
        assert JobScheduler(workers=2).run([]) == []

    def test_chunked_map_preserves_submission_order(self, fast_config):
        """Many small jobs are shipped in chunks (chunksize > 1); results must
        still come back in submission order, matching each job's problem."""
        base_shapes = [(4, 4), (4, 5), (5, 4), (5, 5), (4, 6), (6, 4)]
        shapes = [base_shapes[index % len(base_shapes)] for index in range(17)]
        jobs = [
            SolveJob(
                spec=KingsGraphSpec(rows, cols),
                config=fast_config,
                seed=100 + index,
                total_iterations=1,
            )
            for index, (rows, cols) in enumerate(shapes)
        ]
        # With 2 workers and 17 jobs the derived chunksize is 17 // 8 = 2, so
        # this exercises the chunked path, not one-job-at-a-time dispatch.
        assert len(jobs) // (2 * 4) > 1
        results = JobScheduler(workers=2).run(jobs)
        serial = JobScheduler(workers=1).run(jobs)
        for (rows, cols), job, result, reference in zip(shapes, jobs, results, serial):
            assert result.graph.num_nodes == rows * cols
            assert [i.seed for i in result.iterations] == [i.seed for i in reference.iterations]
            assert np.array_equal(result.accuracies, reference.accuracies)


class TestSweepThroughRuntime:
    def test_parallel_sweep_matches_serial(self, fast_config, small_grid):
        strengths = (0.05, 0.1, 0.2)
        serial = coupling_strength_sweep(
            small_grid, strengths, base_config=fast_config, iterations=2, seed=4
        )
        parallel = coupling_strength_sweep(
            small_grid,
            strengths,
            base_config=fast_config,
            iterations=2,
            seed=4,
            runner=ExperimentRunner(workers=3),
        )
        assert [p.overrides for p in serial.points] == [p.overrides for p in parallel.points]
        for a, b in zip(serial.points, parallel.points):
            assert a.statistics == b.statistics
            assert a.mean_stage1_accuracy == b.mean_stage1_accuracy

    def test_invalid_grid_points_still_skipped(self, fast_config, small_grid):
        sweep = coupling_strength_sweep(
            small_grid, (0.1, 99.0), base_config=fast_config, iterations=1, seed=4
        )
        assert len(sweep.points) == 1

    def test_empty_value_sequence_yields_empty_sweep(self, fast_config, small_grid):
        sweep = coupling_strength_sweep(
            small_grid, (), base_config=fast_config, iterations=1, seed=4
        )
        assert sweep.points == []
