"""Tests for the analysis layer: statistics, reporting, sweeps and the comparison table."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import AnalysisError
from repro.analysis import (
    ComparisonRow,
    ComparisonTable,
    IterationStatistics,
    LITERATURE_ROWS,
    accuracy_percentiles,
    accuracy_range_text,
    accuracy_series_text,
    annealing_time_sweep,
    coupling_strength_sweep,
    expected_best_of_n,
    format_float,
    format_power_mw,
    format_search_space,
    format_table,
    format_time_ns,
    iterations_to_reach,
    shil_strength_sweep,
    sweep_configuration,
    text_histogram,
    time_to_solution,
)
from repro.core import MSROPM
from repro.graphs import kings_graph


class TestStatistics:
    def _result(self, fast_config, accuracies=None):
        machine = MSROPM(kings_graph(4, 4), fast_config)
        return machine.solve(iterations=3, seed=1)

    def test_iteration_statistics_from_result(self, fast_config):
        result = self._result(fast_config)
        stats = IterationStatistics.from_result(result)
        assert stats.num_iterations == 3
        assert stats.worst_accuracy <= stats.mean_accuracy <= stats.best_accuracy
        assert 0.0 <= stats.success_probability <= 1.0
        assert set(stats.as_dict()) >= {"best", "worst", "mean", "std", "exact"}

    def test_time_to_solution_formula(self):
        assert time_to_solution(60e-9, 1.0) == pytest.approx(60e-9)
        assert math.isinf(time_to_solution(60e-9, 0.0))
        halfway = time_to_solution(60e-9, 0.5, target_confidence=0.99)
        assert halfway == pytest.approx(60e-9 * math.log(0.01) / math.log(0.5))

    def test_time_to_solution_validation(self):
        with pytest.raises(AnalysisError):
            time_to_solution(-1.0, 0.5)
        with pytest.raises(AnalysisError):
            time_to_solution(1.0, 0.5, target_confidence=1.5)

    def test_accuracy_percentiles(self):
        percentiles = accuracy_percentiles([0.9, 0.92, 0.95, 1.0], percentiles=(0, 50, 100))
        assert percentiles[0.0] == 0.9
        assert percentiles[100.0] == 1.0
        with pytest.raises(AnalysisError):
            accuracy_percentiles([])

    def test_iterations_to_reach(self):
        assert iterations_to_reach([0.9, 0.95, 1.0], 1.0) == 3
        assert iterations_to_reach([0.9, 0.95], 1.0) is None

    def test_expected_best_of_n(self):
        accuracies = [0.9, 0.95, 1.0]
        single = expected_best_of_n(accuracies, 1, seed=1)
        many = expected_best_of_n(accuracies, 20, seed=1)
        assert many >= single
        with pytest.raises(AnalysisError):
            expected_best_of_n(accuracies, 0)
        with pytest.raises(AnalysisError):
            expected_best_of_n([], 3)


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("name", "value"), [["a", 1], ["long-name", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_table_validation(self):
        with pytest.raises(AnalysisError):
            format_table((), [])
        with pytest.raises(AnalysisError):
            format_table(("a",), [[1, 2]])

    def test_format_helpers(self):
        assert format_float(0.98765) == "0.988"
        assert format_float(float("nan")) == "nan"
        assert format_power_mw(0.2834) == "283.4 mW"
        assert format_time_ns(60e-9) == "60 ns"
        assert format_search_space(2116, 4) == "4^2116"

    def test_text_histogram(self):
        art = text_histogram([0.1, 0.1, 0.5, 0.9], num_bins=4, value_range=(0, 1), label="H")
        lines = art.splitlines()
        assert lines[0] == "H"
        assert len(lines) == 5
        assert text_histogram([], num_bins=3).endswith("(no data)")

    def test_text_histogram_validation(self):
        with pytest.raises(AnalysisError):
            text_histogram([0.5], num_bins=0)

    def test_accuracy_series_text(self):
        text = accuracy_series_text([0.9] * 25, label="series", per_line=10)
        lines = text.splitlines()
        assert lines[0] == "series"
        assert len(lines) == 4


class TestSweeps:
    def test_coupling_sweep_skips_invalid_points(self, fast_config):
        graph = kings_graph(4, 4)
        sweep = coupling_strength_sweep(graph, [0.05, 0.1, 0.9], base_config=fast_config, iterations=2, seed=1)
        # 0.9 exceeds the oscillation-quenching cap and is skipped.
        assert len(sweep.points) == 2
        assert sweep.parameter_names == ["coupling_strength"]
        best = sweep.best_point()
        assert best.mean_accuracy >= min(point.mean_accuracy for point in sweep.points)
        assert len(sweep.as_rows()) == 2

    def test_shil_sweep(self, fast_config):
        graph = kings_graph(4, 4)
        sweep = shil_strength_sweep(graph, [0.1, 0.25], base_config=fast_config, iterations=2, seed=2)
        assert len(sweep.points) == 2

    def test_annealing_time_sweep(self, fast_config):
        from repro.units import ns

        graph = kings_graph(4, 4)
        sweep = annealing_time_sweep(graph, [ns(2.0), ns(6.0)], base_config=fast_config, iterations=2, seed=3)
        assert len(sweep.points) == 2

    def test_sweep_validation(self, fast_config):
        graph = kings_graph(3, 3)
        with pytest.raises(AnalysisError):
            sweep_configuration(graph, fast_config, {}, iterations=1)
        with pytest.raises(AnalysisError):
            sweep_configuration(graph, fast_config, {"coupling_strength": [0.1]}, iterations=0)
        empty = sweep_configuration(graph, fast_config, {"coupling_strength": [5.0]}, iterations=1)
        with pytest.raises(AnalysisError):
            empty.best_point()


class TestComparisonTable:
    def test_row_rendering(self):
        row = ComparisonRow(
            label="MSROPM",
            solver_type="Potts",
            solved_cop="4-coloring",
            technology="CMOS 65nm GP",
            spins=2116,
            average_power_w=0.2834,
            time_to_solution_s=60e-9,
            accuracy_range="96%-97%",
            baseline="Exact solution",
        )
        cells = row.cells()
        assert "283.4 mW" in cells
        assert "60 ns" in cells

    def test_dnr_rendering(self):
        row = LITERATURE_ROWS[1]
        cells = row.cells()
        assert cells[5] == "DNR"
        assert cells[6] == "DNR"

    def test_microsecond_rendering(self):
        assert "500 us" in LITERATURE_ROWS[0].cells()

    def test_table_with_literature(self):
        table = ComparisonTable()
        table.add_row(LITERATURE_ROWS[0])
        merged = table.with_literature()
        assert len(merged.rows) == 1 + len(LITERATURE_ROWS)
        text = merged.render()
        assert "Implementation" in text
        assert "ROIM [8]" in text

    def test_empty_table_render(self):
        with pytest.raises(AnalysisError):
            ComparisonTable().render()

    def test_accuracy_range_text(self):
        assert accuracy_range_text(0.92, 0.98) == "92%-98%"
        with pytest.raises(AnalysisError):
            accuracy_range_text(0.99, 0.9)
        with pytest.raises(AnalysisError):
            accuracy_range_text(-0.1, 0.5)
