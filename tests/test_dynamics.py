"""Tests for the phase dynamics: integrators, the Kuramoto+SHIL model, noise, schedules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.circuit import paper_rosc
from repro.dynamics import (
    AnnealingPolicy,
    BatchedOscillatorModel,
    BlockDiagonalCoupling,
    CoupledOscillatorModel,
    GroupMaskedDenseCoupling,
    SharedCoupling,
    EnergyTrace,
    PhaseNoiseModel,
    Trajectory,
    constant_ramp,
    energy_trace,
    exponential_settle,
    integrate_euler_maruyama,
    integrate_rk4,
    integrate_scipy,
    linear_ramp,
    order_parameter_trace,
    perturbed_phases,
    random_initial_phases,
    smooth_ramp,
    uniform_coupling_matrix,
)
from repro.graphs import cycle_graph, kings_graph
from repro.rng import ReplicaRNG, make_rng


def two_oscillator_model(rate=1e9, shil_strength=0.0, shil_offset=0.0, order=2):
    """A pair of repulsively coupled oscillators."""
    matrix = uniform_coupling_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]), rate)
    return CoupledOscillatorModel(
        coupling_matrix=matrix,
        shil_strength=shil_strength,
        shil_offset=shil_offset,
        shil_order=order,
    )


class TestIntegrators:
    def test_rk4_exponential_decay(self):
        """RK4 must integrate d(theta)/dt = -k*theta accurately."""
        k = 1e9

        def rhs(_t, theta):
            return -k * theta

        trajectory = integrate_rk4(rhs, np.array([1.0]), duration=2e-9, dt=1e-11)
        assert trajectory.final_phases[0] == pytest.approx(np.exp(-2.0), rel=1e-4)

    def test_rk4_matches_scipy(self):
        model = two_oscillator_model(rate=5e8)
        start = np.array([0.3, 1.1])
        fixed = integrate_rk4(model, start, duration=5e-9, dt=2e-11)
        adaptive = integrate_scipy(model, start, duration=5e-9)
        assert np.allclose(fixed.final_phases, adaptive.final_phases, atol=1e-4)

    def test_euler_maruyama_without_noise_matches_rk4_loosely(self):
        model = two_oscillator_model(rate=5e8)
        start = np.array([0.3, 1.1])
        em = integrate_euler_maruyama(model, start, duration=5e-9, dt=5e-12, noise_amplitude=0.0)
        rk = integrate_rk4(model, start, duration=5e-9, dt=5e-12)
        assert np.allclose(em.final_phases, rk.final_phases, atol=1e-3)

    def test_euler_maruyama_noise_reproducible(self):
        model = two_oscillator_model()
        start = np.array([0.1, 2.0])
        a = integrate_euler_maruyama(model, start, 2e-9, 1e-11, noise_amplitude=1e6, seed=5)
        b = integrate_euler_maruyama(model, start, 2e-9, 1e-11, noise_amplitude=1e6, seed=5)
        assert np.allclose(a.final_phases, b.final_phases)

    def test_record_every_thins_trajectory(self):
        model = two_oscillator_model()
        dense = integrate_rk4(model, np.array([0.0, 1.0]), 1e-9, 1e-11, record_every=1)
        thin = integrate_rk4(model, np.array([0.0, 1.0]), 1e-9, 1e-11, record_every=10)
        assert len(thin.times) < len(dense.times)
        assert np.allclose(thin.final_phases, dense.final_phases)

    def test_validation(self):
        model = two_oscillator_model()
        with pytest.raises(SimulationError):
            integrate_rk4(model, np.zeros(2), duration=0.0, dt=1e-12)
        with pytest.raises(SimulationError):
            integrate_rk4(model, np.zeros(2), duration=1e-9, dt=-1e-12)
        with pytest.raises(SimulationError):
            integrate_euler_maruyama(model, np.zeros(2), 1e-9, 1e-12, noise_amplitude=-1.0)
        with pytest.raises(SimulationError):
            integrate_scipy(model, np.zeros(2), duration=-1.0)

    def test_trajectory_helpers(self):
        times = np.linspace(0, 1e-9, 5)
        phases = np.zeros((5, 3))
        trajectory = Trajectory(times=times, phases=phases)
        assert trajectory.num_steps == 4
        assert trajectory.at_time(0.6e-9).shape == (3,)
        other = Trajectory(times=times + 1e-9, phases=phases + 1.0)
        joined = trajectory.concatenate(other)
        assert len(joined.times) == 9

    def test_trajectory_shape_validation(self):
        with pytest.raises(SimulationError):
            Trajectory(times=np.zeros(3), phases=np.zeros((2, 4)))


class TestCoupledOscillatorModel:
    def test_repulsive_pair_settles_anti_phase(self):
        """Two B2B-coupled oscillators must end up 180 degrees apart."""
        model = two_oscillator_model(rate=2e9)
        trajectory = integrate_rk4(model, np.array([0.0, 0.5]), duration=20e-9, dt=2e-11)
        difference = abs(trajectory.final_phases[0] - trajectory.final_phases[1]) % (2 * np.pi)
        assert difference == pytest.approx(np.pi, abs=1e-2)

    def test_shil_binarizes_isolated_oscillators(self):
        """With SHIL only (no coupling), every phase must land on the 2-phase grid."""
        num = 16
        matrix = uniform_coupling_matrix(np.zeros((num, num)), 0.0)
        model = CoupledOscillatorModel(coupling_matrix=matrix, shil_strength=2e9, shil_order=2)
        start = random_initial_phases(num, seed=3)
        trajectory = integrate_rk4(model, start, duration=20e-9, dt=2e-11)
        final = np.mod(trajectory.final_phases, 2 * np.pi)
        distance_to_grid = np.minimum(
            np.minimum(np.abs(final - 0.0), np.abs(final - np.pi)), np.abs(final - 2 * np.pi)
        )
        assert np.all(distance_to_grid < 0.05)

    def test_shifted_shil_moves_the_lock_grid(self):
        num = 8
        matrix = uniform_coupling_matrix(np.zeros((num, num)), 0.0)
        model = CoupledOscillatorModel(
            coupling_matrix=matrix, shil_strength=2e9, shil_offset=np.pi / 2, shil_order=2
        )
        start = random_initial_phases(num, seed=4)
        final = np.mod(integrate_rk4(model, start, 20e-9, 2e-11).final_phases, 2 * np.pi)
        distance = np.minimum(np.abs(final - np.pi / 2), np.abs(final - 3 * np.pi / 2))
        assert np.all(distance < 0.05)

    def test_third_order_shil_creates_three_locks(self):
        num = 12
        matrix = uniform_coupling_matrix(np.zeros((num, num)), 0.0)
        model = CoupledOscillatorModel(coupling_matrix=matrix, shil_strength=2e9, shil_order=3)
        start = random_initial_phases(num, seed=5)
        final = np.mod(integrate_rk4(model, start, 20e-9, 2e-11).final_phases, 2 * np.pi)
        grid = np.array([0.0, 2 * np.pi / 3, 4 * np.pi / 3, 2 * np.pi])
        distance = np.min(np.abs(final[:, None] - grid[None, :]), axis=1)
        assert np.all(distance < 0.05)

    def test_energy_decreases_without_noise(self):
        """The noise-free flow is gradient descent on the model energy."""
        graph = kings_graph(4, 4)
        matrix = uniform_coupling_matrix(graph.sparse_adjacency(), 1e9)
        model = CoupledOscillatorModel(coupling_matrix=matrix, shil_strength=5e8, shil_order=2)
        start = random_initial_phases(graph.num_nodes, seed=8)
        trajectory = integrate_rk4(model, start, duration=10e-9, dt=1e-11, record_every=5)
        trace = energy_trace(model, trajectory)
        assert trace.is_monotone_nonincreasing(tolerance=1e-3)
        assert trace.final < trace.initial

    def test_order_parameter_bounds(self):
        model = two_oscillator_model()
        assert model.order_parameter(np.array([0.0, 0.0])) == pytest.approx(1.0)
        assert model.order_parameter(np.array([0.0, np.pi])) == pytest.approx(0.0, abs=1e-12)

    def test_second_harmonic_order_parameter_detects_binarization(self):
        model = two_oscillator_model()
        binarized = np.array([0.0, np.pi])
        assert model.order_parameter(binarized, harmonic=2) == pytest.approx(1.0)

    def test_detuning_shifts_rates(self):
        matrix = uniform_coupling_matrix(np.zeros((2, 2)), 0.0)
        model = CoupledOscillatorModel(coupling_matrix=matrix, frequency_detuning=np.array([1e9, -1e9]))
        rates = model(0.0, np.array([0.0, 0.0]))
        assert rates[0] == pytest.approx(1e9)
        assert rates[1] == pytest.approx(-1e9)

    def test_ramps_scale_terms(self):
        model = CoupledOscillatorModel(
            coupling_matrix=uniform_coupling_matrix(np.array([[0, 1], [1, 0]]), 1e9),
            shil_strength=1e9,
            coupling_ramp=constant_ramp(0.0),
            shil_ramp=constant_ramp(0.0),
        )
        rates = model(0.0, np.array([0.3, 1.0]))
        assert np.allclose(rates, 0.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            CoupledOscillatorModel(coupling_matrix=np.zeros((2, 3)))
        with pytest.raises(SimulationError):
            CoupledOscillatorModel(coupling_matrix=np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(SimulationError):
            CoupledOscillatorModel(coupling_matrix=np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(SimulationError):
            CoupledOscillatorModel(coupling_matrix=np.zeros((2, 2)), shil_order=1)
        with pytest.raises(SimulationError):
            CoupledOscillatorModel(coupling_matrix=np.zeros((2, 2)), shil_strength=-1.0)
        model = two_oscillator_model()
        with pytest.raises(SimulationError):
            model(0.0, np.zeros(3))
        with pytest.raises(SimulationError):
            uniform_coupling_matrix(np.eye(2), -1.0)


class TestBatchedDynamics:
    """Shape and equivalence properties of the (R, N) batched code paths."""

    def test_model_accepts_flat_and_batched_phases(self):
        model = two_oscillator_model(rate=5e8)
        flat = model(0.0, np.array([0.3, 1.1]))
        assert flat.shape == (2,)
        batch = np.array([[0.3, 1.1], [1.0, 0.2], [2.0, 2.5]])
        batched = model(0.0, batch)
        assert batched.shape == (3, 2)
        # Each batched row is bit-identical to the flat evaluation.
        for row, phases in zip(batched, batch):
            assert np.array_equal(row, model(0.0, phases))
        with pytest.raises(SimulationError):
            model(0.0, np.zeros((3, 3)))

    def test_rk4_batched_rows_match_individual_runs(self):
        model = two_oscillator_model(rate=5e8)
        batch = np.array([[0.3, 1.1], [1.9, 0.4]])
        together = integrate_rk4(model, batch, duration=2e-9, dt=2e-11)
        assert together.phases.shape[1:] == (2, 2)
        assert together.final_phases.shape == (2, 2)
        for index in range(2):
            alone = integrate_rk4(model, batch[index], duration=2e-9, dt=2e-11)
            assert np.array_equal(together.final_phases[index], alone.final_phases)

    def test_euler_maruyama_batched_matches_per_replica_streams(self):
        model = two_oscillator_model(rate=5e8)
        batch = np.array([[0.3, 1.1], [1.9, 0.4], [0.1, 2.2]])
        seeds = [11, 12, 13]
        together = integrate_euler_maruyama(
            model, batch, duration=2e-9, dt=2e-11, noise_amplitude=1e6,
            seed=ReplicaRNG.from_seeds(seeds),
        )
        for index, seed in enumerate(seeds):
            alone = integrate_euler_maruyama(
                model, batch[index], duration=2e-9, dt=2e-11, noise_amplitude=1e6, seed=seed
            )
            assert np.array_equal(together.final_phases[index], alone.final_phases)

    def test_trajectory_supports_batched_phases(self):
        times = np.linspace(0, 1e-9, 4)
        phases = np.zeros((4, 5, 3))
        trajectory = Trajectory(times=times, phases=phases)
        assert trajectory.final_phases.shape == (5, 3)
        joined = trajectory.concatenate(
            Trajectory(times=times + 1e-9, phases=phases + 1.0)
        )
        assert joined.phases.shape == (7, 5, 3)
        with pytest.raises(SimulationError):
            trajectory.concatenate(Trajectory(times=times, phases=np.zeros((4, 2, 3))))

    def test_shared_coupling_matches_per_replica_matvec(self):
        matrix = uniform_coupling_matrix(kings_graph(3, 3).sparse_adjacency(), 1e9)
        operator = SharedCoupling(matrix)
        field = make_rng(0).uniform(-1.0, 1.0, size=(4, 9))
        applied = operator.apply(field)
        paired_a, paired_b = operator.apply_pair(field, field * 2.0)
        for index in range(4):
            expected = matrix @ field[index]
            assert np.array_equal(applied[index], expected)
            assert np.array_equal(paired_a[index], expected)
            assert np.array_equal(paired_b[index], matrix @ (field[index] * 2.0))

    def test_block_diagonal_coupling_matches_per_replica_matvec(self):
        rng = make_rng(1)
        blocks = []
        for _ in range(3):
            dense = np.triu(rng.uniform(0.0, 1.0, size=(6, 6)), k=1)
            blocks.append(dense + dense.T)
        operator = BlockDiagonalCoupling(blocks)
        field = rng.uniform(-1.0, 1.0, size=(3, 6))
        applied = operator.apply(field)
        paired_a, paired_b = operator.apply_pair(field, -field)
        for index, block in enumerate(blocks):
            assert np.allclose(applied[index], block @ field[index])
            assert np.array_equal(paired_a[index], applied[index])
            assert np.array_equal(paired_b[index], -applied[index])
        with pytest.raises(SimulationError):
            operator.apply(np.zeros((2, 6)))

    def test_group_masked_dense_equals_gated_matrices(self):
        rng = make_rng(2)
        dense = np.triu(rng.uniform(0.0, 1.0, size=(8, 8)), k=1)
        base = dense + dense.T
        groups = np.array([[0, 0, 1, 1, 0, 1, 0, 1], [1, 1, 1, 1, 0, 0, 0, 0]])
        operator = GroupMaskedDenseCoupling(base, groups)
        field = rng.uniform(-1.0, 1.0, size=(2, 8))
        applied = operator.apply(field)
        for index in range(2):
            gate = (groups[index][:, None] == groups[index][None, :]).astype(float)
            assert np.allclose(applied[index], (base * gate) @ field[index])

    def test_group_masked_dense_single_group_is_plain_gemm(self):
        base = np.array([[0.0, 2.0], [2.0, 0.0]])
        operator = GroupMaskedDenseCoupling(base, np.zeros((3, 2), dtype=int))
        field = np.arange(6.0).reshape(3, 2)
        assert np.allclose(operator.apply(field), field @ base)

    def test_batched_model_matches_sequential_model(self):
        matrix = uniform_coupling_matrix(kings_graph(3, 3).sparse_adjacency(), 1e9)
        sequential = CoupledOscillatorModel(
            coupling_matrix=matrix, shil_strength=5e8, shil_offset=0.25, shil_order=2
        )
        batched = BatchedOscillatorModel(
            coupling=SharedCoupling(matrix),
            num_oscillators=9,
            shil_strength=5e8,
            shil_offset=0.25,
            shil_order=2,
        )
        batch = make_rng(3).uniform(0.0, 2 * np.pi, size=(5, 9))
        together = batched(0.0, batch)
        for index in range(5):
            assert np.array_equal(together[index], sequential(0.0, batch[index]))

    def test_batched_model_validation(self):
        operator = SharedCoupling(np.zeros((3, 3)))
        with pytest.raises(SimulationError):
            BatchedOscillatorModel(coupling=operator, num_oscillators=3, shil_order=1)
        with pytest.raises(SimulationError):
            BatchedOscillatorModel(coupling=operator, num_oscillators=3, shil_strength=-1.0)
        with pytest.raises(SimulationError):
            BatchedOscillatorModel(
                coupling=operator, num_oscillators=3, frequency_detuning=np.zeros(2)
            )
        model = BatchedOscillatorModel(coupling=operator, num_oscillators=3)
        with pytest.raises(SimulationError):
            model(0.0, np.zeros(3))  # flat input: batched model wants (R, N)

    @given(replicas=st.integers(min_value=1, max_value=5), seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_batched_initial_phases_shape_property(self, replicas, seed):
        rng = ReplicaRNG.from_seeds(list(range(seed, seed + replicas)))
        phases = random_initial_phases(7, rng)
        assert phases.shape == (replicas, 7)
        assert np.all((phases >= 0.0) & (phases < 2 * np.pi))
        perturbed = perturbed_phases(phases, amplitude=0.1, seed=rng)
        assert perturbed.shape == (replicas, 7)
        assert np.all(np.abs(perturbed - phases) <= 0.1)


class TestNoise:
    def test_diffusion_from_oscillator(self):
        model = PhaseNoiseModel.from_oscillator(paper_rosc(), jitter_fraction=0.01)
        assert model.diffusion > 0

    def test_phase_std_grows_with_sqrt_time(self):
        model = PhaseNoiseModel(diffusion=1e6)
        assert model.phase_std_after(4e-9) == pytest.approx(2 * model.phase_std_after(1e-9))

    def test_sample_walk_statistics(self):
        model = PhaseNoiseModel(diffusion=1e7)
        samples = model.sample_walk(20000, 10e-9, seed=1)
        assert np.std(samples) == pytest.approx(model.phase_std_after(10e-9), rel=0.05)

    def test_random_initial_phases_uniform(self):
        phases = random_initial_phases(10000, seed=2)
        assert 0 <= phases.min() and phases.max() < 2 * np.pi
        assert np.mean(phases) == pytest.approx(np.pi, rel=0.05)

    def test_perturbed_phases_bounded(self):
        base = np.zeros(100)
        perturbed = perturbed_phases(base, amplitude=0.3, seed=3)
        assert np.all(np.abs(perturbed) <= 0.3)

    def test_validation(self):
        with pytest.raises(SimulationError):
            PhaseNoiseModel(diffusion=-1.0)
        with pytest.raises(SimulationError):
            perturbed_phases(np.zeros(3), amplitude=-0.1)
        with pytest.raises(SimulationError):
            random_initial_phases(-1)


class TestSchedules:
    def test_constant_ramp(self):
        ramp = constant_ramp(0.7)
        assert ramp(0.0) == 0.7
        assert ramp(100.0) == 0.7

    def test_linear_ramp_endpoints_and_clamping(self):
        ramp = linear_ramp(10e-9, start=0.0, end=1.0, t0=5e-9)
        assert ramp(0.0) == 0.0
        assert ramp(10e-9) == pytest.approx(0.5)
        assert ramp(15e-9) == pytest.approx(1.0)
        assert ramp(100e-9) == pytest.approx(1.0)

    def test_smooth_ramp_monotone(self):
        ramp = smooth_ramp(10e-9)
        values = [ramp(t) for t in np.linspace(0, 10e-9, 21)]
        assert values == sorted(values)
        assert values[0] == pytest.approx(0.0)
        assert values[-1] == pytest.approx(1.0)

    def test_exponential_settle(self):
        ramp = exponential_settle(1e-9, start=0.0, end=1.0)
        assert ramp(0.0) == 0.0
        assert ramp(5e-9) == pytest.approx(1.0, abs=1e-2)

    def test_annealing_policy_ramps(self):
        policy = AnnealingPolicy(shil_ramp_fraction=0.5, coupling_soft_start_fraction=0.1)
        shil = policy.shil_ramp(10e-9, 4e-9)
        assert shil(10e-9) == pytest.approx(0.0)
        assert shil(12e-9) == pytest.approx(1.0)
        coupling = policy.coupling_ramp(0.0, 10e-9)
        assert coupling(0.0) == pytest.approx(0.2)
        assert coupling(2e-9) == pytest.approx(1.0)

    def test_zero_fraction_policies_are_constant(self):
        policy = AnnealingPolicy(shil_ramp_fraction=0.0, coupling_soft_start_fraction=0.0)
        assert policy.shil_ramp(0.0, 1e-9)(0.0) == 1.0
        assert policy.coupling_ramp(0.0, 1e-9)(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            linear_ramp(0.0)
        with pytest.raises(SimulationError):
            smooth_ramp(1e-9, start=-0.1)
        with pytest.raises(SimulationError):
            exponential_settle(0.0)
        with pytest.raises(SimulationError):
            constant_ramp(-1.0)
        with pytest.raises(SimulationError):
            AnnealingPolicy(shil_ramp_fraction=1.5)


class TestEnergyTrace:
    def test_trace_fields(self):
        trace = EnergyTrace(times=np.array([0.0, 1.0, 2.0]), energies=np.array([3.0, 2.0, 1.0]))
        assert trace.initial == 3.0
        assert trace.final == 1.0
        assert trace.minimum == 1.0
        assert trace.total_decrease() == 2.0
        assert trace.is_monotone_nonincreasing()

    def test_trace_shape_validation(self):
        with pytest.raises(SimulationError):
            EnergyTrace(times=np.zeros(3), energies=np.zeros(2))

    def test_order_parameter_trace(self):
        model = two_oscillator_model(rate=2e9)
        trajectory = integrate_rk4(model, np.array([0.0, 0.3]), 10e-9, 2e-11, record_every=10)
        series = order_parameter_trace(model, trajectory)
        assert series.shape == (len(trajectory.times),)
        # Repulsive coupling drives the pair towards anti-phase, i.e. low first-harmonic order.
        assert series[-1] < series[0]
