"""Tests for the unit helpers and RNG management."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.rng import iteration_seeds, make_rng, random_phases, spawn_rngs


class TestUnits:
    def test_nanoseconds(self):
        assert units.ns(5.0) == pytest.approx(5e-9)

    def test_microseconds(self):
        assert units.us(2.0) == pytest.approx(2e-6)

    def test_gigahertz(self):
        assert units.ghz(1.3) == pytest.approx(1.3e9)

    def test_milliwatts(self):
        assert units.mw(9.4) == pytest.approx(9.4e-3)

    def test_femtofarads(self):
        assert units.ff(2.3) == pytest.approx(2.3e-15)

    def test_round_trip_time(self):
        assert units.as_ns(units.ns(20.0)) == pytest.approx(20.0)

    def test_round_trip_frequency(self):
        assert units.as_ghz(units.ghz(7.0)) == pytest.approx(7.0)

    def test_round_trip_power(self):
        assert units.as_mw(units.mw(283.4)) == pytest.approx(283.4)
        assert units.as_uw(units.uw(8.0)) == pytest.approx(8.0)

    def test_picoseconds_and_picofarads(self):
        assert units.ps(10.0) == pytest.approx(1e-11)
        assert units.pf(1.0) == pytest.approx(1e-12)

    def test_microamperes(self):
        assert units.ua(600.0) == pytest.approx(6e-4)


class TestRng:
    def test_make_rng_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_make_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3)
        draws = [rng.integers(0, 10**9) for rng in rngs]
        assert len(set(draws)) == 3

    def test_spawn_rngs_reproducible(self):
        first = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 3)]
        second = [rng.integers(0, 10**9) for rng in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_iteration_seeds_deterministic(self):
        assert iteration_seeds(5, 4) == iteration_seeds(5, 4)

    def test_iteration_seeds_distinct(self):
        seeds = iteration_seeds(5, 40)
        assert len(set(seeds)) == 40

    def test_iteration_seeds_count_validation(self):
        with pytest.raises(ValueError):
            iteration_seeds(0, -2)

    def test_random_phases_range(self):
        phases = random_phases(1000, rng=3)
        assert phases.shape == (1000,)
        assert phases.min() >= 0.0
        assert phases.max() < 2 * np.pi

    def test_random_phases_negative(self):
        with pytest.raises(ValueError):
            random_phases(-1)
