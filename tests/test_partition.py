"""Tests for graph bipartitions and the divide-and-color split helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Bipartition,
    balanced_halves,
    cut_edges,
    cut_size,
    cycle_graph,
    internal_edges,
    kings_graph,
    kings_graph_reference_coloring,
    partition_from_coloring_bit,
    split_graph,
)


class TestBipartition:
    def test_from_sets(self):
        partition = Bipartition.from_sets([1, 2], [3])
        assert partition.side_of(1) == 0
        assert partition.side_of(3) == 1
        assert partition.nodes == {1, 2, 3}

    def test_overlap_rejected(self):
        with pytest.raises(GraphError):
            Bipartition.from_sets([1, 2], [2, 3])

    def test_from_labels(self):
        partition = Bipartition.from_labels({1: 0, 2: 1, 3: 0})
        assert partition.side_a == frozenset({1, 3})

    def test_from_labels_invalid(self):
        with pytest.raises(GraphError):
            Bipartition.from_labels({1: 2})

    def test_side_of_missing(self):
        partition = Bipartition.from_sets([1], [2])
        with pytest.raises(GraphError):
            partition.side_of(3)

    def test_labels_round_trip(self):
        labels = {1: 0, 2: 1, 3: 1}
        assert Bipartition.from_labels(labels).labels() == labels

    def test_covers(self):
        graph = cycle_graph(4)
        partition = Bipartition.from_sets([0, 2], [1, 3])
        assert partition.covers(graph)
        assert not Bipartition.from_sets([0], [1]).covers(graph)


class TestCuts:
    def test_cut_edges_cycle(self):
        graph = cycle_graph(4)
        partition = Bipartition.from_sets([0, 2], [1, 3])
        assert cut_size(graph, partition) == 4
        assert len(internal_edges(graph, partition)) == 0

    def test_cut_requires_coverage(self):
        graph = cycle_graph(4)
        with pytest.raises(GraphError):
            cut_edges(graph, Bipartition.from_sets([0], [1]))

    def test_internal_plus_cut_equals_total(self):
        graph = kings_graph(5, 5)
        partition = balanced_halves(graph)
        assert cut_size(graph, partition) + len(internal_edges(graph, partition)) == graph.num_edges

    def test_split_graph(self):
        graph = kings_graph(4, 4)
        partition = balanced_halves(graph)
        sub_a, sub_b = split_graph(graph, partition)
        assert sub_a.num_nodes + sub_b.num_nodes == graph.num_nodes
        assert sub_a.num_edges + sub_b.num_edges == len(internal_edges(graph, partition))

    def test_partition_from_coloring_bit(self):
        coloring = kings_graph_reference_coloring(4, 4)
        partition = partition_from_coloring_bit(coloring.assignment, bit=1)
        # Bit 1 separates colors {0,1} (even rows) from {2,3} (odd rows).
        assert partition.side_of((0, 0)) == 0
        assert partition.side_of((1, 0)) == 1

    def test_partition_from_coloring_bit_negative(self):
        with pytest.raises(GraphError):
            partition_from_coloring_bit({1: 0}, bit=-1)

    def test_reference_partition_makes_subgraphs_bipartite(self):
        """Cutting a King's graph on the reference coloring's high bit leaves rows of paths."""
        from repro.graphs import is_bipartite

        graph = kings_graph(6, 6)
        coloring = kings_graph_reference_coloring(6, 6)
        partition = partition_from_coloring_bit(coloring.assignment, bit=1)
        sub_a, sub_b = split_graph(graph, partition)
        assert is_bipartite(sub_a)
        assert is_bipartite(sub_b)

    def test_balanced_halves_sizes(self):
        graph = kings_graph(5, 5)
        partition = balanced_halves(graph)
        assert abs(len(partition.side_a) - len(partition.side_b)) <= 1
