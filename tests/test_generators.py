"""Tests for the benchmark graph generators."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    PAPER_PROBLEM_SIDES,
    PAPER_PROBLEM_SIZES,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hexagonal_graph,
    kings_graph,
    kings_graph_with_inactive_edges,
    paper_kings_graph,
    path_graph,
    random_planar_triangulation,
    random_regular_like_graph,
    star_graph,
    is_kings_graph_shape,
)


class TestKingsGraph:
    def test_size_7x7(self):
        graph = kings_graph(7, 7)
        assert graph.num_nodes == 49
        # 2*r*c - r - c horizontal+vertical plus 2*(r-1)*(c-1) diagonals
        assert graph.num_edges == (7 * 6) * 2 + 2 * 6 * 6

    def test_interior_degree_is_eight(self):
        graph = kings_graph(5, 5)
        assert graph.degree((2, 2)) == 8

    def test_corner_degree_is_three(self):
        graph = kings_graph(5, 5)
        assert graph.degree((0, 0)) == 3
        assert graph.degree((4, 4)) == 3

    def test_edge_degree_is_five(self):
        graph = kings_graph(5, 5)
        assert graph.degree((0, 2)) == 5

    def test_degree_signature_check(self):
        assert is_kings_graph_shape(kings_graph(6, 6))
        assert not is_kings_graph_shape(grid_graph(6, 6))

    def test_rectangular(self):
        graph = kings_graph(2, 3)
        assert graph.num_nodes == 6
        assert graph.has_edge((0, 0), (1, 1))

    def test_invalid_sizes(self):
        with pytest.raises(GraphError):
            kings_graph(0, 3)

    @pytest.mark.parametrize("num_nodes", PAPER_PROBLEM_SIZES)
    def test_paper_sizes(self, num_nodes):
        side = PAPER_PROBLEM_SIDES[num_nodes]
        graph = paper_kings_graph(num_nodes)
        assert graph.num_nodes == num_nodes
        assert graph.num_nodes == side * side

    def test_paper_kings_graph_other_square(self):
        assert paper_kings_graph(81).num_nodes == 81

    def test_paper_kings_graph_rejects_non_square(self):
        with pytest.raises(GraphError):
            paper_kings_graph(50)

    def test_inactive_edges_fraction(self):
        full = kings_graph(6, 6)
        sparse = kings_graph_with_inactive_edges(6, 6, active_fraction=0.5, seed=1)
        assert sparse.num_nodes == full.num_nodes
        assert 0 < sparse.num_edges < full.num_edges

    def test_inactive_edges_full_fraction_identical(self):
        assert kings_graph_with_inactive_edges(4, 4, active_fraction=1.0).num_edges == kings_graph(4, 4).num_edges

    def test_inactive_edges_invalid_fraction(self):
        with pytest.raises(GraphError):
            kings_graph_with_inactive_edges(4, 4, active_fraction=1.5)


class TestOtherGenerators:
    def test_grid(self):
        graph = grid_graph(3, 4)
        assert graph.num_nodes == 12
        assert graph.num_edges == 3 * 3 + 2 * 4
        assert graph.degree((1, 1)) == 4

    def test_hexagonal_max_degree_six(self):
        graph = hexagonal_graph(5, 5)
        assert max(graph.degrees().values()) <= 6
        assert graph.num_edges > grid_graph(5, 5).num_edges

    def test_cycle(self):
        graph = cycle_graph(6)
        assert graph.num_edges == 6
        assert all(degree == 2 for degree in graph.degrees().values())

    def test_tiny_cycles(self):
        assert cycle_graph(1).num_edges == 0
        assert cycle_graph(2).num_edges == 1

    def test_path(self):
        graph = path_graph(5)
        assert graph.num_edges == 4

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_star(self):
        graph = star_graph(4)
        assert graph.num_nodes == 5
        assert graph.degree(0) == 4

    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(2, 3)
        assert graph.num_edges == 6

    def test_erdos_renyi_bounds(self):
        empty = erdos_renyi_graph(10, 0.0, seed=1)
        full = erdos_renyi_graph(10, 1.0, seed=1)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi_graph(15, 0.3, seed=4)
        b = erdos_renyi_graph(15, 0.3, seed=4)
        assert set(a.edges()) == set(b.edges())

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_random_regular_like(self):
        graph = random_regular_like_graph(20, 4, seed=2)
        assert graph.num_nodes == 20
        assert max(graph.degrees().values()) <= 4 + 1  # allow slight deviation

    def test_random_regular_like_invalid_degree(self):
        with pytest.raises(GraphError):
            random_regular_like_graph(5, 5)

    def test_random_planar_triangulation(self):
        graph = random_planar_triangulation(30, seed=3)
        assert graph.num_nodes == 30
        # Planar graphs satisfy E <= 3V - 6.
        assert graph.num_edges <= 3 * 30 - 6
        assert graph.is_connected()

    def test_random_planar_minimum_points(self):
        with pytest.raises(GraphError):
            random_planar_triangulation(2)
