"""Tests for solve-result serialization and the process-variation (detuning) feature."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import AnalysisError, ConfigurationError
from repro.analysis import (
    load_solve_result,
    save_solve_result,
    solve_result_from_dict,
    solve_result_to_dict,
)
from repro.core import MSROPM, MSROPMConfig
from repro.experiments import run_detuning_ablation
from repro.graphs import kings_graph


class TestResultsIO:
    def _solve(self, fast_config):
        machine = MSROPM(kings_graph(4, 4), fast_config)
        return machine.solve(iterations=3, seed=9)

    def test_round_trip_preserves_everything_relevant(self, fast_config, tmp_path):
        result = self._solve(fast_config)
        path = tmp_path / "result.json"
        save_solve_result(result, path)
        loaded = load_solve_result(path)
        assert loaded.num_iterations == result.num_iterations
        assert loaded.num_colors == result.num_colors
        assert np.allclose(loaded.accuracies, result.accuracies)
        assert np.allclose(loaded.stage1_accuracies, result.stage1_accuracies)
        for original, restored in zip(result.iterations, loaded.iterations):
            assert restored.seed == original.seed
            assert restored.coloring.assignment == original.coloring.assignment
            assert restored.run_time == pytest.approx(original.run_time)
            for stage_a, stage_b in zip(original.stage_results, restored.stage_results):
                assert stage_b.cut_value == stage_a.cut_value
                assert stage_b.partition.side_b == stage_a.partition.side_b

    def test_dict_round_trip_without_files(self, fast_config):
        from repro.analysis.results_io import FORMAT_VERSION, SCHEMA

        result = self._solve(fast_config)
        payload = solve_result_to_dict(result)
        assert payload["schema"] == SCHEMA
        assert payload["format_version"] == FORMAT_VERSION
        rebuilt = solve_result_from_dict(json.loads(json.dumps(payload)))
        assert np.allclose(rebuilt.accuracies, result.accuracies)

    def test_malformed_payload_rejected(self):
        from repro.analysis.results_io import SCHEMA

        with pytest.raises(AnalysisError):
            solve_result_from_dict({"iterations": []})
        with pytest.raises(AnalysisError):
            solve_result_from_dict(
                {"graph": {}, "iterations": [], "schema": SCHEMA, "format_version": 99, "num_colors": 4}
            )

    def test_schema_mismatch_rejected(self, fast_config):
        """Version-1 payloads (no schema field) and foreign schemas must not load."""
        payload = solve_result_to_dict(self._solve(fast_config))
        legacy = dict(payload)
        del legacy["schema"]
        legacy["format_version"] = 1
        with pytest.raises(AnalysisError):
            solve_result_from_dict(legacy)
        foreign = dict(payload)
        foreign["schema"] = "someone-else/results"
        with pytest.raises(AnalysisError):
            solve_result_from_dict(foreign)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_solve_result(path)


class TestFrequencyDetuning:
    def test_config_validation(self):
        assert MSROPMConfig(frequency_detuning_std=0.01).frequency_detuning_rate_std > 0
        with pytest.raises(ConfigurationError):
            MSROPMConfig(frequency_detuning_std=-0.01)
        with pytest.raises(ConfigurationError):
            MSROPMConfig(frequency_detuning_std=0.2)

    def test_detuning_rate_scales_with_frequency(self):
        config = MSROPMConfig(frequency_detuning_std=0.01)
        assert config.frequency_detuning_rate_std == pytest.approx(0.01 * 2 * np.pi * 1.3e9)

    def test_detuning_rate_is_relative_fraction_times_angular_frequency(self):
        """Pin the unit relationship between the two detuning knobs.

        ``frequency_detuning_std`` is a dimensionless *fraction* of the
        oscillator frequency; ``frequency_detuning_rate_std`` is its exact
        rad/s conversion: ``fraction * 2*pi*f`` (= ``fraction *
        angular_frequency``), for every frequency.
        """
        for frequency, fraction in ((1.3e9, 0.01), (2.0e9, 0.003), (5.0e8, 0.05)):
            config = MSROPMConfig(
                oscillator_frequency=frequency, frequency_detuning_std=fraction
            )
            assert config.frequency_detuning_rate_std == fraction * config.angular_frequency
            assert config.frequency_detuning_rate_std == pytest.approx(
                fraction * 2.0 * np.pi * frequency, rel=1e-15
            )
        # The idealized default draws no mismatch at all.
        assert MSROPMConfig().frequency_detuning_rate_std == 0.0

    def test_machine_draws_mismatch_with_rate_std(self, fast_config):
        """The machine's static mismatch is drawn in rad/s (the converted knob)."""
        config = fast_config.with_updates(frequency_detuning_std=0.01, seed=11)
        machine = MSROPM(kings_graph(5, 5), config)
        from repro.rng import make_rng

        expected = make_rng(config.seed).normal(
            0.0, config.frequency_detuning_rate_std, size=25
        )
        assert np.array_equal(machine._frequency_detuning, expected)

    def test_small_detuning_keeps_accuracy_high(self, fast_config):
        """Injection locking tolerates sub-percent mismatch (flat accuracy)."""
        graph = kings_graph(5, 5)
        ideal = MSROPM(graph, fast_config).solve(iterations=3, seed=4)
        mismatched = MSROPM(
            graph, fast_config.with_updates(frequency_detuning_std=0.002)
        ).solve(iterations=3, seed=4)
        assert mismatched.best_accuracy >= ideal.best_accuracy - 0.1

    def test_detuning_changes_outcomes(self, fast_config):
        graph = kings_graph(5, 5)
        ideal = MSROPM(graph, fast_config).run_iteration(seed=6)
        mismatched = MSROPM(
            graph, fast_config.with_updates(frequency_detuning_std=0.02)
        ).run_iteration(seed=6)
        assert mismatched.coloring.assignment != ideal.coloring.assignment

    def test_detuning_is_static_per_machine(self, fast_config):
        """The same machine instance re-uses its mismatch across iterations (like silicon)."""
        config = fast_config.with_updates(frequency_detuning_std=0.01, seed=42)
        machine = MSROPM(kings_graph(4, 4), config)
        assert machine._frequency_detuning is not None
        first = machine._frequency_detuning.copy()
        machine.run_iteration(seed=1)
        assert np.array_equal(machine._frequency_detuning, first)
        # A second machine with the same seed draws the same mismatch.
        other = MSROPM(kings_graph(4, 4), config)
        assert np.allclose(other._frequency_detuning, first)

    def test_detuning_ablation_runs(self, fast_config):
        sweep = run_detuning_ablation(
            rows=4, detuning_stds=(0.0, 0.01), iterations=2, config=fast_config, seed=19
        )
        assert len(sweep.points) == 2
        assert sweep.parameter_names == ["frequency_detuning_std"]
