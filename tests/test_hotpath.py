"""Bit-identity regressions for the hot-path overhaul.

Every fast path introduced by the overhaul is pinned here against a slow
reference:

* the in-place, preallocated-recording integrators against verbatim copies of
  the original allocating loops (including the chunked noise stream),
* the final-state integrator entry points against the recording variants,
* the precompiled coupling operators (direct ``csr_matvec(s)`` kernels,
  vectorized block-diagonal construction) against the scipy-dispatch
  reference operators and the per-replica ``block_diag`` construction,
* the fast batched stage/engine against the legacy engine body
  (``fast_path=False``) and the sequential engine,
* the no-trajectory guarantee (a default solve materializes no
  :class:`Trajectory` at all),
* the warm scheduler pool, the per-worker machine memo, and the cached
  reference solutions against their cold equivalents.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from scipy import sparse

from repro.core import MSROPM, BatchedEngine, MSROPMConfig, SequentialEngine
from repro.core.config import TimingPlan
from repro.core.stages import CouplingPlan, StageExecutor, partition_coupling_matrix
from repro.dynamics import integrators
from repro.dynamics.batched import (
    BatchedOscillatorModel,
    BlockDiagonalCoupling,
    FastBlockDiagonalCoupling,
    FastSharedCoupling,
    SharedCoupling,
    gated_block_diagonal_csr,
)
from repro.dynamics.integrators import (
    Trajectory,
    euler_maruyama_final,
    integrate_euler_maruyama,
    integrate_rk4,
    rk4_final,
)
from repro.dynamics.kuramoto import CoupledOscillatorModel
from repro.graphs import kings_graph
from repro.rng import ReplicaRNG, make_rng, normal_noise_block
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import (
    MACHINE_MEMO_STATS,
    GeneratedGraphSpec,
    KingsGraphSpec,
    SolveJob,
    clear_machine_memo,
)
from repro.runtime.scheduler import WORKER_THREAD_CAPS, JobScheduler, _worker_init
from repro.units import ns
from repro.workloads.registry import cached_reference, expand_workloads, reference_cache_key

NOISE_BLOCK_ELEMENTS = integrators._NOISE_BLOCK_ELEMENTS


def _crash_worker(job):
    """Stand-in worker entry point that kills its process (pool-crash test)."""
    os._exit(1)


# ----------------------------------------------------------------------
# Verbatim pre-overhaul integrator loops (the bit-identity anchors)
# ----------------------------------------------------------------------
def reference_euler_maruyama(
    rhs, initial_phases, duration, dt, noise_amplitude=0.0, seed=None,
    start_time=0.0, record_every=1,
):
    num_steps = int(np.ceil(duration / dt))
    step = duration / num_steps
    rng = make_rng(seed)
    theta = np.array(initial_phases, dtype=float)
    times = [start_time]
    states = [theta.copy()]
    noise_scale = np.sqrt(2.0 * noise_amplitude * step)
    block_steps = min(num_steps, max(1, NOISE_BLOCK_ELEMENTS // max(1, theta.size)))
    noise_block = None
    time = start_time
    for index in range(num_steps):
        drift = rhs(time, theta)
        theta = theta + step * drift
        if noise_scale > 0:
            offset = index % block_steps
            if offset == 0:
                noise_block = normal_noise_block(
                    rng, min(block_steps, num_steps - index), theta.shape
                )
            theta = theta + noise_scale * noise_block[offset]
        time = start_time + (index + 1) * step
        if (index + 1) % record_every == 0 or index == num_steps - 1:
            times.append(time)
            states.append(theta.copy())
    return Trajectory(times=np.array(times), phases=np.array(states))


def reference_rk4(rhs, initial_phases, duration, dt, start_time=0.0, record_every=1):
    num_steps = int(np.ceil(duration / dt))
    step = duration / num_steps
    theta = np.array(initial_phases, dtype=float)
    times = [start_time]
    states = [theta.copy()]
    time = start_time
    for index in range(num_steps):
        k1 = rhs(time, theta)
        k2 = rhs(time + step / 2.0, theta + step * k1 / 2.0)
        k3 = rhs(time + step / 2.0, theta + step * k2 / 2.0)
        k4 = rhs(time + step, theta + step * k3)
        theta = theta + (step / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        time = start_time + (index + 1) * step
        if (index + 1) % record_every == 0 or index == num_steps - 1:
            times.append(time)
            states.append(theta.copy())
    return Trajectory(times=np.array(times), phases=np.array(states))


def hide_protocol(model):
    """Wrap a model so integrators cannot see ``evaluate_into`` (pre-PR view)."""
    return lambda time, phases: model(time, phases)


def batched_model(graph, config, groups=None, shil=False):
    """A representative batched RHS on ``graph`` (stage-1 or gated stage-2)."""
    edge_index = graph.edge_index_array()
    num = graph.num_nodes
    if groups is None:
        coupling = SharedCoupling(
            partition_coupling_matrix(edge_index, np.zeros(num, dtype=int), num, config.coupling_rate)
        )
    else:
        blocks = [
            partition_coupling_matrix(edge_index, row, num, config.coupling_rate)
            for row in groups
        ]
        coupling = BlockDiagonalCoupling(blocks)
    return BatchedOscillatorModel(
        coupling=coupling,
        num_oscillators=num,
        shil_strength=config.shil_rate if shil else 0.0,
        shil_offset=0.0,
        frequency_detuning=None,
    )


class TestIntegratorBitIdentity:
    def test_euler_maruyama_matches_reference_batched(self, kings_5x5, fast_config):
        replicas = 6
        model = batched_model(kings_5x5, fast_config)
        start = np.linspace(0.0, 2.0, replicas * kings_5x5.num_nodes).reshape(
            replicas, kings_5x5.num_nodes
        )
        seeds = list(range(replicas))
        new = integrate_euler_maruyama(
            model, start, ns(6.0), fast_config.time_step,
            noise_amplitude=fast_config.phase_noise_diffusion,
            seed=ReplicaRNG.from_seeds(seeds), record_every=7,
        )
        old = reference_euler_maruyama(
            hide_protocol(model), start, ns(6.0), fast_config.time_step,
            noise_amplitude=fast_config.phase_noise_diffusion,
            seed=ReplicaRNG.from_seeds(seeds), record_every=7,
        )
        assert np.array_equal(new.times, old.times)
        assert np.array_equal(new.phases, old.phases)

    def test_euler_maruyama_matches_reference_sequential(self, kings_5x5, fast_config):
        num = kings_5x5.num_nodes
        coupling = partition_coupling_matrix(
            kings_5x5.edge_index_array(), np.zeros(num, dtype=int), num, fast_config.coupling_rate
        )
        model = CoupledOscillatorModel(coupling_matrix=coupling, shil_strength=fast_config.shil_rate)
        start = np.linspace(0.0, 2.0 * np.pi, num)
        new = integrate_euler_maruyama(
            model, start, ns(5.0), fast_config.time_step,
            noise_amplitude=fast_config.phase_noise_diffusion, seed=11, record_every=3,
        )
        old = reference_euler_maruyama(
            hide_protocol(model), start, ns(5.0), fast_config.time_step,
            noise_amplitude=fast_config.phase_noise_diffusion, seed=11, record_every=3,
        )
        assert np.array_equal(new.times, old.times)
        assert np.array_equal(new.phases, old.phases)

    def test_euler_maruyama_generic_rhs_matches_reference(self):
        rhs = lambda t, y: np.sin(y) - 0.25 * y  # noqa: E731 - no protocol
        start = np.linspace(-2.0, 2.0, 12)
        new = integrate_euler_maruyama(rhs, start, 1e-9, 1e-11, noise_amplitude=1e5, seed=3)
        old = reference_euler_maruyama(rhs, start, 1e-9, 1e-11, noise_amplitude=1e5, seed=3)
        assert np.array_equal(new.phases, old.phases)

    def test_rk4_matches_reference(self, kings_5x5, fast_config):
        replicas = 4
        model = batched_model(kings_5x5, fast_config, shil=True)
        start = np.linspace(0.0, 3.0, replicas * kings_5x5.num_nodes).reshape(
            replicas, kings_5x5.num_nodes
        )
        new = integrate_rk4(model, start, ns(4.0), fast_config.time_step, record_every=5)
        old = reference_rk4(hide_protocol(model), start, ns(4.0), fast_config.time_step, record_every=5)
        assert np.array_equal(new.times, old.times)
        assert np.array_equal(new.phases, old.phases)

    def test_final_state_entry_points_match_trajectories(self, kings_5x5, fast_config):
        replicas = 5
        model = batched_model(kings_5x5, fast_config)
        start = np.linspace(0.0, 1.0, replicas * kings_5x5.num_nodes).reshape(
            replicas, kings_5x5.num_nodes
        )
        seeds = list(range(replicas))
        final = euler_maruyama_final(
            model, start, ns(6.0), fast_config.time_step,
            noise_amplitude=fast_config.phase_noise_diffusion,
            seed=ReplicaRNG.from_seeds(seeds),
        )
        recorded = integrate_euler_maruyama(
            model, start, ns(6.0), fast_config.time_step,
            noise_amplitude=fast_config.phase_noise_diffusion,
            seed=ReplicaRNG.from_seeds(seeds),
        )
        assert np.array_equal(final, recorded.final_phases)
        assert np.array_equal(
            rk4_final(model, start, ns(4.0), fast_config.time_step),
            integrate_rk4(model, start, ns(4.0), fast_config.time_step).final_phases,
        )

    def test_recording_thinning_preserved(self):
        rhs = lambda t, y: -y  # noqa: E731
        start = np.ones(3)
        for record_every in (1, 3, 7, 100):
            new = integrate_rk4(rhs, start, 1e-9, 1e-11, record_every=record_every)
            old = reference_rk4(rhs, start, 1e-9, 1e-11, record_every=record_every)
            assert np.array_equal(new.times, old.times)


class TestFastOperators:
    def _random_groups(self, replicas, num, labels=2, seed=0):
        return np.asarray(make_rng(seed).integers(0, labels, size=(replicas, num)))

    def test_fast_shared_matches_reference(self, kings_7x7):
        num = kings_7x7.num_nodes
        matrix = partition_coupling_matrix(
            kings_7x7.edge_index_array(), np.zeros(num, dtype=int), num, 2.0e9
        )
        reference = SharedCoupling(matrix)
        fast = FastSharedCoupling(matrix)
        rng = make_rng(5)
        for replicas in (1, 4, 9):
            first = rng.uniform(-1.0, 1.0, size=(replicas, num))
            second = rng.uniform(-1.0, 1.0, size=(replicas, num))
            ref_cos, ref_sin = reference.apply_pair(first, second)
            fast_cos, fast_sin = fast.apply_pair(first, second)
            assert np.array_equal(np.asarray(ref_cos), np.asarray(fast_cos))
            assert np.array_equal(np.asarray(ref_sin), np.asarray(fast_sin))

    def test_vectorized_block_diagonal_construction(self, kings_7x7):
        edge_index = kings_7x7.edge_index_array()
        num = kings_7x7.num_nodes
        rate = 1.5e9
        groups = self._random_groups(8, num, labels=2, seed=3)
        legacy = sparse.block_diag(
            [partition_coupling_matrix(edge_index, row, num, rate) for row in groups],
            format="csr",
        )
        fast = gated_block_diagonal_csr(edge_index, groups, num, rate)
        assert np.array_equal(legacy.indptr, fast.indptr)
        assert np.array_equal(legacy.indices, fast.indices)
        assert np.array_equal(legacy.data, fast.data)

    def test_fast_block_diagonal_matches_reference(self, kings_5x5):
        edge_index = kings_5x5.edge_index_array()
        num = kings_5x5.num_nodes
        rate = 2.5e9
        groups = self._random_groups(6, num, labels=2, seed=9)
        reference = BlockDiagonalCoupling(
            [partition_coupling_matrix(edge_index, row, num, rate) for row in groups]
        )
        fast = FastBlockDiagonalCoupling.from_group_values(edge_index, groups, num, rate)
        rng = make_rng(1)
        first = rng.uniform(-1.0, 1.0, size=(6, num))
        second = rng.uniform(-1.0, 1.0, size=(6, num))
        ref_pair = reference.apply_pair(first, second)
        fast_pair = fast.apply_pair(first, second)
        assert np.array_equal(np.asarray(ref_pair[0]), np.asarray(fast_pair[0]))
        assert np.array_equal(np.asarray(ref_pair[1]), np.asarray(fast_pair[1]))
        field = rng.uniform(-1.0, 1.0, size=(6, num))
        assert np.array_equal(reference.apply(field), fast.apply(field))

    def test_plan_reuses_uniform_operator(self, kings_5x5):
        plan = CouplingPlan(kings_5x5.edge_index_array(), kings_5x5.num_nodes, 1e9, "sparse")
        groups = np.zeros((4, kings_5x5.num_nodes), dtype=int)
        first = plan.operator(groups)
        second = plan.operator(np.ones((7, kings_5x5.num_nodes), dtype=int))
        assert first is second  # one ungated CSR serves every uniform gating

    def test_model_evaluate_into_matches_call(self, kings_5x5, fast_config):
        model = batched_model(kings_5x5, fast_config, shil=True)
        phases = make_rng(2).uniform(0, 2 * np.pi, size=(5, kings_5x5.num_nodes))
        out = np.empty_like(phases)
        result = model.evaluate_into(0.0, phases, out)
        assert result is out
        assert np.array_equal(out, model(0.0, phases))


class TestFastEngine:
    def test_fast_engine_matches_legacy_and_sequential(self, kings_5x5, fast_config):
        machine = MSROPM(kings_5x5, fast_config)
        fast = machine.solve(iterations=6, seed=21)
        legacy = machine.solve(iterations=6, seed=21, engine=BatchedEngine(fast_path=False))
        sequential = machine.solve(iterations=6, seed=21, engine=SequentialEngine())
        for reference in (legacy, sequential):
            assert np.array_equal(fast.accuracies, reference.accuracies)
            for fast_item, ref_item in zip(fast.iterations, reference.iterations):
                assert fast_item.coloring.assignment == ref_item.coloring.assignment
                assert len(fast_item.stage_results) == len(ref_item.stage_results)
                for fast_stage, ref_stage in zip(fast_item.stage_results, ref_item.stage_results):
                    assert fast_stage.cut_value == ref_stage.cut_value
                    assert fast_stage.reference_cut == ref_stage.reference_cut
                    assert fast_stage.accuracy == ref_stage.accuracy
                    assert fast_stage.partition.side_a == ref_stage.partition.side_a
                assert np.array_equal(
                    fast_item.stage_results[-1].final_phases,
                    ref_item.stage_results[-1].final_phases,
                )

    def test_fast_engine_matches_legacy_with_detuning(self, kings_5x5, fast_config):
        config = fast_config.with_updates(frequency_detuning_std=0.01, seed=5)
        machine = MSROPM(kings_5x5, config)
        fast = machine.solve(iterations=4, seed=8)
        legacy = machine.solve(iterations=4, seed=8, engine=BatchedEngine(fast_path=False))
        assert np.array_equal(fast.accuracies, legacy.accuracies)
        assert np.array_equal(
            fast.iterations[-1].stage_results[-1].final_phases,
            legacy.iterations[-1].stage_results[-1].final_phases,
        )

    def test_fast_engine_dense_backend_matches_legacy(self, fast_config):
        graph = kings_graph(6, 6)
        config = fast_config.with_updates(coupling_backend="dense")
        machine = MSROPM(graph, config)
        fast = machine.solve(iterations=3, seed=13)
        legacy = machine.solve(
            iterations=3, seed=13, engine=BatchedEngine(coupling_backend="dense", fast_path=False)
        )
        assert np.array_equal(fast.accuracies, legacy.accuracies)
        assert np.array_equal(
            fast.iterations[-1].stage_results[-1].final_phases,
            legacy.iterations[-1].stage_results[-1].final_phases,
        )

    def test_default_solve_materializes_no_trajectory(self, kings_5x5, fast_config, monkeypatch):
        created = []
        original = Trajectory.__post_init__

        def spy(self):
            created.append(self)
            original(self)

        monkeypatch.setattr(Trajectory, "__post_init__", spy)
        machine = MSROPM(kings_5x5, fast_config)
        machine.solve(iterations=3, seed=4)
        assert created == []  # the hot path never builds a trajectory
        machine.solve(iterations=3, seed=4, engine=BatchedEngine(fast_path=False))
        assert created  # the reference body still records (and is tested above)

    def test_executor_cache_is_reused_across_solves(self, kings_5x5, fast_config):
        machine = MSROPM(kings_5x5, fast_config)
        machine.solve(iterations=2, seed=1)
        executor = machine.batched_executor("sparse", fast_path=True)
        plan = executor.plan
        machine.solve(iterations=2, seed=2)
        assert machine.batched_executor("sparse", fast_path=True) is executor
        assert executor.plan is plan

    def test_collect_trajectory_still_works(self, kings_5x5, fast_config):
        machine = MSROPM(kings_5x5, fast_config)
        result = machine.run_iteration(seed=3, collect_trajectory=True)
        assert result.trajectory is not None
        assert result.trajectory.phases.ndim == 2


class TestWarmScheduler:
    def _jobs(self, seeds, iterations=3):
        config = MSROPMConfig(
            num_colors=4,
            timing=TimingPlan(initialization=ns(1.0), annealing=ns(6.0), shil_settling=ns(2.0)),
            time_step=0.05e-9,
            seed=1234,
        )
        return [
            SolveJob(spec=KingsGraphSpec(4, 4), config=config, seed=seed, total_iterations=iterations)
            for seed in seeds
        ]

    @staticmethod
    def _fingerprint(results):
        return [
            [(item.iteration_index, item.seed, item.accuracy) for item in result.iterations]
            for result in results
        ]

    def test_warm_pool_reused_and_bit_identical(self):
        jobs = self._jobs(range(5))
        serial = JobScheduler(workers=1).run(jobs)
        with JobScheduler(workers=2) as scheduler:
            first = scheduler.run(jobs)
            assert scheduler.pool_active
            second = scheduler.run(self._jobs(range(5)))
            assert scheduler.pools_started == 1  # same pool served both batches
        assert not scheduler.pool_active
        assert self._fingerprint(serial) == self._fingerprint(first)
        assert self._fingerprint(serial) == self._fingerprint(second)

    def test_closed_scheduler_restarts_cleanly(self):
        jobs = self._jobs(range(4))
        scheduler = JobScheduler(workers=2)
        first = scheduler.run(jobs)
        scheduler.close()
        second = scheduler.run(jobs)
        assert scheduler.pools_started == 2
        assert self._fingerprint(first) == self._fingerprint(second)
        scheduler.close()

    def test_worker_initializer_caps_threads(self, monkeypatch):
        for name in WORKER_THREAD_CAPS:
            monkeypatch.delenv(name, raising=False)
        _worker_init(WORKER_THREAD_CAPS)
        for name, value in WORKER_THREAD_CAPS.items():
            assert os.environ[name] == value
            monkeypatch.delenv(name)

    def test_in_process_thread_cap(self):
        from repro.runtime.scheduler import limit_math_threads

        # Environment caps cannot reach a forked worker's already-loaded
        # BLAS; the in-process setter must handle that (where a BLAS with a
        # set_num_threads entry point is loaded at all, as with numpy's
        # bundled OpenBLAS on Linux).
        applied = limit_math_threads(1)
        assert isinstance(applied, bool)
        import numpy.linalg  # ensure a BLAS is genuinely loaded

        if os.path.exists("/proc/self/maps"):
            with open("/proc/self/maps", encoding="utf-8") as handle:
                has_openblas = any("blas" in line.lower() for line in handle)
            if has_openblas:
                assert limit_math_threads(1) is True

    def test_serial_path_spins_no_pool(self):
        scheduler = JobScheduler(workers=1)
        scheduler.run(self._jobs(range(2)))
        assert not scheduler.pool_active
        assert scheduler.pools_started == 0

    def test_broken_pool_recovers_on_next_batch(self, monkeypatch):
        import multiprocessing

        from concurrent.futures.process import BrokenProcessPool

        from repro.runtime import executors as executors_module

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("worker-crash injection relies on fork inheriting the patch")
        scheduler = JobScheduler(workers=2)
        try:
            # Every worker dies on its first job, poisoning the pool — and the
            # once-retried fresh pool dies the same way, so the error is
            # systematic and must propagate.
            monkeypatch.setattr(executors_module, "_execute_job", _crash_worker)
            with pytest.raises(BrokenProcessPool):
                scheduler.run(self._jobs(range(4)))
            assert not scheduler.pool_active  # the poisoned pools were dropped
            assert scheduler.backend.broken_pool_retries == 1
            assert scheduler.pools_started == 2  # original + the retry pool
            monkeypatch.undo()
            # The next batch must start a fresh, healthy pool.
            results = scheduler.run(self._jobs(range(4)))
            assert scheduler.pools_started == 3
            assert self._fingerprint(results) == self._fingerprint(
                JobScheduler(workers=1).run(self._jobs(range(4)))
            )
        finally:
            scheduler.close()


class TestMachineMemo:
    def _config(self, **overrides):
        base = MSROPMConfig(
            num_colors=4,
            timing=TimingPlan(initialization=ns(1.0), annealing=ns(4.0), shil_settling=ns(2.0)),
            time_step=0.05e-9,
            seed=7,
        )
        return base.with_updates(**overrides) if overrides else base

    def test_repeat_jobs_share_one_machine(self):
        clear_machine_memo()
        config = self._config()
        for seed in (1, 2, 3):
            SolveJob(spec=KingsGraphSpec(4, 4), config=config, seed=seed, total_iterations=2).run()
        assert MACHINE_MEMO_STATS["builds"] == 1
        assert MACHINE_MEMO_STATS["hits"] == 2

    def test_distinct_configs_do_not_collide(self):
        clear_machine_memo()
        first = self._config()
        second = self._config(coupling_strength=first.coupling_strength * 1.5)
        SolveJob(spec=KingsGraphSpec(4, 4), config=first, seed=1, total_iterations=2).run()
        SolveJob(spec=KingsGraphSpec(4, 4), config=second, seed=1, total_iterations=2).run()
        assert MACHINE_MEMO_STATS["builds"] == 2

    def test_nondeterministic_specs_never_memoized(self):
        clear_machine_memo()
        spec = GeneratedGraphSpec.create("er", n=12, p=0.3)  # no seed: not reproducible
        job = SolveJob(
            spec=spec, config=self._config(), seed=None, total_iterations=2
        )
        assert not job.memoizable
        job.run()
        job.run()
        assert MACHINE_MEMO_STATS["builds"] == 0

    def test_memoized_results_identical_to_fresh(self):
        clear_machine_memo()
        config = self._config()
        job = SolveJob(spec=KingsGraphSpec(4, 4), config=config, seed=5, total_iterations=3)
        warm_first = job.run()
        warm_second = job.run()  # memo hit
        assert np.array_equal(warm_first.accuracies, warm_second.accuracies)
        for a, b in zip(warm_first.iterations, warm_second.iterations):
            assert a.coloring.assignment == b.coloring.assignment


class TestReferenceCache:
    def test_cached_reference_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        instance = next(
            item for item in expand_workloads(["er"], base_seed=11) if item.seed is not None
        )
        cold = cached_reference(instance, cache=cache)
        assert cache.payload_stores == 1
        warm = cached_reference(instance, cache=cache)
        assert cache.payload_hits == 1
        assert warm == cold

    def test_reference_key_requires_determinism(self):
        instance = expand_workloads(["kings"], base_seed=1)[0]
        assert reference_cache_key(instance) is not None
        # A seedless generated spec has no stable identity.
        from repro.workloads.registry import WorkloadInstance

        seedless = WorkloadInstance(
            family="er",
            label="er-free",
            params=(("n", 12), ("p", 0.3)),
            seed=None,
            spec=GeneratedGraphSpec.create("er", n=12, p=0.3),
            kind="coloring",
            num_colors=4,
        )
        assert reference_cache_key(seedless) is None

    def test_corrupt_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        instance = expand_workloads(["kings"], base_seed=1)[0]
        key = reference_cache_key(instance)
        cached_reference(instance, cache=cache)
        path = cache.payload_path("reference", key)
        path.write_text("{not json", encoding="utf-8")
        again = cached_reference(instance, cache=cache)
        # Two misses: the cold lookup before the first store, then the
        # corrupted entry (which is rewritten rather than erroring).
        assert cache.payload_misses == 2
        assert again.colorable is True
