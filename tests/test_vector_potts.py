"""Tests for the phase-domain (vector Potts) Hamiltonian and phase quantization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.graphs import cycle_graph, kings_graph
from repro.ising import (
    IsingProblem,
    binarize_phases,
    ising_phase_energy,
    phase_alignment_error,
    phase_difference,
    phases_to_spins,
    spins_to_phases,
    target_phases,
    vector_potts_energy,
    wrap_phase,
    PottsProblem,
    potts_energy_from_phases,
)


class TestPhaseHelpers:
    def test_wrap_phase_range(self):
        wrapped = wrap_phase(np.array([-0.1, 0.0, 2 * np.pi, 7.0]))
        assert np.all(wrapped >= 0.0)
        assert np.all(wrapped < 2 * np.pi)

    def test_phase_difference_signed(self):
        assert phase_difference(0.1, 2 * np.pi - 0.1) == pytest.approx(0.2, abs=1e-9)
        assert phase_difference(0.0, np.pi / 2) == pytest.approx(-np.pi / 2)

    def test_phase_difference_half_turn(self):
        assert abs(phase_difference(0.0, np.pi)) == pytest.approx(np.pi)

    def test_target_phases(self):
        phases = target_phases(4)
        assert np.allclose(phases, [0, np.pi / 2, np.pi, 3 * np.pi / 2])

    def test_target_phases_validation(self):
        with pytest.raises(ReproError):
            target_phases(1)

    def test_spin_phase_round_trip(self):
        spins = np.array([0, 1, 2, 3, 2, 1])
        phases = spins_to_phases(spins, 4)
        assert np.array_equal(phases_to_spins(phases, 4), spins)

    def test_spins_to_phases_validation(self):
        with pytest.raises(ReproError):
            spins_to_phases([0, 4], 4)

    def test_phases_to_spins_with_offset(self):
        phases = spins_to_phases([0, 1, 2, 3], 4) + 0.3
        assert np.array_equal(phases_to_spins(phases, 4, offset=0.3), [0, 1, 2, 3])

    def test_phase_alignment_error_zero_on_grid(self):
        phases = spins_to_phases([0, 1, 2, 3], 4)
        assert np.allclose(phase_alignment_error(phases, 4), 0.0)

    def test_phase_alignment_error_bounded(self):
        rng = np.random.default_rng(0)
        phases = rng.uniform(0, 2 * np.pi, 100)
        errors = phase_alignment_error(phases, 4)
        assert np.all(errors <= np.pi / 4 + 1e-9)

    def test_binarize_phases(self):
        phases = np.array([0.05, np.pi - 0.05, np.pi + 0.05, 2 * np.pi - 0.05])
        assert np.array_equal(binarize_phases(phases), [0, 1, 1, 0])

    def test_binarize_phases_with_shifted_grid(self):
        phases = np.array([np.pi / 2, 3 * np.pi / 2])
        assert np.array_equal(binarize_phases(phases, shil_phase_offset=np.pi / 2), [0, 1])


class TestVectorPottsEnergy:
    def test_uniform_negative_coupling_minimum_at_antiphase(self):
        graph = cycle_graph(2)
        in_phase = vector_potts_energy(graph, np.array([0.0, 0.0]), default_coupling=-1.0)
        anti_phase = vector_potts_energy(graph, np.array([0.0, np.pi]), default_coupling=-1.0)
        assert in_phase == pytest.approx(-1.0)
        assert anti_phase == pytest.approx(1.0)

    def test_matches_ising_energy_on_lock_grid(self):
        """Eq. 2 reduces to Eq. 1 when phases sit exactly on the 2-phase grid."""
        graph = kings_graph(3, 3)
        problem = IsingProblem.antiferromagnetic(graph)
        spins_dict = problem.random_spins(seed=5)
        spins = np.array([spins_dict[node] for node in graph.nodes])
        phases = np.where(spins == 1, 0.0, np.pi)
        assert ising_phase_energy(problem, phases) == pytest.approx(problem.energy(spins_dict))

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            vector_potts_energy(cycle_graph(3), np.zeros(2))

    def test_empty_graph(self):
        from repro.graphs import Graph

        assert vector_potts_energy(Graph(nodes=[1, 2]), np.zeros(2)) == 0.0

    def test_with_explicit_coupling_matrix(self):
        graph = cycle_graph(3)
        problem = IsingProblem.antiferromagnetic(graph, strength=2.0)
        phases = np.array([0.0, np.pi, 0.0])
        explicit = vector_potts_energy(graph, phases, coupling_matrix=problem.coupling_matrix())
        assert explicit == pytest.approx(2.0 * (np.cos(np.pi) + np.cos(np.pi) + np.cos(0.0)))

    def test_potts_energy_from_phases(self):
        graph = kings_graph(3, 3)
        problem = PottsProblem.coloring_problem(graph, num_colors=4)
        from repro.graphs import kings_graph_reference_coloring

        coloring = kings_graph_reference_coloring(3, 3)
        phases = spins_to_phases(coloring.as_array(graph), 4)
        assert potts_energy_from_phases(problem, phases) == 0.0

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_energy_invariant_under_global_rotation(self, seed):
        """The phase Hamiltonian depends only on phase differences."""
        graph = kings_graph(3, 3)
        rng = np.random.default_rng(seed)
        phases = rng.uniform(0, 2 * np.pi, graph.num_nodes)
        shift = rng.uniform(0, 2 * np.pi)
        base = vector_potts_energy(graph, phases, default_coupling=-1.0)
        rotated = vector_potts_energy(graph, phases + shift, default_coupling=-1.0)
        assert rotated == pytest.approx(base, abs=1e-9)

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_quantization_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        phases = rng.uniform(0, 2 * np.pi, 30)
        spins = phases_to_spins(phases, 4)
        requantized = phases_to_spins(spins_to_phases(spins, 4), 4)
        assert np.array_equal(spins, requantized)
