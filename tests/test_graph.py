"""Tests for the core Graph data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import Graph, kings_graph


class TestConstruction:
    def test_empty(self):
        graph = Graph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.is_connected()

    def test_add_nodes_and_edges(self):
        graph = Graph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")
        assert not graph.has_edge("a", "c")

    def test_duplicate_edge_is_idempotent(self):
        graph = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_node_order_is_insertion_order(self):
        graph = Graph(nodes=[3, 1, 2])
        assert graph.nodes == [3, 1, 2]
        assert graph.node_index() == {3: 0, 1: 1, 2: 2}

    def test_from_edges(self):
        graph = Graph.from_edges([(0, 1), (1, 2)], name="path")
        assert graph.name == "path"
        assert graph.num_edges == 2

    def test_contains_len_iter(self):
        graph = Graph(nodes=[1, 2, 3])
        assert 2 in graph
        assert len(graph) == 3
        assert list(iter(graph)) == [1, 2, 3]


class TestMutation:
    def test_remove_edge(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1

    def test_remove_missing_edge_raises(self):
        graph = Graph(edges=[(1, 2)])
        with pytest.raises(GraphError):
            graph.remove_edge(1, 3)

    def test_remove_node(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        graph.remove_node(2)
        assert graph.num_nodes == 2
        assert graph.num_edges == 0

    def test_remove_missing_node_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_node(5)


class TestQueries:
    def test_neighbors_and_degree(self):
        graph = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert graph.neighbors(1) == {2, 3, 4}
        assert graph.degree(1) == 3
        assert graph.degree(2) == 1

    def test_neighbors_missing_node(self):
        with pytest.raises(GraphError):
            Graph().neighbors(1)

    def test_degrees_mapping(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        assert graph.degrees() == {1: 1, 2: 2, 3: 1}

    def test_edges_each_once(self):
        graph = kings_graph(3, 3)
        edges = graph.edges()
        assert len(edges) == graph.num_edges
        assert len({frozenset(edge) for edge in edges}) == len(edges)


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph(edges=[(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert graph.num_nodes == 2
        assert clone.num_nodes == 3

    def test_subgraph(self):
        graph = kings_graph(3, 3)
        sub = graph.subgraph([(0, 0), (0, 1), (2, 2)])
        assert sub.num_nodes == 3
        assert sub.has_edge((0, 0), (0, 1))
        assert not sub.has_edge((0, 1), (2, 2))

    def test_subgraph_missing_node_raises(self):
        with pytest.raises(GraphError):
            kings_graph(2, 2).subgraph([(5, 5)])

    def test_without_edges(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        reduced = graph.without_edges([(1, 2)])
        assert not reduced.has_edge(1, 2)
        assert reduced.has_edge(2, 3)
        assert graph.has_edge(1, 2)  # original untouched

    def test_without_missing_edge_raises(self):
        with pytest.raises(GraphError):
            Graph(edges=[(1, 2)]).without_edges([(1, 3)])


class TestMatrices:
    def test_adjacency_matrix_symmetric(self):
        graph = kings_graph(3, 3)
        matrix = graph.adjacency_matrix()
        assert matrix.shape == (9, 9)
        assert np.allclose(matrix, matrix.T)
        assert matrix.sum() == 2 * graph.num_edges

    def test_sparse_matches_dense(self):
        graph = kings_graph(4, 4)
        assert np.allclose(graph.sparse_adjacency().toarray(), graph.adjacency_matrix())

    def test_edge_index_array(self):
        graph = Graph(edges=[(10, 20), (20, 30)])
        edges = graph.edge_index_array()
        assert edges.shape == (2, 2)
        assert edges.dtype == np.int64

    def test_edge_index_array_empty(self):
        assert Graph(nodes=[1, 2]).edge_index_array().shape == (0, 2)


class TestNetworkxInterop:
    def test_round_trip(self):
        graph = kings_graph(3, 4)
        back = Graph.from_networkx(graph.to_networkx())
        assert back.num_nodes == graph.num_nodes
        assert back.num_edges == graph.num_edges

    def test_self_loops_dropped_on_import(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_edge(1, 1)
        nx_graph.add_edge(1, 2)
        graph = Graph.from_networkx(nx_graph)
        assert graph.num_edges == 1


class TestConnectivity:
    def test_connected_components(self):
        graph = Graph(edges=[(1, 2), (3, 4)])
        components = graph.connected_components()
        assert len(components) == 2
        assert {1, 2} in components and {3, 4} in components

    def test_is_connected(self):
        assert kings_graph(3, 3).is_connected()
        assert not Graph(edges=[(1, 2), (3, 4)]).is_connected()
