"""Tests for the Coloring data structure and classical heuristics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ColoringError
from repro.graphs import (
    Coloring,
    count_proper_edges,
    cycle_graph,
    dsatur_coloring,
    greedy_coloring,
    kings_graph,
    kings_graph_reference_coloring,
    complete_graph,
    random_coloring,
    welsh_powell_coloring,
)


class TestColoring:
    def test_valid_construction(self):
        coloring = Coloring(assignment={1: 0, 2: 1}, num_colors=2)
        assert coloring.color_of(1) == 0
        assert coloring.used_colors() == {0, 1}

    def test_out_of_range_color(self):
        with pytest.raises(ColoringError):
            Coloring(assignment={1: 5}, num_colors=4)

    def test_non_integer_color(self):
        with pytest.raises(ColoringError):
            Coloring(assignment={1: 0.5}, num_colors=4)

    def test_zero_colors(self):
        with pytest.raises(ColoringError):
            Coloring(assignment={}, num_colors=0)

    def test_missing_node_raises(self):
        coloring = Coloring(assignment={1: 0}, num_colors=2)
        with pytest.raises(ColoringError):
            coloring.color_of(2)

    def test_conflicts_and_accuracy(self):
        graph = cycle_graph(4)
        proper = Coloring(assignment={0: 0, 1: 1, 2: 0, 3: 1}, num_colors=2)
        improper = Coloring(assignment={0: 0, 1: 0, 2: 0, 3: 0}, num_colors=2)
        assert proper.is_proper(graph)
        assert proper.accuracy(graph) == 1.0
        assert improper.num_conflicts(graph) == 4
        assert improper.accuracy(graph) == 0.0

    def test_accuracy_empty_graph(self):
        from repro.graphs import Graph

        graph = Graph(nodes=[1, 2])
        coloring = Coloring(assignment={1: 0, 2: 0}, num_colors=2)
        assert coloring.accuracy(graph) == 1.0

    def test_color_classes(self):
        coloring = Coloring(assignment={1: 0, 2: 0, 3: 1}, num_colors=2)
        classes = coloring.color_classes()
        assert classes[0] == {1, 2}
        assert classes[1] == {3}

    def test_array_round_trip(self):
        graph = cycle_graph(5)
        coloring = random_coloring(graph, 3, seed=1)
        array = coloring.as_array(graph)
        back = Coloring.from_array(graph, array, 3)
        assert back.assignment == coloring.assignment

    def test_from_array_wrong_length(self):
        with pytest.raises(ColoringError):
            Coloring.from_array(cycle_graph(4), [0, 1], 2)

    def test_as_array_uncovered(self):
        graph = cycle_graph(4)
        coloring = Coloring(assignment={0: 0}, num_colors=2)
        with pytest.raises(ColoringError):
            coloring.as_array(graph)

    def test_relabeled_preserves_propriety(self):
        graph = cycle_graph(6)
        coloring = Coloring.from_array(graph, [0, 1, 0, 1, 0, 1], 2)
        swapped = coloring.relabeled({0: 1, 1: 0})
        assert swapped.is_proper(graph)
        assert swapped.color_of(0) == 1

    def test_relabeled_missing_color(self):
        coloring = Coloring(assignment={1: 0, 2: 1}, num_colors=2)
        with pytest.raises(ColoringError):
            coloring.relabeled({0: 1})

    def test_count_proper_edges(self):
        graph = cycle_graph(4)
        coloring = Coloring.from_array(graph, [0, 1, 0, 0], 2)
        # Edges (0,1) and (1,2) are properly colored; (2,3) and (3,0) are monochromatic.
        assert count_proper_edges(graph, coloring) == 2


class TestHeuristics:
    def test_greedy_is_proper(self):
        graph = kings_graph(5, 5)
        coloring = greedy_coloring(graph)
        assert coloring.is_proper(graph)

    def test_welsh_powell_is_proper(self):
        graph = kings_graph(5, 5)
        assert welsh_powell_coloring(graph).is_proper(graph)

    def test_dsatur_is_proper_and_tight_on_kings(self):
        graph = kings_graph(6, 6)
        coloring = dsatur_coloring(graph)
        assert coloring.is_proper(graph)
        assert len(coloring.used_colors()) == 4  # King's graphs are 4-chromatic

    def test_dsatur_complete_graph(self):
        graph = complete_graph(5)
        coloring = dsatur_coloring(graph)
        assert coloring.is_proper(graph)
        assert len(coloring.used_colors()) == 5

    def test_greedy_respects_requested_palette_floor(self):
        graph = cycle_graph(4)
        coloring = greedy_coloring(graph, num_colors=6)
        assert coloring.num_colors == 6

    def test_random_coloring_range(self):
        graph = kings_graph(4, 4)
        coloring = random_coloring(graph, 4, seed=3)
        assert coloring.covers(graph)
        assert coloring.used_colors() <= {0, 1, 2, 3}

    def test_random_coloring_invalid_colors(self):
        with pytest.raises(ColoringError):
            random_coloring(cycle_graph(3), 0)


class TestKingsReference:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (5, 5), (7, 7), (6, 9)])
    def test_reference_coloring_proper(self, rows, cols):
        graph = kings_graph(rows, cols)
        coloring = kings_graph_reference_coloring(rows, cols)
        assert coloring.is_proper(graph)
        assert coloring.accuracy(graph) == 1.0

    def test_reference_coloring_uses_four_colors(self):
        coloring = kings_graph_reference_coloring(4, 4)
        assert coloring.used_colors() == {0, 1, 2, 3}

    def test_reference_coloring_invalid_dims(self):
        with pytest.raises(ColoringError):
            kings_graph_reference_coloring(0, 3)


class TestColoringProperties:
    @given(side=st.integers(min_value=2, max_value=6), seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_accuracy_between_zero_and_one(self, side, seed):
        graph = kings_graph(side, side)
        coloring = random_coloring(graph, 4, seed=seed)
        accuracy = coloring.accuracy(graph)
        assert 0.0 <= accuracy <= 1.0

    @given(side=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_dsatur_never_beats_clique_bound(self, side):
        graph = kings_graph(side, side)
        coloring = dsatur_coloring(graph)
        # King's graphs contain 4-cliques (2x2 blocks), so at least 4 colors are needed.
        assert len(coloring.used_colors()) >= 4

    @given(
        permutation=st.permutations(list(range(4))),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_accuracy_invariant_under_relabeling(self, permutation, seed):
        graph = kings_graph(4, 4)
        coloring = random_coloring(graph, 4, seed=seed)
        relabeled = coloring.relabeled(dict(enumerate(permutation)))
        assert relabeled.accuracy(graph) == pytest.approx(coloring.accuracy(graph))
