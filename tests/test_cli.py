"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.rows == 7
        assert args.iterations == 10
        assert args.colors == 4

    def test_table_scale_option(self):
        args = build_parser().parse_args(["table1", "--scale", "0.25"])
        assert args.scale == 0.25

    def test_fig3_options(self):
        args = build_parser().parse_args(["fig3", "--rows", "5", "--seed", "3"])
        assert args.rows == 5 and args.seed == 3

    def test_engine_option_defaults_to_batched(self):
        assert build_parser().parse_args(["solve"]).engine == "batched"
        assert build_parser().parse_args(["table1"]).engine == "batched"

    def test_engine_option_accepts_sequential(self):
        args = build_parser().parse_args(["solve", "--engine", "sequential"])
        assert args.engine == "sequential"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--engine", "turbo"])

    def test_solve_engines_print_identical_tables(self, capsys):
        main(["solve", "--rows", "4", "--iterations", "2", "--seed", "1", "--engine", "sequential"])
        sequential_out = capsys.readouterr().out
        main(["solve", "--rows", "4", "--iterations", "2", "--seed", "1", "--engine", "batched"])
        batched_out = capsys.readouterr().out
        assert sequential_out == batched_out


class TestMain:
    def test_solve_command_output(self, capsys):
        exit_code = main(["solve", "--rows", "4", "--iterations", "2", "--seed", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "MSROPM on 16-node King's graph" in captured
        assert "best accuracy" in captured

    def test_fig3_command_output(self, capsys):
        exit_code = main(["fig3", "--rows", "3", "--seed", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 3" in captured

    def test_table1_command_scaled(self, capsys):
        exit_code = main(["table1", "--scale", "0.08", "--iterations", "2", "--seed", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in captured
        assert "4^49" in captured

    def test_fig5_command_scaled(self, capsys):
        exit_code = main(["fig5", "--scale", "0.08", "--iterations", "2", "--seed", "4"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 5(a)" in captured


class TestRuntimeFlags:
    def test_runtime_flags_parse_on_all_solve_commands(self):
        for command in ("solve", "table1", "table2", "fig5", "suite"):
            args = build_parser().parse_args(
                [command, "--workers", "4", "--no-cache", "--replica-chunk", "8"]
            )
            assert args.workers == 4
            assert args.no_cache is True
            assert args.replica_chunk == 8

    def test_cache_dir_flag(self):
        args = build_parser().parse_args(["suite", "--cache-dir", "/tmp/somewhere"])
        assert args.cache_dir == "/tmp/somewhere"
        assert args.workers == 1

    def test_solve_graph_flag_runs_dimacs_workload(self, capsys, tmp_path):
        from repro.graphs import kings_graph, write_dimacs

        path = tmp_path / "board.col"
        write_dimacs(kings_graph(4, 4), path)
        exit_code = main(
            ["solve", "--graph", str(path), "--iterations", "2", "--seed", "3", "--no-cache"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "MSROPM on board" in captured
        assert "16 nodes" in captured

    def test_solve_workers_matches_serial_output(self, capsys, tmp_path):
        """--workers 4 must print byte-identical results to --workers 1."""
        base = ["solve", "--rows", "4", "--iterations", "4", "--seed", "5", "--no-cache"]
        main(base + ["--workers", "1"])
        serial_out = capsys.readouterr().out
        main(base + ["--workers", "4", "--replica-chunk", "1"])
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_solve_cache_round_trip(self, capsys, tmp_path):
        base = [
            "solve", "--rows", "4", "--iterations", "2", "--seed", "6",
            "--cache-dir", str(tmp_path),
        ]
        main(base)
        cold_out = capsys.readouterr().out
        main(base)
        warm_out = capsys.readouterr().out
        assert "served from cache" in warm_out
        assert cold_out in warm_out.replace("(result served from cache: 1 hit(s))\n", "")

    def test_suite_command_scaled(self, capsys, tmp_path):
        exit_code = main(
            [
                "suite", "--scale", "0.05", "--iterations", "2", "--seed", "7",
                "--cache-dir", str(tmp_path),
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in captured
        assert "Figure 5(a)" in captured
        assert "suite finished" in captured


class TestWorkloadsCommands:
    def test_workloads_list(self, capsys):
        exit_code = main(["workloads", "list"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Workload zoo" in captured
        for family in ("kings", "er", "regular", "planar", "dimacs", "maxcut"):
            assert family in captured

    def test_workloads_show_requires_family(self):
        with pytest.raises(SystemExit):
            main(["workloads", "show"])

    def test_workloads_show_expands_instances(self, capsys):
        exit_code = main(["workloads", "show", "--family", "dimacs"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "myciel3" in captured and "myciel4" in captured
        assert "not 4-colorable" in captured  # myciel4's known chromatic number is 5

    def test_scenarios_smoke_on_dimacs(self, capsys):
        exit_code = main(
            ["scenarios", "--family", "dimacs", "--iterations", "2", "--seed", "3",
             "--baselines", "sa", "--no-cache"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Scenario matrix" in captured
        assert "Per-family MSROPM accuracy" in captured
        assert "3 instance(s)" in captured

    def test_scenarios_workers_match_serial_output(self, capsys):
        """Acceptance: scenarios --workers 2 prints byte-identical results."""
        base = ["scenarios", "--family", "er,dimacs", "--iterations", "2", "--seed", "5",
                "--baselines", "sa", "--no-cache"]
        main(base + ["--workers", "1"])
        serial_out = capsys.readouterr().out
        main(base + ["--workers", "2"])
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_scenarios_warm_cache_rerun(self, capsys, tmp_path):
        base = ["scenarios", "--family", "dimacs", "--iterations", "2", "--seed", "6",
                "--baselines", "", "--cache-dir", str(tmp_path)]
        main(base)
        cold_out = capsys.readouterr().out
        main(base)
        warm_out = capsys.readouterr().out
        assert "3 job(s) solved, 0 cache hit(s)" in cold_out
        assert "0 job(s) solved, 3 cache hit(s)" in warm_out
        assert cold_out.split("scenarios:")[0] == warm_out.split("scenarios:")[0]


class TestRunnerLifecycle:
    """No ProcessPoolExecutor outlives a CLI command (the warm-pool leak audit).

    Every runner-holding command wraps the runner in a context manager, so the
    pool's worker processes are joined before ``main`` returns — on clean
    exits and on mid-command errors alike.
    """

    def test_no_worker_processes_outlive_solve(self, capsys):
        import multiprocessing

        exit_code = main(
            ["solve", "--rows", "3", "--iterations", "2", "--seed", "1",
             "--workers", "2", "--no-cache"]
        )
        capsys.readouterr()
        assert exit_code == 0
        assert multiprocessing.active_children() == []

    def test_no_worker_processes_outlive_error_exit(self, capsys, monkeypatch):
        import multiprocessing

        from repro.runtime.runner import ExperimentRunner

        # Fail *inside* the command's `with runner` block, after the pool has
        # warmed up: the context manager must still join the workers.
        def boom(self):
            raise RuntimeError("simulated failure after solve")

        monkeypatch.setattr(ExperimentRunner, "stats", boom)
        with pytest.raises(RuntimeError, match="simulated failure"):
            main(
                ["solve", "--rows", "3", "--iterations", "2", "--seed", "1",
                 "--workers", "2", "--no-cache"]
            )
        capsys.readouterr()
        assert multiprocessing.active_children() == []
