"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.rows == 7
        assert args.iterations == 10
        assert args.colors == 4

    def test_table_scale_option(self):
        args = build_parser().parse_args(["table1", "--scale", "0.25"])
        assert args.scale == 0.25

    def test_fig3_options(self):
        args = build_parser().parse_args(["fig3", "--rows", "5", "--seed", "3"])
        assert args.rows == 5 and args.seed == 3

    def test_engine_option_defaults_to_batched(self):
        assert build_parser().parse_args(["solve"]).engine == "batched"
        assert build_parser().parse_args(["table1"]).engine == "batched"

    def test_engine_option_accepts_sequential(self):
        args = build_parser().parse_args(["solve", "--engine", "sequential"])
        assert args.engine == "sequential"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--engine", "turbo"])

    def test_solve_engines_print_identical_tables(self, capsys):
        main(["solve", "--rows", "4", "--iterations", "2", "--seed", "1", "--engine", "sequential"])
        sequential_out = capsys.readouterr().out
        main(["solve", "--rows", "4", "--iterations", "2", "--seed", "1", "--engine", "batched"])
        batched_out = capsys.readouterr().out
        assert sequential_out == batched_out


class TestMain:
    def test_solve_command_output(self, capsys):
        exit_code = main(["solve", "--rows", "4", "--iterations", "2", "--seed", "1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "MSROPM on 16-node King's graph" in captured
        assert "best accuracy" in captured

    def test_fig3_command_output(self, capsys):
        exit_code = main(["fig3", "--rows", "3", "--seed", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 3" in captured

    def test_table1_command_scaled(self, capsys):
        exit_code = main(["table1", "--scale", "0.08", "--iterations", "2", "--seed", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Table 1" in captured
        assert "4^49" in captured

    def test_fig5_command_scaled(self, capsys):
        exit_code = main(["fig5", "--scale", "0.08", "--iterations", "2", "--seed", "4"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 5(a)" in captured
