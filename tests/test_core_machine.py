"""Tests for the MSROPM machine, stage execution, mapping and divide-and-color."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, MappingError, StageError
from repro.core import (
    MSROPM,
    MSROPMConfig,
    StageExecutor,
    binarize_against_offsets,
    coloring_from_stage_bits,
    divide_and_color,
    group_offsets,
    identity_mapping,
    local_search_maxcut_solver,
    map_to_kings_fabric,
    partition_coupling_matrix,
    solve_coloring,
)
from repro.graphs import (
    Graph,
    cycle_graph,
    grid_graph,
    kings_graph,
    kings_graph_reference_coloring,
)
from repro.ising import kings_graph_reference_cut
from repro.rng import make_rng


class TestStageHelpers:
    def test_group_offsets_stage1_all_zero(self):
        offsets = group_offsets(np.zeros(5, dtype=int), stage_index=1)
        assert np.allclose(offsets, 0.0)

    def test_group_offsets_stage2_are_shil1_and_shil2(self):
        offsets = group_offsets(np.array([0, 1, 0, 1]), stage_index=2)
        assert np.allclose(offsets, [0.0, np.pi / 2, 0.0, np.pi / 2])

    def test_group_offsets_stage3_quarter_steps(self):
        offsets = group_offsets(np.array([0, 1, 2, 3]), stage_index=3)
        assert np.allclose(offsets, [0.0, np.pi / 4, np.pi / 2, 3 * np.pi / 4])

    def test_group_offsets_validation(self):
        with pytest.raises(StageError):
            group_offsets(np.array([0, 2]), stage_index=2)
        with pytest.raises(StageError):
            group_offsets(np.array([0]), stage_index=0)

    def test_partition_coupling_matrix_gates_cross_edges(self):
        graph = kings_graph(3, 3)
        edges = graph.edge_index_array()
        same_group = partition_coupling_matrix(edges, np.zeros(9, dtype=int), 9, 1.0)
        split = partition_coupling_matrix(edges, np.arange(9) % 2, 9, 1.0)
        assert same_group.nnz == 2 * graph.num_edges
        assert split.nnz < same_group.nnz

    def test_partition_coupling_matrix_empty(self):
        matrix = partition_coupling_matrix(np.zeros((0, 2), dtype=int), np.zeros(3, dtype=int), 3, 1.0)
        assert matrix.nnz == 0

    def test_partition_coupling_matrix_validation(self):
        with pytest.raises(StageError):
            partition_coupling_matrix(np.zeros((0, 2), dtype=int), np.zeros(3, dtype=int), 3, -1.0)

    def test_binarize_against_offsets(self):
        phases = np.array([0.1, np.pi - 0.1, np.pi / 2 + 0.05, 3 * np.pi / 2 - 0.05])
        offsets = np.array([0.0, 0.0, np.pi / 2, np.pi / 2])
        assert np.array_equal(binarize_against_offsets(phases, offsets), [0, 1, 0, 1])

    def test_stage_executor_produces_valid_bits(self, fast_config):
        graph = kings_graph(4, 4)
        executor = StageExecutor(
            config=fast_config,
            edge_index=graph.edge_index_array(),
            num_oscillators=graph.num_nodes,
        )
        rng = make_rng(3)
        phases = rng.uniform(0, 2 * np.pi, graph.num_nodes)
        final, bits, trajectory = executor.run_stage(1, phases, np.zeros(graph.num_nodes, dtype=int), rng)
        assert final.shape == (16,)
        assert set(np.unique(bits)) <= {0, 1}
        assert trajectory is None

    def test_stage_executor_trajectory_collection(self, fast_config):
        graph = kings_graph(3, 3)
        executor = StageExecutor(
            config=fast_config,
            edge_index=graph.edge_index_array(),
            num_oscillators=graph.num_nodes,
            collect_trajectory=True,
        )
        rng = make_rng(4)
        phases = rng.uniform(0, 2 * np.pi, graph.num_nodes)
        _, _, trajectory = executor.run_stage(1, phases, np.zeros(graph.num_nodes, dtype=int), rng)
        assert trajectory is not None
        assert trajectory.times[0] == 0.0
        expected_duration = (
            fast_config.timing.initialization
            + fast_config.timing.annealing
            + fast_config.timing.shil_settling
        )
        assert trajectory.times[-1] == pytest.approx(expected_duration, rel=1e-6)


class TestMapping:
    def test_identity_mapping(self):
        graph = kings_graph(3, 3)
        mapping = identity_mapping(graph)
        assert mapping.num_used_oscillators == 9
        assert mapping.utilization == 1.0
        assert len(mapping.enabled_couplings()) == graph.num_edges
        assert mapping.disabled_couplings() == []

    def test_kings_fabric_mapping_with_spare_capacity(self):
        problem = kings_graph(3, 3)
        mapping = map_to_kings_fabric(problem, rows=5, cols=5)
        assert mapping.utilization == pytest.approx(9 / 25)
        assert len(mapping.disabled_couplings()) > 0
        assert mapping.oscillator_of((1, 1)) == (1, 1)

    def test_mapping_rejects_oversized_problem(self):
        with pytest.raises(MappingError):
            map_to_kings_fabric(kings_graph(5, 5), rows=3, cols=3)

    def test_mapping_rejects_unrealizable_edges(self):
        problem = Graph(edges=[((0, 0), (0, 3))])  # not a fabric edge
        with pytest.raises(MappingError):
            map_to_kings_fabric(problem, rows=4, cols=4)

    def test_mapping_validation(self):
        graph = kings_graph(2, 2)
        with pytest.raises(MappingError):
            identity_mapping(graph).oscillator_of((9, 9))


class TestMachine:
    def test_solve_produces_high_accuracy_on_49_nodes(self, fast_config):
        machine = MSROPM(kings_graph(7, 7), fast_config)
        result = machine.solve(iterations=4, seed=3)
        assert result.num_iterations == 4
        assert result.best_accuracy >= 0.9
        assert all(coloring.covers(machine.graph) for coloring in result.colorings)

    def test_solution_colors_respect_stage_bits(self, fast_config):
        """Stage-1 bit must equal the parity of the final color for every node."""
        machine = MSROPM(kings_graph(5, 5), fast_config)
        iteration = machine.run_iteration(seed=5)
        stage1 = iteration.stage_results[0]
        for node in machine.graph.nodes:
            bit = stage1.partition.side_of(node)
            assert iteration.coloring.color_of(node) % 2 == bit

    def test_stage1_reference_cut_default_for_kings(self):
        machine = MSROPM(kings_graph(6, 6))
        assert machine.stage1_reference_cut == kings_graph_reference_cut(6, 6)

    def test_stage1_reference_cut_default_generic(self):
        graph = cycle_graph(8)
        assert MSROPM(graph).stage1_reference_cut == graph.num_edges

    def test_run_time_matches_timing_plan(self, fast_config):
        machine = MSROPM(kings_graph(4, 4), fast_config)
        iteration = machine.run_iteration(seed=1)
        assert iteration.run_time == pytest.approx(fast_config.total_run_time)

    def test_reproducible_with_seed(self, fast_config):
        machine = MSROPM(kings_graph(5, 5), fast_config)
        first = machine.solve(iterations=2, seed=17)
        second = machine.solve(iterations=2, seed=17)
        assert np.allclose(first.accuracies, second.accuracies)
        assert first.iterations[0].coloring.assignment == second.iterations[0].coloring.assignment

    def test_different_seeds_differ(self, fast_config):
        machine = MSROPM(kings_graph(6, 6), fast_config)
        a = machine.run_iteration(seed=1)
        b = machine.run_iteration(seed=2)
        assert a.coloring.assignment != b.coloring.assignment

    def test_trajectory_collection_spans_run(self, fast_config):
        machine = MSROPM(kings_graph(3, 3), fast_config)
        iteration = machine.run_iteration(seed=2, collect_trajectory=True)
        assert iteration.trajectory is not None
        assert iteration.trajectory.times[-1] == pytest.approx(fast_config.total_run_time, rel=1e-6)

    def test_estimated_power_and_tts(self, fast_config):
        machine = MSROPM(kings_graph(4, 4), fast_config)
        assert machine.estimated_power() > 0
        assert machine.time_to_solution() == pytest.approx(fast_config.total_run_time)

    def test_empty_graph_rejected(self):
        with pytest.raises(MappingError):
            MSROPM(Graph())

    def test_invalid_iteration_count(self, fast_config):
        machine = MSROPM(kings_graph(3, 3), fast_config)
        with pytest.raises(ConfigurationError):
            machine.solve(iterations=0)

    def test_solve_coloring_convenience(self, fast_config):
        result = solve_coloring(kings_graph(4, 4), num_colors=4, iterations=2, seed=1, config=fast_config)
        assert result.num_iterations == 2
        assert result.num_colors == 4

    def test_two_color_machine_on_bipartite_graph(self, fast_binary_config):
        """A single-stage (2-color) machine should 2-color a grid almost perfectly."""
        graph = grid_graph(5, 5)
        machine = MSROPM(graph, fast_binary_config, stage1_reference_cut=graph.num_edges)
        result = machine.solve(iterations=3, seed=8)
        assert result.best_accuracy >= 0.9


class TestDivideAndColor:
    def test_software_divide_and_color_matches_machine_decomposition(self):
        graph = kings_graph(6, 6)
        result = divide_and_color(graph, num_colors=4, seed=0)
        assert result.num_stages == 2
        assert result.coloring.covers(graph)
        assert result.coloring.accuracy(graph) >= 0.9

    def test_perfect_stage_cuts_give_proper_coloring(self):
        """Feeding the reference partitions through the bit composition yields the exact coloring."""
        graph = kings_graph(5, 5)
        reference = kings_graph_reference_coloring(5, 5)
        stage_bits = [
            {node: (reference.color_of(node) >> 0) & 1 for node in graph.nodes},
            {node: (reference.color_of(node) >> 1) & 1 for node in graph.nodes},
        ]
        composed = coloring_from_stage_bits(graph, stage_bits, 4)
        assert composed.is_proper(graph)
        assert composed.assignment == reference.assignment

    def test_two_color_divide_and_color_on_bipartite(self):
        graph = grid_graph(4, 4)
        result = divide_and_color(graph, num_colors=2, seed=1)
        # The default solver is a 1-exchange local search, which may stop in a
        # local optimum; it must still cover the graph and cut most edges.
        assert result.coloring.covers(graph)
        assert result.coloring.accuracy(graph) >= 0.75
        assert result.stage_cut_values[0] == graph.num_edges - result.coloring.num_conflicts(graph)

    def test_eight_colors_runs_three_stages(self):
        graph = kings_graph(4, 4)
        result = divide_and_color(graph, num_colors=8, seed=2)
        assert result.num_stages == 3
        assert result.coloring.num_colors == 8

    def test_validation(self):
        graph = kings_graph(3, 3)
        with pytest.raises(ConfigurationError):
            divide_and_color(graph, num_colors=3)
        with pytest.raises(ConfigurationError):
            coloring_from_stage_bits(graph, [], 4)
        with pytest.raises(ConfigurationError):
            local_search_maxcut_solver(passes=0)
        with pytest.raises(ConfigurationError):
            coloring_from_stage_bits(graph, [{node: 2 for node in graph.nodes}], 2)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_divide_and_color_accuracy_bounded(self, seed):
        graph = kings_graph(4, 4)
        result = divide_and_color(graph, num_colors=4, seed=seed)
        assert 0.0 <= result.coloring.accuracy(graph) <= 1.0
