"""Tests for structural graph properties and chromatic bounds."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    chromatic_number_bounds,
    complete_graph,
    cycle_graph,
    degree_statistics,
    greedy_chromatic_upper_bound,
    grid_graph,
    is_bipartite,
    kings_graph,
    max_clique_lower_bound,
    search_space_log10,
    search_space_size,
    two_coloring,
    Graph,
)


class TestDegreeStatistics:
    def test_kings_graph(self):
        stats = degree_statistics(kings_graph(5, 5))
        assert stats["min"] == 3
        assert stats["max"] == 8
        assert 0 < stats["density"] < 1

    def test_empty_graph(self):
        stats = degree_statistics(Graph())
        assert stats["mean"] == 0.0


class TestBipartiteness:
    def test_grid_is_bipartite(self):
        assert is_bipartite(grid_graph(4, 5))

    def test_kings_is_not_bipartite(self):
        assert not is_bipartite(kings_graph(3, 3))

    def test_even_cycle_bipartite_odd_not(self):
        assert is_bipartite(cycle_graph(6))
        assert not is_bipartite(cycle_graph(5))

    def test_two_coloring_valid(self):
        graph = grid_graph(3, 3)
        colors = two_coloring(graph)
        assert colors is not None
        for u, v in graph.edges():
            assert colors[u] != colors[v]


class TestCliqueAndChromatic:
    def test_clique_bound_kings(self):
        # Every 2x2 block of a King's graph is a 4-clique.
        assert max_clique_lower_bound(kings_graph(4, 4)) >= 4

    def test_clique_bound_complete(self):
        assert max_clique_lower_bound(complete_graph(6)) == 6

    def test_greedy_upper_bound_kings(self):
        assert greedy_chromatic_upper_bound(kings_graph(5, 5)) == 4

    def test_bounds_ordering(self):
        for graph in (kings_graph(4, 4), grid_graph(4, 4), cycle_graph(7), complete_graph(5)):
            lower, upper = chromatic_number_bounds(graph)
            assert lower <= upper

    def test_bounds_bipartite(self):
        lower, upper = chromatic_number_bounds(grid_graph(3, 3))
        assert (lower, upper) == (2, 2)

    def test_bounds_empty(self):
        assert chromatic_number_bounds(Graph()) == (0, 0)


class TestSearchSpace:
    def test_exact_value(self):
        assert search_space_size(49, 4) == 4 ** 49

    def test_table1_magnitudes(self):
        # Table 1 lists search spaces 4^49, 4^400, 4^1024, 4^2116.
        assert search_space_log10(2116, 4) == pytest.approx(2116 * 0.60206, rel=1e-4)

    def test_zero_nodes(self):
        assert search_space_size(0, 4) == 1
        assert search_space_log10(0, 4) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(GraphError):
            search_space_size(-1, 4)
        with pytest.raises(GraphError):
            search_space_log10(5, 0)
