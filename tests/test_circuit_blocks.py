"""Tests for the behavioural circuit blocks: technology, inverter, ROSC, coupling, SHIL."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.circuit import (
    TECH_65NM_GP,
    TECH_65NM_LP,
    Inverter,
    RingOscillator,
    CouplingElement,
    ShilSource,
    Technology,
    b2b_coupling,
    dynamic_power,
    leakage_power,
    n_shil,
    paper_rosc,
    shil1,
    shil2,
)
from repro.units import as_ghz, ghz


class TestTechnology:
    def test_default_corner_is_1v(self):
        assert TECH_65NM_GP.supply_voltage == 1.0
        assert TECH_65NM_GP.name == "65nm-GP"

    def test_lp_corner_leaks_less(self):
        assert TECH_65NM_LP.leakage_current_per_um < TECH_65NM_GP.leakage_current_per_um

    def test_dynamic_power_formula(self):
        assert dynamic_power(1e-15, 1.0, 1e9) == pytest.approx(1e-6)
        assert dynamic_power(1e-15, 1.0, 1e9, activity=0.5) == pytest.approx(0.5e-6)

    def test_dynamic_power_validation(self):
        with pytest.raises(CircuitError):
            dynamic_power(-1e-15, 1.0, 1e9)
        with pytest.raises(CircuitError):
            dynamic_power(1e-15, 1.0, 1e9, activity=2.0)

    def test_leakage_power(self):
        assert leakage_power(10.0) == pytest.approx(10.0 * TECH_65NM_GP.leakage_current_per_um)
        with pytest.raises(CircuitError):
            leakage_power(-1.0)

    def test_invalid_technology(self):
        with pytest.raises(CircuitError):
            Technology(supply_voltage=0.0)


class TestInverter:
    def test_paper_skew_ratio(self):
        inverter = Inverter()
        assert inverter.beta_ratio == pytest.approx(4.0)

    def test_minimum_width_enforced(self):
        with pytest.raises(CircuitError):
            Inverter(nmos_width_um=0.01)

    def test_skewed_inverter_has_asymmetric_delays(self):
        inverter = Inverter()
        # The PMOS is 4x wide but only ~half as strong per um, so rise is faster than fall.
        assert inverter.rise_delay() < inverter.fall_delay()

    def test_delay_increases_with_fanout(self):
        inverter = Inverter()
        assert inverter.propagation_delay(fanout=4) > inverter.propagation_delay(fanout=1)

    def test_fanout_validation(self):
        with pytest.raises(CircuitError):
            Inverter().load_capacitance(fanout=-1)

    def test_power_scales_with_frequency(self):
        inverter = Inverter()
        assert inverter.switching_power(2e9) == pytest.approx(2 * inverter.switching_power(1e9))

    def test_leakage_positive(self):
        assert Inverter().leakage() > 0


class TestRingOscillator:
    def test_odd_stage_count_required(self):
        with pytest.raises(CircuitError):
            RingOscillator(num_stages=10)
        with pytest.raises(CircuitError):
            RingOscillator(num_stages=1)

    def test_paper_rosc_hits_target_frequency(self):
        rosc = paper_rosc(ghz(1.3))
        assert as_ghz(rosc.natural_frequency) == pytest.approx(1.3, rel=0.02)
        assert rosc.num_stages == 11

    def test_frequency_decreases_with_more_stages(self):
        fast = RingOscillator(num_stages=5)
        slow = RingOscillator(num_stages=21)
        assert slow.natural_frequency < fast.natural_frequency

    def test_power_components(self):
        rosc = paper_rosc()
        assert rosc.dynamic_power() > 0
        assert rosc.leakage_power() > 0
        assert rosc.total_power() == pytest.approx(rosc.dynamic_power() + rosc.leakage_power())

    def test_power_scales_with_activity(self):
        rosc = paper_rosc()
        assert rosc.dynamic_power(activity=0.5) == pytest.approx(0.5 * rosc.dynamic_power(activity=1.0))

    def test_jitter_and_diffusion(self):
        rosc = paper_rosc()
        assert rosc.period_jitter_rms(0.01) == pytest.approx(0.01 * rosc.period)
        assert rosc.phase_noise_diffusion(0.01) > 0
        with pytest.raises(CircuitError):
            rosc.period_jitter_rms(-0.1)

    def test_scaled_to_invalid_frequency(self):
        with pytest.raises(CircuitError):
            RingOscillator().scaled_to_frequency(0.0)


class TestCoupling:
    def test_b2b_is_inverting(self):
        element = b2b_coupling(0.2)
        assert element.inverting
        assert element.effective_strength == pytest.approx(0.2)
        # Anti-phase preference = positive J under the Eq. (1) convention.
        assert element.ising_coupling() == pytest.approx(0.2)

    def test_gating(self):
        element = b2b_coupling(0.2)
        element.set_partition_enable(False)
        assert not element.is_conducting
        assert element.effective_strength == 0.0
        assert element.ising_coupling() == 0.0
        element.set_partition_enable(True)
        element.set_local_enable(False)
        assert not element.is_conducting

    def test_negative_strength_rejected(self):
        with pytest.raises(CircuitError):
            CouplingElement(strength=-0.1)

    def test_power_zero_when_gated(self):
        element = b2b_coupling(0.2)
        element.set_local_enable(False)
        assert element.switching_power(1.3e9) == 0.0
        element.set_local_enable(True)
        assert element.switching_power(1.3e9) > 0

    def test_non_inverting_sign(self):
        element = CouplingElement(strength=0.3, inverting=False)
        assert element.ising_coupling() == pytest.approx(-0.3)


class TestShil:
    def test_shil_runs_at_twice_the_frequency(self):
        source = shil1(ghz(1.3))
        assert source.frequency == pytest.approx(2 * ghz(1.3))
        assert source.order == 2

    def test_shil1_locks_at_0_and_180(self):
        assert np.allclose(shil1().lock_phases(), [0.0, np.pi])

    def test_shil2_locks_at_90_and_270(self):
        assert np.allclose(shil2().lock_phases(), [np.pi / 2, 3 * np.pi / 2])

    def test_n_shil_lock_count(self):
        source = n_shil(3)
        assert source.num_lock_phases == 3
        assert np.allclose(source.lock_phases(), [0, 2 * np.pi / 3, 4 * np.pi / 3])

    def test_lock_phases_are_stable_points_of_the_restoring_torque(self):
        for source in (shil1(), shil2(), n_shil(3)):
            locks = source.lock_phases()
            assert np.allclose(source.restoring_torque(locks), 0.0, atol=1e-12)
            # Slightly off a lock phase, the torque pushes back towards it.
            epsilon = 1e-3
            assert np.all(source.restoring_torque(locks + epsilon) < 0)
            assert np.all(source.restoring_torque(locks - epsilon) > 0)

    def test_value_is_bounded(self):
        source = shil1()
        times = np.linspace(0, 3 / source.frequency, 50)
        values = np.array([source.value(t) for t in times])
        assert np.all(np.abs(values) <= 1.0)

    def test_with_strength(self):
        assert shil1().with_strength(0.5).strength == 0.5

    def test_validation(self):
        with pytest.raises(CircuitError):
            ShilSource(order=1)
        with pytest.raises(CircuitError):
            ShilSource(strength=-0.1)
        with pytest.raises(CircuitError):
            ShilSource(waveform="triangle")
