"""Tests for the solver service: tickets, coalescing, backpressure, protocol.

The satellite contract these tests pin down:

* concurrent same-hash submissions yield ONE ticket and ONE execution
  (asserted through the runner's own counters),
* resubmission after completion is a pure memo/cache fetch — never a
  recomputation,
* rate-limit and backpressure responses are deterministic under a seeded
  request script (fake clock, scripted submissions, exact status sequence).
"""

import asyncio
import json
import threading

import pytest

from repro.core.config import MSROPMConfig
from repro.runtime.jobs import KingsGraphSpec, SolveJob
from repro.runtime.runner import (
    TICKET_DONE,
    TICKET_FAILED,
    TICKET_PENDING,
    ExperimentRunner,
    SubmitQueueFull,
    Ticket,
)
from repro.service.client import ServiceClient, ServiceError, discover_endpoint
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    build_jobs,
    encode_ticket,
)
from repro.service.ratelimit import RateLimiter
from repro.service.server import SolverService, serve
from repro.service.state import SERVICE_STATE_VERSION, ServiceState


def _job(config, seed=1, rows=4, iterations=2):
    return SolveJob(
        spec=KingsGraphSpec(rows, rows),
        config=config,
        seed=seed,
        total_iterations=iterations,
    )


class _FakeClock:
    """A hand-advanced monotonic clock for deterministic limiter tests."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# Runner-level ticket semantics.
# ----------------------------------------------------------------------
class TestTicketSubmission:
    def test_concurrent_same_hash_submissions_execute_once(self, fast_config):
        """N racing submissions of one hash → one ticket id, one execution."""
        threads = 5
        barrier = threading.Barrier(threads)
        tickets = [None] * threads

        with ExperimentRunner(workers=1) as runner:
            def submit(slot):
                # Each thread builds its *own* job object: coalescing is by
                # content hash, not object identity.
                job = _job(fast_config)
                barrier.wait()
                tickets[slot] = runner.submit(job)

            workers = [
                threading.Thread(target=submit, args=(slot,))
                for slot in range(threads)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()

            assert all(ticket is not None for ticket in tickets)
            assert len({ticket.ticket_id for ticket in tickets}) == 1
            assert runner.wait(tickets, timeout=60.0)

            stats = runner.stats()
            assert stats["jobs_run"] == 1
            assert stats["tickets_issued"] == 1
            # The 4 non-first submissions either coalesced onto the in-flight
            # ticket or (if they lost the race past completion) were served
            # from the finished one — never a second execution.
            assert stats["tickets_coalesced"] + stats["tickets_cache_served"] == threads - 1
            assert stats["queue_depth"] == 0

        ticket = tickets[0]
        assert ticket.state == TICKET_DONE
        assert ticket.ticket_id == ticket.job.job_hash

    def test_submitted_result_matches_blocking_run(self, fast_config):
        """The ticket path and run_jobs produce the identical persisted form."""
        job = _job(fast_config)
        with ExperimentRunner(workers=1) as blocking:
            direct = blocking.run_jobs([job])[0]
        with ExperimentRunner(workers=1) as runner:
            ticket = runner.submit(_job(fast_config))
            assert runner.wait([ticket], timeout=60.0)
        assert job.encode(ticket.result) == job.encode(direct)

    def test_resubmission_after_completion_is_pure_cache_fetch(
        self, fast_config, tmp_path
    ):
        """A fresh runner over the same cache answers without executing."""
        cache_dir = tmp_path / "cache"
        with ExperimentRunner(workers=1, cache_dir=cache_dir) as first:
            ticket = first.submit(_job(fast_config))
            assert first.wait([ticket], timeout=60.0)
            assert first.stats()["jobs_run"] == 1

        with ExperimentRunner(workers=1, cache_dir=cache_dir) as second:
            resubmitted = second.submit(_job(fast_config))
            assert resubmitted.state == TICKET_DONE
            assert resubmitted.source == "cache"
            stats = second.stats()
            assert stats["jobs_run"] == 0
            assert stats["tickets_cache_served"] == 1
        assert _job(fast_config).encode(resubmitted.result) == _job(
            fast_config
        ).encode(ticket.result)

    def test_memo_answers_within_one_runner(self, fast_config):
        """Same runner, second submission after completion: memo, no rerun."""
        with ExperimentRunner(workers=1) as runner:
            first = runner.submit(_job(fast_config))
            assert runner.wait([first], timeout=60.0)
            again = runner.submit(_job(fast_config))
            assert again is first  # literally the same finished ticket
            assert runner.stats()["jobs_run"] == 1
            assert runner.stats()["tickets_cache_served"] == 1

    def test_uncacheable_jobs_get_anonymous_tickets(self, fast_config):
        """Seedless jobs cannot coalesce — each submission is its own ticket."""
        with ExperimentRunner(workers=1) as runner:
            a = runner.submit(_job(fast_config, seed=None))
            b = runner.submit(_job(fast_config, seed=None))
            assert a.ticket_id != b.ticket_id
            assert a.ticket_id.startswith("anon-")
            assert runner.wait([a, b], timeout=60.0)
            assert runner.stats()["jobs_run"] == 2
            assert runner.stats()["tickets_coalesced"] == 0

    def test_failed_ticket_reenqueues_under_same_id(self, fast_config):
        """A failed hash is retryable: resubmission runs a fresh attempt."""
        with ExperimentRunner(workers=1) as runner:
            real_run = runner.scheduler.run
            runner.scheduler.run = lambda jobs: (_ for _ in ()).throw(
                RuntimeError("injected execution failure")
            )
            try:
                ticket = runner.submit(_job(fast_config))
                assert runner.wait([ticket], timeout=60.0)
                assert ticket.state == TICKET_FAILED
                assert "injected execution failure" in ticket.error
            finally:
                runner.scheduler.run = real_run

            retry = runner.submit(_job(fast_config))
            assert retry is not ticket
            assert retry.ticket_id == ticket.ticket_id
            assert runner.wait([retry], timeout=60.0)
            assert retry.state == TICKET_DONE
            assert runner.stats()["jobs_run"] == 1

    def test_poll_looks_up_by_ticket_id(self, fast_config):
        with ExperimentRunner(workers=1) as runner:
            assert runner.poll("missing") is None
            ticket = runner.submit(_job(fast_config))
            assert runner.poll(ticket.ticket_id) is ticket
            assert runner.wait([ticket], timeout=60.0)

    def test_close_fails_queued_tickets_and_runner_recovers(self, fast_config):
        """Tickets still queued at close() fail cleanly; resubmission works."""
        release = threading.Event()
        with ExperimentRunner(workers=1) as runner:
            real_run = runner.scheduler.run

            def blocking_run(jobs):
                release.wait(timeout=60.0)
                return real_run(jobs)

            runner.scheduler.run = blocking_run
            first = runner.submit(_job(fast_config, seed=1))
            # Give the drain thread time to take the first batch so the
            # second submission stays queued behind the blocked execution.
            deadline = 100
            while runner.poll(first.ticket_id).state == TICKET_PENDING and deadline:
                deadline -= 1
                threading.Event().wait(0.01)
            queued = runner.submit(_job(fast_config, seed=2))
            release.set()
            runner.scheduler.run = real_run
            runner.close()
            assert first.finished
            if queued.state == TICKET_FAILED:
                assert "runner closed" in queued.error
            # A closed runner accepts new submissions (drain thread restarts).
            retry = runner.submit(_job(fast_config, seed=2))
            assert runner.wait([retry], timeout=60.0)
            assert retry.state == TICKET_DONE

    def test_submit_queue_full_is_deterministic_backpressure(self, fast_config):
        """max_pending bounds in-flight work; coalescing is exempt."""
        release = threading.Event()
        started = threading.Event()
        with ExperimentRunner(workers=1, max_pending=1) as runner:
            real_run = runner.scheduler.run

            def blocking_run(jobs):
                started.set()
                release.wait(timeout=60.0)
                return real_run(jobs)

            runner.scheduler.run = blocking_run
            try:
                first = runner.submit(_job(fast_config, seed=1))
                assert started.wait(timeout=60.0)
                # A *distinct* hash cannot be admitted past the cap ...
                with pytest.raises(SubmitQueueFull) as excinfo:
                    runner.submit(_job(fast_config, seed=2))
                assert excinfo.value.depth == 1
                assert excinfo.value.limit == 1
                # ... but resubmitting the in-flight hash coalesces freely.
                again = runner.submit(_job(fast_config, seed=1))
                assert again is first
                assert again.coalesced == 1
            finally:
                release.set()
                runner.scheduler.run = real_run
            assert runner.wait([first], timeout=60.0)
            # With the queue drained the rejected hash is admitted.
            second = runner.submit(_job(fast_config, seed=2))
            assert runner.wait([second], timeout=60.0)
            assert second.state == TICKET_DONE


# ----------------------------------------------------------------------
# The rate limiter (pure, fake-clocked, fully deterministic).
# ----------------------------------------------------------------------
class TestRateLimiter:
    def test_burst_then_refill_sequence(self):
        clock = _FakeClock()
        limiter = RateLimiter(rate=1.0, burst=2.0, clock=clock)
        assert limiter.try_acquire("alice") == (True, 0.0)
        assert limiter.try_acquire("alice") == (True, 0.0)
        ok, retry_after = limiter.try_acquire("alice")
        assert not ok and retry_after == pytest.approx(1.0)
        clock.advance(0.5)
        ok, retry_after = limiter.try_acquire("alice")
        assert not ok and retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        assert limiter.try_acquire("alice") == (True, 0.0)
        assert limiter.stats() == {"allowed": 3, "rejected": 2, "clients": 1}

    def test_clients_are_isolated(self):
        clock = _FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.try_acquire("alice")[0]
        assert not limiter.try_acquire("alice")[0]
        assert limiter.try_acquire("bob")[0]  # bob's bucket is untouched
        assert limiter.stats()["clients"] == 2

    def test_zero_rate_never_refills(self):
        clock = _FakeClock()
        limiter = RateLimiter(rate=0.0, burst=1.0, clock=clock)
        assert limiter.try_acquire("alice")[0]
        ok, retry_after = limiter.try_acquire("alice")
        assert not ok and retry_after == float("inf")
        clock.advance(1e6)
        assert not limiter.try_acquire("alice")[0]

    def test_oversized_spend_reports_full_bucket_refill(self):
        clock = _FakeClock()
        limiter = RateLimiter(rate=2.0, burst=4.0, clock=clock)
        assert limiter.try_acquire("alice", tokens=4.0)[0]
        ok, retry_after = limiter.try_acquire("alice", tokens=100.0)
        assert not ok
        assert retry_after == pytest.approx(4.0 / 2.0)  # time to a full bucket

    def test_bucket_never_overflows_burst(self):
        clock = _FakeClock()
        limiter = RateLimiter(rate=10.0, burst=2.0, clock=clock)
        assert limiter.try_acquire("alice", tokens=2.0)[0]
        clock.advance(1e3)  # far more than enough to refill
        assert limiter.try_acquire("alice", tokens=2.0)[0]
        assert not limiter.try_acquire("alice", tokens=0.5)[0]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(burst=0.0)
        with pytest.raises(ValueError):
            RateLimiter(rate=-1.0)


# ----------------------------------------------------------------------
# The protocol: spec → job parity with the CLI paths.
# ----------------------------------------------------------------------
class TestProtocol:
    def test_solve_spec_hash_matches_cli_constructed_job(self):
        """A service 'solve' spec addresses the exact hash msropm solve would."""
        jobs = build_jobs(
            [{"kind": "solve", "rows": 4, "colors": 4, "seed": 3, "iterations": 2}]
        )
        assert len(jobs) == 1
        cli_job = SolveJob(
            spec=KingsGraphSpec(4, 4),
            config=MSROPMConfig(
                num_colors=4, seed=3, engine="batched", precision="exact"
            ),
            seed=3,
            total_iterations=2,
        )
        assert jobs[0].job_hash == cli_job.job_hash

    def test_scenarios_spec_matches_matrix_planner(self):
        """A 'scenarios' spec expands through the CLI's own planner."""
        from repro.experiments.scenario_matrix import plan_scenario_requests
        from repro.workloads.registry import expand_workloads

        jobs = build_jobs(
            [{"kind": "scenarios", "families": ["er"], "iterations": 2, "seed": 7}]
        )
        requests = plan_scenario_requests(
            expand_workloads(["er"], base_seed=7), iterations=2, seed=7,
            engine="batched", precision="exact",
        )
        assert len(jobs) == len(requests) > 0
        planner_hashes = [
            SolveJob(
                spec=request.spec,
                config=request.config,
                seed=request.seed,
                total_iterations=request.iterations,
            ).job_hash
            for request in requests
        ]
        assert [job.job_hash for job in jobs] == planner_hashes

    def test_spec_validation_errors(self):
        with pytest.raises(ProtocolError, match="no jobs"):
            build_jobs([])
        with pytest.raises(ProtocolError, match="JSON object"):
            build_jobs(["not a dict"])
        with pytest.raises(ProtocolError, match="unknown job kind"):
            build_jobs([{"kind": "mystery"}])
        with pytest.raises(ProtocolError, match="'seed' must be int"):
            build_jobs([{"kind": "solve", "seed": True}])
        with pytest.raises(ProtocolError, match="'colors' must be int"):
            build_jobs([{"kind": "solve", "colors": "four"}])
        with pytest.raises(ProtocolError, match="list of strings"):
            build_jobs([{"kind": "scenarios", "families": [1, 2]}])

    def test_encode_ticket_shapes(self, fast_config):
        job = _job(fast_config)
        pending = Ticket(ticket_id=job.job_hash, job=job)
        encoded = encode_ticket(pending)
        assert encoded == {
            "ticket_id": job.job_hash,
            "state": TICKET_PENDING,
            "source": "computed",
            "coalesced": 0,
        }
        failed = Ticket(
            ticket_id=job.job_hash, job=job, state=TICKET_FAILED, error="boom"
        )
        assert encode_ticket(failed)["error"] == "boom"
        # A result is only attached for done tickets, and only on request.
        assert "result" not in encode_ticket(failed, include_result=True)


# ----------------------------------------------------------------------
# The service request handler (transport-free, deterministic).
# ----------------------------------------------------------------------
class TestSolverServiceHandle:
    def _service(self, tmp_path, runner, **kwargs):
        return SolverService(runner, tmp_path / "cache", **kwargs)

    def _solve_spec(self, seed=1):
        return {
            "kind": "solve", "rows": 4, "colors": 4,
            "seed": seed, "iterations": 1,
        }

    def _submit_body(self, *specs, client="tester"):
        return {
            "protocol": PROTOCOL_VERSION,
            "client": client,
            "jobs": list(specs),
        }

    def test_healthz_and_unknown_paths(self, tmp_path):
        with ExperimentRunner(workers=1) as runner:
            service = self._service(tmp_path, runner)
            status, payload, _ = service.handle("GET", "/v1/healthz", None)
            assert (status, payload) == (200, {"ok": True, "protocol": PROTOCOL_VERSION})
            status, _, _ = service.handle("POST", "/v1/healthz", None)
            assert status == 405
            status, _, _ = service.handle("GET", "/v1/nope", None)
            assert status == 404
            status, _, _ = service.handle("GET", "/v1/tickets/unknown", None)
            assert status == 404

    def test_malformed_submissions_are_400(self, tmp_path):
        with ExperimentRunner(workers=1) as runner:
            service = self._service(tmp_path, runner)
            for body in (
                None,
                {"protocol": 99, "client": "x", "jobs": [self._solve_spec()]},
                {"protocol": PROTOCOL_VERSION, "client": "", "jobs": []},
                {"protocol": PROTOCOL_VERSION, "client": "x", "jobs": "nope"},
                {"protocol": PROTOCOL_VERSION, "client": "x", "jobs": []},
                {"protocol": PROTOCOL_VERSION, "client": "x", "jobs": [{"kind": "?"}]},
            ):
                status, payload, _ = service.handle("POST", "/v1/submit", body)
                assert status == 400, body
                assert "error" in payload

    def test_submit_poll_fetch_lifecycle(self, tmp_path):
        with ExperimentRunner(workers=1, cache_dir=tmp_path / "cache") as runner:
            service = self._service(tmp_path, runner)
            status, payload, _ = service.handle(
                "POST", "/v1/submit", self._submit_body(self._solve_spec())
            )
            assert status == 200
            (ticket,) = payload["tickets"]
            ticket_id = ticket["ticket_id"]
            assert len(ticket_id) == 64  # the job content hash
            assert runner.wait([runner.poll(ticket_id)], timeout=120.0)

            status, payload, _ = service.handle(
                "GET", f"/v1/tickets/{ticket_id}?result=1", None
            )
            assert status == 200
            assert payload["state"] == TICKET_DONE
            assert payload["source"] == "computed"
            result = payload["result"]
            assert result["iterations"]  # the persisted solve payload

            # Resubmission coalesces/serves — never recomputes.
            status, payload, _ = service.handle(
                "POST", "/v1/submit", self._submit_body(self._solve_spec())
            )
            assert status == 200
            assert payload["tickets"][0]["ticket_id"] == ticket_id
            stats = runner.stats()
            assert stats["jobs_run"] == 1
            assert stats["tickets_cache_served"] == 1

            # The ticket index on disk recorded the submitting client.
            index = json.loads(
                (tmp_path / "cache" / "service" / "tickets.json").read_text()
            )
            assert index["tickets"][ticket_id]["client"] == "tester"

    def test_seeded_request_script_rate_limits_deterministically(self, tmp_path):
        """A scripted submission sequence gets an exact status/Retry-After
        sequence back: the limiter runs on an injected clock."""
        clock = _FakeClock()
        with ExperimentRunner(workers=1, cache_dir=tmp_path / "cache") as runner:
            service = self._service(
                tmp_path, runner, rate=1.0, burst=2.0, clock=clock
            )
            script = []  # (advance_before, expected_status)
            observed = []
            for advance, _expected in (
                (0.0, 200), (0.0, 200), (0.0, 429), (0.0, 429), (2.0, 200),
            ):
                script.append(_expected)
                clock.advance(advance)
                status, payload, headers = service.handle(
                    "POST",
                    "/v1/submit",
                    self._submit_body(self._solve_spec(), client="scripted"),
                )
                observed.append(status)
                if status == 429:
                    assert payload["error"] == "rate limited"
                    assert headers["Retry-After"] == "1"
                    assert payload["retry_after"] == pytest.approx(1.0)
            assert observed == script
            assert service.rejected_rate == 2
            assert service.limiter.stats()["rejected"] == 2
            # Other clients are unaffected by the scripted client's debt.
            status, _, _ = service.handle(
                "POST",
                "/v1/submit",
                self._submit_body(self._solve_spec(), client="bystander"),
            )
            assert status == 200
            runner.wait(
                [runner.poll(t.ticket_id) for t in runner._tickets.values()],
                timeout=120.0,
            )

    def test_queue_full_maps_to_429_backpressure(self, tmp_path, fast_config):
        release = threading.Event()
        started = threading.Event()
        with ExperimentRunner(workers=1, max_pending=1) as runner:
            real_run = runner.scheduler.run

            def blocking_run(jobs):
                started.set()
                release.wait(timeout=60.0)
                return real_run(jobs)

            runner.scheduler.run = blocking_run
            try:
                service = self._service(tmp_path, runner)
                status, _, _ = service.handle(
                    "POST", "/v1/submit", self._submit_body(self._solve_spec(seed=1))
                )
                assert status == 200
                assert started.wait(timeout=60.0)
                status, payload, headers = service.handle(
                    "POST", "/v1/submit", self._submit_body(self._solve_spec(seed=2))
                )
                assert status == 429
                assert payload["error"] == "submit queue full"
                assert payload["depth"] == 1
                assert payload["limit"] == 1
                assert headers["Retry-After"] == "1"
                assert service.rejected_backpressure == 1
            finally:
                release.set()
                runner.scheduler.run = real_run
            runner.wait(
                [t for t in runner._tickets.values()], timeout=120.0
            )

    def test_stats_shape(self, tmp_path):
        with ExperimentRunner(workers=1, cache_dir=tmp_path / "cache") as runner:
            service = self._service(tmp_path, runner)
            status, payload, _ = service.handle("GET", "/v1/stats", None)
            assert status == 200
            assert payload["protocol"] == PROTOCOL_VERSION
            assert set(payload["service"]) == {
                "requests", "rejected_rate", "rejected_backpressure",
            }
            assert payload["runner"]["jobs_run"] == 0
            assert payload["ratelimit"] == {
                "allowed": 0, "rejected": 0, "clients": 0,
            }

    def test_campaign_listing_is_empty_without_a_ledger(self, tmp_path):
        with ExperimentRunner(workers=1, cache_dir=tmp_path / "cache") as runner:
            service = self._service(tmp_path, runner)
            status, payload, _ = service.handle("GET", "/v1/campaigns", None)
            assert (status, payload) == (200, {"runs": []})
            status, _, _ = service.handle("GET", "/v1/campaigns/ghost", None)
            assert status == 404


# ----------------------------------------------------------------------
# Restart recovery: the cache is the durable result store.
# ----------------------------------------------------------------------
class TestRestartRecovery:
    def test_restarted_server_serves_results_from_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        spec = {"kind": "solve", "rows": 4, "colors": 4, "seed": 5, "iterations": 1}
        body = {"protocol": PROTOCOL_VERSION, "client": "first-life", "jobs": [spec]}

        with ExperimentRunner(workers=1, cache_dir=cache_dir) as runner:
            service = SolverService(runner, cache_dir)
            status, payload, _ = service.handle("POST", "/v1/submit", body)
            assert status == 200
            ticket_id = payload["tickets"][0]["ticket_id"]
            assert runner.wait([runner.poll(ticket_id)], timeout=120.0)
            status, done_payload, _ = service.handle(
                "GET", f"/v1/tickets/{ticket_id}?result=1", None
            )
            assert status == 200

        # "Restart": a brand-new runner + service over the same cache dir.
        with ExperimentRunner(workers=1, cache_dir=cache_dir) as reborn:
            service = SolverService(reborn, cache_dir)
            assert reborn.poll(ticket_id) is None  # this runner never saw it
            status, payload, _ = service.handle(
                "GET", f"/v1/tickets/{ticket_id}?result=1", None
            )
            assert status == 200
            assert payload["state"] == TICKET_DONE
            assert payload["source"] == "cache"
            assert payload["result"] == done_payload["result"]
            assert reborn.stats()["jobs_run"] == 0

            # Resubmitting the same spec is a pure cache fetch too.
            status, payload, _ = service.handle("POST", "/v1/submit", body)
            assert status == 200
            assert payload["tickets"][0]["state"] == TICKET_DONE
            assert payload["tickets"][0]["source"] == "cache"
            assert reborn.stats()["jobs_run"] == 0

    def test_unfinished_tickets_recover_from_the_index(self, tmp_path, fast_config):
        """Ids without a cache entry still answer from the persisted index."""
        cache_dir = tmp_path / "cache"
        state = ServiceState(cache_dir)
        anon = Ticket(ticket_id="anon-0", job=_job(fast_config, seed=None))
        state.record_tickets([anon], client="first-life")

        with ExperimentRunner(workers=1, cache_dir=cache_dir) as reborn:
            service = SolverService(reborn, cache_dir)
            status, payload, _ = service.handle("GET", "/v1/tickets/anon-0", None)
            assert status == 200
            assert payload["recovered"] is True
            assert payload["state"] == TICKET_PENDING


# ----------------------------------------------------------------------
# Durable service state files.
# ----------------------------------------------------------------------
class TestServiceState:
    def test_endpoint_round_trip(self, tmp_path):
        state = ServiceState(tmp_path)
        assert state.read_endpoint() is None
        state.write_endpoint("127.0.0.1", 8765, PROTOCOL_VERSION)
        record = state.read_endpoint()
        assert record["host"] == "127.0.0.1"
        assert record["port"] == 8765
        assert record["service_state"] == SERVICE_STATE_VERSION
        state.clear_endpoint()
        assert state.read_endpoint() is None
        state.clear_endpoint()  # idempotent

    def test_damaged_files_read_as_empty(self, tmp_path):
        state = ServiceState(tmp_path)
        state.root.mkdir(parents=True)
        state.endpoint_path.write_text("{not json")
        state.tickets_path.write_text("[1, 2, 3]")
        assert state.read_endpoint() is None
        assert state.load_tickets() == {}

    def test_record_tickets_keeps_original_client(self, tmp_path, fast_config):
        state = ServiceState(tmp_path)
        job = _job(fast_config)
        ticket = Ticket(ticket_id=job.job_hash, job=job)
        state.record_tickets([ticket], client="owner")
        ticket.state = TICKET_DONE
        state.record_tickets([ticket], client="poller")
        index = ServiceState(tmp_path).load_tickets()
        assert index[job.job_hash]["state"] == TICKET_DONE
        assert index[job.job_hash]["client"] == "owner"

    def test_unchanged_states_do_not_rewrite(self, tmp_path, fast_config):
        state = ServiceState(tmp_path)
        job = _job(fast_config)
        ticket = Ticket(ticket_id=job.job_hash, job=job)
        state.record_tickets([ticket], client="owner")
        stamp = state.tickets_path.stat().st_mtime_ns
        state.record_tickets([ticket], client="someone-else")
        assert state.tickets_path.stat().st_mtime_ns == stamp


# ----------------------------------------------------------------------
# One end-to-end pass over the real asyncio transport + stdlib client.
# ----------------------------------------------------------------------
class TestHTTPTransport:
    @pytest.fixture()
    def live_service(self, tmp_path):
        """A real serve() loop on an ephemeral port, in a background thread."""
        cache_dir = tmp_path / "cache"
        with ExperimentRunner(workers=1, cache_dir=cache_dir) as runner:
            service = SolverService(runner, cache_dir)
            loop = asyncio.new_event_loop()
            thread = threading.Thread(target=loop.run_forever, daemon=True)
            thread.start()
            future = asyncio.run_coroutine_threadsafe(
                serve(service, host="127.0.0.1", port=0), loop
            )
            try:
                deadline = 200
                while service.state.read_endpoint() is None and deadline:
                    if future.done():
                        future.result()  # surface the bind error
                    deadline -= 1
                    threading.Event().wait(0.05)
                assert service.state.read_endpoint() is not None
                yield service, cache_dir
            finally:
                future.cancel()
                loop.call_soon_threadsafe(lambda: None)  # wake the loop
                try:
                    future.result(timeout=10.0)
                except (asyncio.CancelledError, Exception):
                    pass
                loop.call_soon_threadsafe(loop.stop)
                thread.join(timeout=10.0)
                loop.close()

    def test_client_round_trip(self, live_service):
        service, cache_dir = live_service
        client = ServiceClient(discover_endpoint(cache_dir), client_id="e2e")
        assert client.healthz()["ok"] is True

        tickets = client.submit(
            [{"kind": "solve", "rows": 4, "colors": 4, "seed": 9, "iterations": 1}]
        )
        (ticket,) = tickets
        states = client.wait([ticket["ticket_id"]], timeout=120.0)
        assert states[ticket["ticket_id"]]["state"] == TICKET_DONE

        payload = client.fetch(ticket["ticket_id"])
        assert payload["result"]["iterations"]  # the persisted solve payload
        stats = client.stats()
        assert stats["runner"]["jobs_run"] == 1

        # Unknown tickets surface as ServiceError(404) through the client.
        with pytest.raises(ServiceError) as excinfo:
            client.poll("does-not-exist")
        assert excinfo.value.status == 404

    def test_endpoint_discovery_requires_a_record(self, tmp_path):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError, match="no service endpoint record"):
            discover_endpoint(tmp_path / "nowhere")
