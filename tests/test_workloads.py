"""Tests for the workload zoo: registry, generated specs, scenario matrix.

The load-bearing properties are the acceptance criteria of the zoo:

* every registered family expands, builds and hashes stably,
* a generated-ensemble job's cache key depends only on its recipe
  (family + params + seed) — verified across OS processes,
* workloads solve through the runtime cache (cold run stores, warm run hits),
* the scenario matrix is bit-identical between 1 and N workers.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.scenario_matrix import (
    SCENARIO_BASELINES,
    plan_scenario_requests,
    run_scenario_matrix,
)
from repro.runtime.jobs import DimacsGraphSpec, GeneratedGraphSpec, KingsGraphSpec, SolveJob
from repro.runtime.runner import ExperimentRunner
from repro.workloads import (
    WorkloadSpec,
    default_workload,
    derive_instance_seed,
    expand_workloads,
    family_names,
    get_family,
)

EXPECTED_FAMILIES = {
    "kings",
    "er",
    "regular",
    "planar",
    "dimacs",
    "maxcut",
    "wmaxcut",
    "kcolor8",
    "kcolor16",
}


class TestRegistry:
    def test_builtin_families_registered(self):
        assert EXPECTED_FAMILIES <= set(family_names())

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload family"):
            get_family("no-such-family")

    def test_colliding_registration_fails_fast_and_keeps_registry_whole(self):
        from repro.workloads import register_family

        # Builtins are loaded before the collision check, so a clash with a
        # built-in name raises here — and never poisons the lazy builtin load.
        er = get_family("er")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_family(er)
        assert EXPECTED_FAMILIES <= set(family_names())

    def test_every_family_expands_and_builds(self):
        for instance in expand_workloads():
            graph = instance.build()
            assert graph.num_nodes > 0
            assert instance.kind in ("coloring", "maxcut")
            assert instance.num_colors in (2, 4, 8, 16)
            # The spec builds the same content the instance reports.
            assert instance.spec.build().num_nodes == graph.num_nodes

    def test_expansion_is_deterministic(self):
        first = expand_workloads(base_seed=7)
        second = expand_workloads(base_seed=7)
        assert [i.label for i in first] == [i.label for i in second]
        assert [i.seed for i in first] == [i.seed for i in second]
        assert [i.spec.fingerprint() for i in first] == [i.spec.fingerprint() for i in second]

    def test_base_seed_changes_ensemble_instances_only(self):
        a = {i.label for i in expand_workloads(["er"], base_seed=1)}
        b = {i.label for i in expand_workloads(["er"], base_seed=2)}
        assert a.isdisjoint(b)
        assert {i.label for i in expand_workloads(["kings"], base_seed=1)} == {
            i.label for i in expand_workloads(["kings"], base_seed=2)
        }

    def test_derive_instance_seed_is_content_stable(self):
        assert derive_instance_seed(1, "er", 0, 0) == derive_instance_seed(1, "er", 0, 0)
        assert derive_instance_seed(1, "er", 0, 0) != derive_instance_seed(1, "er", 0, 1)
        assert derive_instance_seed(1, "er", 0, 0) != derive_instance_seed(2, "er", 0, 0)

    def test_reference_solutions(self):
        references = {
            (instance.family, instance.label): instance.reference()
            for instance in expand_workloads(["kings", "dimacs", "planar", "maxcut"])
        }
        assert references[("kings", "kings-5x5")].colorable is True
        assert references[("dimacs", "myciel3")].colorable is True
        assert references[("dimacs", "myciel4")].colorable is False  # chromatic number 5
        for (family, _), reference in references.items():
            if family == "planar":
                assert reference.colorable is True
            if reference.kind == "maxcut":
                assert reference.reference_cut and reference.reference_cut > 0

    def test_custom_grid_and_replicates(self):
        spec = WorkloadSpec(family="er", grid=({"n": 10, "p": 0.2},), base_seed=3, replicates=3)
        instances = spec.expand()
        assert len(instances) == 3
        assert len({i.seed for i in instances}) == 3
        assert all(i.build().num_nodes == 10 for i in instances)


class TestGeneratedGraphSpec:
    def test_fingerprint_is_recipe_not_adjacency(self):
        spec = GeneratedGraphSpec.create("er", seed=5, n=12, p=0.3)
        assert spec.fingerprint() == {
            "kind": "generated",
            "family": "er",
            "params": {"n": 12, "p": 0.3},
            "seed": 5,
        }
        # Keyword order does not matter; the recipe is canonicalized.
        assert GeneratedGraphSpec.create("er", seed=5, p=0.3, n=12) == spec

    def test_build_dispatches_through_registry(self):
        spec = GeneratedGraphSpec.create("er", seed=5, n=12, p=0.3)
        graph = spec.build()
        assert graph.num_nodes == 12
        # Deterministic: same recipe, same edges.
        assert sorted(spec.build().edges()) == sorted(
            GeneratedGraphSpec.create("er", seed=5, n=12, p=0.3).build().edges()
        )

    def test_unknown_family_raises_on_build(self):
        with pytest.raises(ConfigurationError):
            GeneratedGraphSpec.create("nope", seed=1, n=4).build()

    def test_seedless_generated_jobs_are_uncacheable(self, fast_config):
        seeded = SolveJob(
            spec=GeneratedGraphSpec.create("er", seed=3, n=8, p=0.5),
            config=fast_config,
            seed=1,
            total_iterations=2,
        )
        assert seeded.cacheable
        unseeded = SolveJob(
            spec=GeneratedGraphSpec.create("er", seed=None, n=8, p=0.5),
            config=fast_config,
            seed=1,
            total_iterations=2,
        )
        assert not unseeded.cacheable
        with pytest.raises(ConfigurationError):
            _ = unseeded.job_hash

    #: One definition of the cross-process job, exec'd both here and in a
    #: fresh interpreter, so the two sides can never drift apart.
    _CROSS_PROCESS_JOB_SCRIPT = (
        "from repro.runtime.jobs import GeneratedGraphSpec, SolveJob\n"
        "from repro.core.config import MSROPMConfig\n"
        "config = MSROPMConfig(num_colors=4, seed=1234)\n"
        "job = SolveJob(spec=GeneratedGraphSpec.create('er', seed=11, n=10, p=0.25),"
        " config=config, seed=42, total_iterations=3)\n"
    )

    def test_job_hash_stable_across_processes(self):
        """The acceptance property: the cache key of a generated-ensemble job
        is a pure content hash (family + params + seed), identical in a fresh
        interpreter with its own hash randomization."""
        namespace: dict = {}
        exec(self._CROSS_PROCESS_JOB_SCRIPT, namespace)
        job = namespace["job"]
        script = self._CROSS_PROCESS_JOB_SCRIPT + "print(job.job_hash)\n"
        import os
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "271828"  # different hash randomization on purpose
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert completed.stdout.strip() == job.job_hash


class TestWorkloadsThroughRuntime:
    def test_every_family_solves_through_the_cache(self, fast_config, tmp_path):
        """Registry round trip: one small instance per family solves, stores,
        and resolves from a warm cache bit-identically."""
        instances = [default_workload(name, base_seed=5).expand()[0] for name in family_names()]
        requests = plan_scenario_requests(instances, iterations=2, seed=5, config=fast_config)
        cold = ExperimentRunner(cache_dir=tmp_path / "cache")
        first = cold.solve_many(requests)
        assert cold.stats()["cache_stores"] == len(requests)
        warm = ExperimentRunner(cache_dir=tmp_path / "cache")
        second = warm.solve_many(requests)
        assert warm.stats()["jobs_run"] == 0
        assert warm.stats()["cache_hits"] == len(requests)
        for a, b in zip(first, second):
            assert list(a.accuracies) == list(b.accuracies)
            assert [i.coloring.assignment for i in a.iterations] == [
                i.coloring.assignment for i in b.iterations
            ]


class TestScenarioMatrix:
    def test_parallel_matches_serial_bit_for_bit(self, fast_config):
        """The acceptance property: scenarios with N workers == 1 worker."""
        kwargs = dict(
            families=["er", "dimacs"],
            iterations=2,
            seed=9,
            config=fast_config,
            baselines=("sa",),
        )
        serial = run_scenario_matrix(runner=ExperimentRunner(workers=1), **kwargs)
        parallel = run_scenario_matrix(runner=ExperimentRunner(workers=2), **kwargs)
        assert serial.render() == parallel.render()
        for a, b in zip(serial.rows, parallel.rows):
            assert a.msropm_accuracies == b.msropm_accuracies
            assert a.baselines == b.baselines

    def test_matrix_covers_kinds_and_baseline_applicability(self, fast_config):
        result = run_scenario_matrix(
            families=["dimacs", "maxcut"],
            iterations=2,
            seed=3,
            config=fast_config,
            baselines=SCENARIO_BASELINES,
        )
        by_kind = {row.kind: row for row in result.rows}
        assert set(by_kind) == {"coloring", "maxcut"}
        coloring, maxcut = by_kind["coloring"], by_kind["maxcut"]
        assert coloring.baselines["roim"] is None and coloring.baselines["tabu"] is not None
        assert maxcut.baselines["tabu"] is None and maxcut.baselines["roim"] is not None
        assert maxcut.num_colors == 2
        summary = {item.family: item for item in result.family_summary()}
        assert set(summary) == {"dimacs", "maxcut"}
        assert all(item.count >= 1 for item in summary.values())

    def test_unknown_baseline_rejected(self, fast_config):
        with pytest.raises(ConfigurationError, match="unknown baseline"):
            run_scenario_matrix(families=["dimacs"], config=fast_config, baselines=("sota",))

    def test_warm_runner_skips_all_solves(self, fast_config, tmp_path):
        kwargs = dict(
            families=["dimacs"], iterations=2, seed=4, config=fast_config, baselines=()
        )
        cold = run_scenario_matrix(
            runner=ExperimentRunner(cache_dir=tmp_path / "cache"), **kwargs
        )
        warm = run_scenario_matrix(
            runner=ExperimentRunner(cache_dir=tmp_path / "cache"), **kwargs
        )
        assert cold.runner_stats["jobs_run"] > 0
        assert warm.runner_stats["jobs_run"] == 0
        assert warm.runner_stats["cache_hits"] == cold.runner_stats["cache_stores"]
        assert warm.render() == cold.render()


class TestBundledDimacsInstances:
    """The PR-9 additions to the DIMACS shelf: sizes and reference answers."""

    EXPECTED = {
        # instance: (family, nodes, edges, family colors, colorable)
        "myciel5": ("dimacs", 47, 236, 4, False),   # chromatic number 6
        "queen7_7": ("queens", 49, 476, 8, True),   # chromatic number 7
        "queen8_8": ("queens", 64, 728, 8, False),  # chromatic number 9
    }

    def test_new_instances_expand_with_known_references(self):
        from repro.workloads import default_workload

        for name, (family, nodes, edges, colors, colorable) in sorted(
            self.EXPECTED.items()
        ):
            instances = {
                instance.label: instance
                for instance in default_workload(family, base_seed=1).expand()
            }
            assert name in instances, f"{name} missing from family {family}"
            instance = instances[name]
            graph = instance.build()
            assert graph.num_nodes == nodes
            assert graph.num_edges == edges
            assert instance.num_colors == colors
            reference = instance.reference(graph)
            assert reference.provider == "known"
            assert reference.colorable is colorable
