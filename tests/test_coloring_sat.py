"""Tests for the graph-coloring SAT encoder and SAT-based exact coloring."""

from __future__ import annotations

import pytest

from repro.exceptions import SATError
from repro.graphs import complete_graph, cycle_graph, grid_graph, kings_graph, path_graph
from repro.sat import chromatic_number_sat, encode_coloring, sat_coloring, solve_cnf


class TestEncoding:
    def test_variable_count(self):
        graph = cycle_graph(4)
        encoding = encode_coloring(graph, 3)
        assert encoding.formula.num_variables == 12

    def test_clause_structure(self):
        graph = cycle_graph(3)
        encoding = encode_coloring(graph, 2, symmetry_breaking=False)
        # per node: 1 at-least-one + 1 at-most-one pair; per edge: 2 color clauses
        assert encoding.formula.num_clauses == 3 * (1 + 1) + 3 * 2

    def test_symmetry_breaking_adds_units(self):
        graph = complete_graph(4)
        plain = encode_coloring(graph, 4, symmetry_breaking=False)
        broken = encode_coloring(graph, 4, symmetry_breaking=True)
        assert broken.formula.num_clauses > plain.formula.num_clauses

    def test_decode_requires_sat(self):
        graph = cycle_graph(3)
        encoding = encode_coloring(graph, 2)
        result = solve_cnf(encoding.formula)
        assert result.is_unsat
        with pytest.raises(SATError):
            encoding.decode(result)

    def test_invalid_num_colors(self):
        with pytest.raises(SATError):
            encode_coloring(cycle_graph(3), 0)


class TestSatColoring:
    def test_even_cycle_two_colorable(self):
        graph = cycle_graph(6)
        coloring = sat_coloring(graph, 2)
        assert coloring is not None
        assert coloring.is_proper(graph)

    def test_odd_cycle_not_two_colorable(self):
        assert sat_coloring(cycle_graph(5), 2) is None

    def test_odd_cycle_three_colorable(self):
        graph = cycle_graph(5)
        coloring = sat_coloring(graph, 3)
        assert coloring is not None and coloring.is_proper(graph)

    def test_kings_graph_not_three_colorable(self):
        assert sat_coloring(kings_graph(3, 3), 3) is None

    def test_kings_graph_four_colorable(self):
        graph = kings_graph(4, 4)
        coloring = sat_coloring(graph, 4)
        assert coloring is not None and coloring.is_proper(graph)

    def test_complete_graph_needs_n_colors(self):
        assert sat_coloring(complete_graph(4), 3) is None
        assert sat_coloring(complete_graph(4), 4) is not None


class TestChromaticNumber:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(5), 2),
            (cycle_graph(6), 2),
            (cycle_graph(5), 3),
            (grid_graph(3, 3), 2),
            (kings_graph(3, 3), 4),
            (complete_graph(5), 5),
        ],
    )
    def test_known_chromatic_numbers(self, graph, expected):
        assert chromatic_number_sat(graph) == expected

    def test_edgeless_graph(self):
        from repro.graphs import Graph

        assert chromatic_number_sat(Graph(nodes=[1, 2, 3])) == 1
        assert chromatic_number_sat(Graph()) == 0

    def test_max_colors_exceeded(self):
        with pytest.raises(SATError):
            chromatic_number_sat(complete_graph(5), max_colors=3)
