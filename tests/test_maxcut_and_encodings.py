"""Tests for max-cut utilities, the one-hot coloring encoding (Eq. 5) and QUBO."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.graphs import (
    Bipartition,
    Coloring,
    complete_bipartite_graph,
    cycle_graph,
    kings_graph,
    kings_graph_reference_coloring,
)
from repro.ising import (
    MaxCutProblem,
    OneHotColoringEncoding,
    QUBO,
    cut_from_ising_energy,
    greedy_local_improvement,
    ising_to_qubo,
    kings_graph_reference_cut,
    qubo_from_dict,
    random_partition,
    spin_count_ising,
    spin_count_potts,
    IsingProblem,
)


class TestMaxCut:
    def test_cut_value_bipartite_optimum(self):
        graph = complete_bipartite_graph(3, 3)
        problem = MaxCutProblem(graph)
        partition = Bipartition.from_sets([("L", i) for i in range(3)], [("R", i) for i in range(3)])
        assert problem.cut_value(partition) == 9
        assert problem.accuracy(partition) == 1.0

    def test_cut_value_from_spins(self):
        graph = cycle_graph(4)
        problem = MaxCutProblem(graph)
        spins = {0: 1, 1: -1, 2: 1, 3: -1}
        assert problem.cut_value_from_spins(spins) == 4

    def test_weighted_cut(self):
        graph = cycle_graph(3)
        problem = MaxCutProblem(graph, weights={(0, 1): 5.0})
        partition = Bipartition.from_sets([0], [1, 2])
        assert problem.cut_value(partition) == pytest.approx(5.0 + 1.0)

    def test_weight_for_non_edge(self):
        with pytest.raises(ReproError):
            MaxCutProblem(cycle_graph(4)).weight(0, 2)

    def test_to_ising_energy_relation(self):
        """H(s) = W - 2*cut(s) for the antiferromagnetic mapping with unit strength."""
        graph = kings_graph(3, 3)
        problem = MaxCutProblem(graph)
        ising = problem.to_ising(strength=1.0)
        partition = random_partition(graph, seed=3)
        spins = {node: 1 if partition.side_of(node) == 0 else -1 for node in graph.nodes}
        energy = ising.energy(spins)
        cut = problem.cut_value(partition)
        assert energy == pytest.approx(problem.total_weight() - 2 * cut)
        assert cut_from_ising_energy(problem, energy) == pytest.approx(cut)

    def test_accuracy_reports_raw_ratio_beyond_reference(self):
        # A cut that beats a heuristic reference must be visible as > 1.0;
        # clipping happens only at the presentation layer.
        graph = cycle_graph(4)
        problem = MaxCutProblem(graph)
        partition = Bipartition.from_sets([0, 2], [1, 3])
        assert problem.accuracy(partition, reference_cut=2) == 2.0
        assert problem.accuracy(partition) == 1.0  # total-weight reference

    def test_presentation_layer_clips_with_warning(self):
        from repro.analysis.reporting import format_accuracy, present_accuracy

        with pytest.warns(UserWarning, match="better-than-reference"):
            assert present_accuracy(2.0) == 1.0
        with pytest.warns(UserWarning):
            assert format_accuracy(1.25) == "1.000"
        assert present_accuracy(0.75) == 0.75
        assert present_accuracy(-0.5) == 0.0

    def test_accuracy_range_text_clips_raw_ratios(self):
        from repro.analysis.comparison import accuracy_range_text

        with pytest.warns(UserWarning, match="better-than-reference"):
            assert accuracy_range_text(0.9, 1.1) == "90%-100%"
        assert accuracy_range_text(0.5, 1.0) == "50%-100%"

    def test_local_improvement_never_decreases_cut(self):
        graph = kings_graph(4, 4)
        problem = MaxCutProblem(graph)
        start = random_partition(graph, seed=11)
        improved = greedy_local_improvement(problem, start)
        assert problem.cut_value(improved) >= problem.cut_value(start)

    def test_local_improvement_validation(self):
        with pytest.raises(ReproError):
            greedy_local_improvement(MaxCutProblem(cycle_graph(3)), random_partition(cycle_graph(3)), max_passes=0)

    @pytest.mark.parametrize("rows,cols", [(4, 4), (7, 7), (5, 8)])
    def test_kings_reference_cut_counts_cross_row_edges(self, rows, cols):
        """The reference cut keeps horizontal edges and cuts vertical + diagonal ones."""
        expected = cols * (rows - 1) + 2 * (rows - 1) * (cols - 1)
        assert kings_graph_reference_cut(rows, cols) == expected

    def test_kings_reference_cut_validation(self):
        with pytest.raises(ReproError):
            kings_graph_reference_cut(0, 4)


class TestOneHotEncoding:
    def test_variable_count(self):
        graph = kings_graph(3, 3)
        encoding = OneHotColoringEncoding(graph, num_colors=4)
        assert encoding.num_variables == 36
        assert spin_count_ising(graph, 4) == 36
        assert spin_count_potts(graph) == 9

    def test_variable_index_round_trip(self):
        graph = kings_graph(2, 2)
        encoding = OneHotColoringEncoding(graph, num_colors=4)
        for node in graph.nodes:
            for color in range(4):
                index = encoding.variable_index(node, color)
                assert encoding.variable_of(index) == (node, color)

    def test_proper_coloring_has_zero_energy(self):
        graph = kings_graph(3, 3)
        encoding = OneHotColoringEncoding(graph, num_colors=4)
        coloring = kings_graph_reference_coloring(3, 3)
        assert encoding.energy(encoding.encode(coloring)) == 0.0

    def test_monochromatic_edge_penalized(self):
        graph = cycle_graph(2)
        encoding = OneHotColoringEncoding(graph, num_colors=2, penalty=3.0)
        bits = encoding.encode(Coloring(assignment={0: 0, 1: 0}, num_colors=2))
        assert encoding.energy(bits) == pytest.approx(3.0)

    def test_one_hot_violation_penalized(self):
        graph = cycle_graph(2)
        encoding = OneHotColoringEncoding(graph, num_colors=2)
        bits = np.zeros(encoding.num_variables, dtype=int)  # nothing assigned
        assert encoding.energy(bits) == pytest.approx(2.0)

    def test_decode_strict_raises_on_violation(self):
        graph = cycle_graph(2)
        encoding = OneHotColoringEncoding(graph, num_colors=2)
        bits = np.ones(encoding.num_variables, dtype=int)
        with pytest.raises(ReproError):
            encoding.decode(bits, strict=True)
        lenient = encoding.decode(bits, strict=False)
        assert lenient.covers(graph)

    def test_encode_decode_round_trip(self):
        graph = kings_graph(3, 3)
        encoding = OneHotColoringEncoding(graph, num_colors=4)
        coloring = kings_graph_reference_coloring(3, 3)
        assert encoding.decode(encoding.encode(coloring)).assignment == coloring.assignment

    def test_qubo_matrix_energy_matches_direct(self):
        graph = cycle_graph(3)
        encoding = OneHotColoringEncoding(graph, num_colors=3, penalty=2.0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            bits = rng.integers(0, 2, encoding.num_variables)
            direct = encoding.energy(bits)
            via_qubo = float(bits @ encoding.qubo_matrix() @ bits) + encoding.qubo_constant()
            assert via_qubo == pytest.approx(direct)

    def test_validation(self):
        with pytest.raises(ReproError):
            OneHotColoringEncoding(cycle_graph(3), num_colors=1)
        with pytest.raises(ReproError):
            OneHotColoringEncoding(cycle_graph(3), num_colors=3, penalty=0.0)


class TestQUBO:
    def test_symmetry_required(self):
        with pytest.raises(ReproError):
            QUBO(matrix=np.array([[0.0, 1.0], [0.0, 0.0]]))

    def test_energy_evaluation(self):
        qubo = qubo_from_dict(2, {(0, 0): 1.0, (0, 1): 2.0}, offset=0.5)
        assert qubo.energy(np.array([1, 1])) == pytest.approx(1.0 + 2.0 + 0.5)
        assert qubo.energy(np.array([1, 0])) == pytest.approx(1.5)

    def test_energy_validation(self):
        qubo = qubo_from_dict(2, {(0, 1): 1.0})
        with pytest.raises(ReproError):
            qubo.energy(np.array([1, 2]))

    def test_ising_round_trip_energies_match(self):
        graph = kings_graph(3, 3)
        ising = IsingProblem.antiferromagnetic(graph)
        qubo = ising_to_qubo(ising)
        rng = np.random.default_rng(1)
        for _ in range(10):
            spins = rng.choice([-1, 1], size=graph.num_nodes)
            bits = ((spins + 1) // 2).astype(int)
            spins_dict = {node: int(s) for node, s in zip(graph.nodes, spins)}
            assert qubo.energy(bits) == pytest.approx(ising.energy(spins_dict), abs=1e-9)

    def test_qubo_to_ising_terms_consistent(self):
        qubo = qubo_from_dict(3, {(0, 1): 1.0, (1, 2): -2.0, (0, 0): 0.5}, offset=1.0)
        rng = np.random.default_rng(2)
        for _ in range(10):
            spins = rng.choice([-1, 1], size=3)
            bits = ((spins + 1) // 2).astype(int)
            assert qubo.ising_energy(spins.astype(float)) == pytest.approx(qubo.energy(bits), abs=1e-9)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_qubo_from_dict_term_bounds(self, seed):
        rng = np.random.default_rng(seed)
        with pytest.raises(ReproError):
            qubo_from_dict(2, {(0, 3): float(rng.normal())})
