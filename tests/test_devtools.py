"""Tests of the repro-lint static analyzer (src/repro/devtools/).

Two layers:

* a fixture corpus of minimal good/bad snippets per rule — every bad
  snippet must produce exactly its expected finding, every good snippet
  none — pinning each checker's detection power and its false-positive
  boundary;
* schema-manifest round-trips on a copied mini-repo proving the coupling
  discipline end to end: a hashed-field addition without a version bump
  fails lint and blocks ``regen-manifest``; with the bump, regeneration
  succeeds and lint returns to zero.
"""

from __future__ import annotations

import ast
import json
import shutil
from pathlib import Path

import pytest

from repro.devtools import schema
from repro.devtools.analyzer import (
    Finding,
    LintConfig,
    ModuleSource,
    render_json,
    render_text,
    run_lint,
)
from repro.devtools.checkers.atomicity import AtomicityChecker
from repro.devtools.checkers.determinism import DeterminismChecker
from repro.devtools.checkers.hotpath import HotPathChecker
from repro.devtools.checkers.schema_coupling import SchemaCouplingChecker

REPO_ROOT = Path(__file__).resolve().parent.parent


def check(checker, source: str, relpath: str = "pkg/mod.py"):
    """Run one checker's module pass over a source snippet."""
    module = ModuleSource(
        path=Path(relpath),
        relpath=relpath,
        text=source,
        tree=ast.parse(source),
        lines=source.splitlines(),
    )
    config = LintConfig(root=REPO_ROOT)
    return checker.check_module(module, config)


def rules_of(findings):
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# Determinism checker.


class TestDeterminismChecker:
    def test_wallclock_read_flagged(self):
        findings = check(
            DeterminismChecker(),
            "import time\n\ndef f():\n    return time.time()\n",
        )
        assert rules_of(findings) == ["determinism-wallclock"]
        assert findings[0].line == 4

    def test_datetime_now_flagged(self):
        findings = check(
            DeterminismChecker(),
            "import datetime\n\ndef f():\n    return datetime.datetime.now()\n",
        )
        assert rules_of(findings) == ["determinism-wallclock"]

    def test_numpy_random_flagged(self):
        findings = check(
            DeterminismChecker(),
            "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed)\n",
        )
        assert rules_of(findings) == ["determinism-rng"]
        assert "repro.rng" in findings[0].hint

    def test_stdlib_random_flagged(self):
        findings = check(
            DeterminismChecker(),
            "import random\n\ndef f():\n    return random.randint(0, 9)\n",
        )
        assert rules_of(findings) == ["determinism-rng"]

    def test_os_urandom_flagged(self):
        findings = check(
            DeterminismChecker(),
            "import os\n\ndef f():\n    return os.urandom(8)\n",
        )
        assert rules_of(findings) == ["determinism-rng"]

    def test_set_iteration_flagged(self):
        findings = check(
            DeterminismChecker(),
            "def f(xs):\n    for x in set(xs):\n        print(x)\n",
        )
        assert rules_of(findings) == ["determinism-unsorted-iter"]
        assert findings[0].line == 2

    def test_glob_iteration_flagged(self):
        findings = check(
            DeterminismChecker(),
            "from pathlib import Path\n\ndef f(root):\n"
            "    return [p for p in Path(root).glob('*.json')]\n",
        )
        assert rules_of(findings) == ["determinism-unsorted-iter"]

    def test_sorted_wrappers_pass(self):
        findings = check(
            DeterminismChecker(),
            "def f(xs, root):\n"
            "    for x in sorted(set(xs)):\n"
            "        print(x)\n"
            "    for p in sorted(root.glob('*.json')):\n"
            "        print(p)\n",
        )
        assert findings == []

    def test_seeded_rng_passes(self):
        findings = check(
            DeterminismChecker(),
            "from repro.rng import make_rng\n\ndef f(seed):\n"
            "    rng = make_rng(seed)\n    return rng.integers(1, 10)\n",
        )
        assert findings == []

    def test_dict_iteration_passes(self):
        # Dict iteration is insertion-ordered, hence deterministic.
        findings = check(
            DeterminismChecker(),
            "def f(d):\n    for key in d:\n        print(key, d[key])\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Atomicity checker.


class TestAtomicityChecker:
    def test_truncating_open_flagged(self):
        findings = check(
            AtomicityChecker(),
            "def publish(path, data):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(data)\n",
        )
        assert rules_of(findings) == ["atomic-write"]
        assert "atomic" in findings[0].hint

    def test_write_text_flagged(self):
        findings = check(
            AtomicityChecker(),
            "def publish(path, data):\n    path.write_text(data)\n",
        )
        assert rules_of(findings) == ["atomic-write"]

    def test_handrolled_tempfile_flagged(self):
        findings = check(
            AtomicityChecker(),
            "import tempfile\n\ndef publish(d):\n"
            "    return tempfile.NamedTemporaryFile(dir=d, delete=False)\n",
        )
        assert rules_of(findings) == ["atomic-write"]

    def test_append_and_read_modes_pass(self):
        findings = check(
            AtomicityChecker(),
            "def journal(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"
            "    with open(path, 'rb+') as handle:\n"
            "        handle.truncate(0)\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n",
        )
        assert findings == []

    def test_blessed_helper_passes(self):
        findings = check(
            AtomicityChecker(),
            "from repro.runtime.atomic import write_atomic_json\n\n"
            "def publish(path, payload):\n"
            "    write_atomic_json(path, payload, indent=2)\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Hot-path checker.


class TestHotPathChecker:
    def test_allocation_in_loop_flagged(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\ndef step(n):\n"
            "    for _ in range(n):\n"
            "        buf = np.zeros(4)\n",
        )
        assert rules_of(findings) == ["hotpath-alloc"]
        assert findings[0].line == 5

    def test_outless_ufunc_in_loop_flagged(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\ndef step(theta, n):\n"
            "    for _ in range(n):\n"
            "        theta = np.sin(theta)\n",
        )
        assert rules_of(findings) == ["hotpath-alloc"]
        assert "out=" in findings[0].message

    def test_astype_in_loop_flagged(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\ndef step(theta, n):\n"
            "    for _ in range(n):\n"
            "        low = theta.astype(np.float32)\n",
        )
        assert rules_of(findings) == ["hotpath-alloc"]

    def test_prealloc_then_inplace_passes(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\ndef step(theta, n):\n"
            "    buf = np.empty_like(theta)\n"
            "    for _ in range(n):\n"
            "        np.sin(theta, out=buf)\n"
            "        np.add(theta, buf, out=theta)\n",
        )
        assert findings == []

    def test_hot_setup_annotation_exempts(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\n"
            "def build_buffers(shapes):  # repro-lint: hot-setup\n"
            "    return [np.zeros(s) for s in shapes]\n",
        )
        assert findings == []

    def test_init_is_setup(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\nclass Recorder:\n"
            "    def __init__(self, slots):\n"
            "        self.frames = [np.empty(s) for s in slots]\n",
        )
        assert findings == []

    def test_missing_dtype_in_f32_context_flagged(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\ndef final(phases, dtype=np.float32):\n"
            "    return np.array(phases)\n",
        )
        assert rules_of(findings) == ["hotpath-dtype"]
        assert "float64" in findings[0].message

    def test_throughput_class_requires_dtype(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\nclass ThroughputModel:\n"
            "    def state(self, n):\n"
            "        return np.zeros(n)\n",
        )
        assert rules_of(findings) == ["hotpath-dtype"]

    def test_explicit_dtype_passes(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\ndef final(phases, dtype=np.float32):\n"
            "    return np.array(phases, dtype=dtype)\n",
        )
        assert findings == []

    def test_plain_context_needs_no_dtype(self):
        findings = check(
            HotPathChecker(),
            "import numpy as np\n\ndef reference(phases):\n"
            "    return np.array(phases)\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppressions, config scoping, and the walker (via run_lint).


def _mini_repo(tmp_path: Path, source: str) -> LintConfig:
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(source, encoding="utf-8")
    return LintConfig(
        root=tmp_path,
        paths=["pkg"],
        exclude=[],
        options={"determinism": {"paths": ["pkg"]}},
    )


class TestSuppressions:
    def test_reasoned_suppression_silences(self, tmp_path):
        config = _mini_repo(
            tmp_path,
            "import time\n\ndef f():\n"
            "    return time.time()  # repro-lint: disable=determinism-wallclock -- display only\n",
        )
        findings = run_lint(tmp_path, rules=["determinism"], config=config)
        assert findings == []

    def test_comment_block_above_suppresses(self, tmp_path):
        config = _mini_repo(
            tmp_path,
            "import time\n\ndef f():\n"
            "    # repro-lint: disable=determinism-wallclock -- event timestamps\n"
            "    # are observability metadata, never hashed.\n"
            "    return time.time()\n",
        )
        findings = run_lint(tmp_path, rules=["determinism"], config=config)
        assert findings == []

    def test_reasonless_suppression_is_inert_and_flagged(self, tmp_path):
        config = _mini_repo(
            tmp_path,
            "import time\n\ndef f():\n"
            "    return time.time()  # repro-lint: disable=determinism-wallclock\n",
        )
        findings = run_lint(tmp_path, rules=["determinism"], config=config)
        assert sorted(rules_of(findings)) == [
            "determinism-wallclock",
            "lint-suppression",
        ]

    def test_unrelated_rule_does_not_suppress(self, tmp_path):
        config = _mini_repo(
            tmp_path,
            "import time\n\ndef f():\n"
            "    return time.time()  # repro-lint: disable=atomic-write -- wrong rule\n",
        )
        findings = run_lint(tmp_path, rules=["determinism"], config=config)
        assert rules_of(findings) == ["determinism-wallclock"]

    def test_baseline_entry_drops_finding(self, tmp_path):
        config = _mini_repo(tmp_path, "import time\n\ndef f():\n    return time.time()\n")
        config.baseline = ["determinism-wallclock:pkg/mod.py"]
        findings = run_lint(tmp_path, rules=["determinism"], config=config)
        assert findings == []

    def test_out_of_scope_module_is_not_checked(self, tmp_path):
        config = _mini_repo(tmp_path, "import time\n\ndef f():\n    return time.time()\n")
        config.options = {"determinism": {"paths": ["elsewhere"]}}
        findings = run_lint(tmp_path, rules=["determinism"], config=config)
        assert findings == []

    def test_unknown_rule_filter_raises(self, tmp_path):
        config = _mini_repo(tmp_path, "x = 1\n")
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint(tmp_path, rules=["nosuch"], config=config)


# ----------------------------------------------------------------------
# Reporters.


class TestReporters:
    FINDING = Finding(
        rule="determinism-rng",
        path="pkg/mod.py",
        line=7,
        message="ambient RNG",
        hint="use repro.rng",
    )

    def test_text_report(self):
        text = render_text([self.FINDING])
        assert "pkg/mod.py:7: [determinism-rng] ambient RNG" in text
        assert "1 finding(s)" in text
        assert render_text([]) == "repro-lint: 0 findings"

    def test_json_report_round_trips(self):
        payload = json.loads(render_json([self.FINDING]))
        assert payload["schema"] == "repro-lint/findings"
        assert payload["count"] == 1
        assert payload["findings"][0] == {
            "rule": "determinism-rng",
            "path": "pkg/mod.py",
            "line": 7,
            "message": "ambient RNG",
            "hint": "use repro.rng",
        }


# ----------------------------------------------------------------------
# Schema-hash coupling.

#: The dataclass field line the simulated schema change inserts before.
_ANCHOR = "replica_start: int = 0"


def _copy_schema_sources(tmp_path: Path) -> Path:
    """Copy the fingerprinted sources (+ manifest) into a mini repo root."""
    for relpath in list(schema.SOURCES.values()) + [schema.MANIFEST_PATH]:
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO_ROOT / relpath, target)
    return tmp_path


def _add_hashed_field(root: Path, bump_version: bool) -> None:
    jobs_path = root / schema.SOURCES["jobs"]
    source = jobs_path.read_text(encoding="utf-8")
    assert source.count(_ANCHOR) == 1
    source = source.replace(_ANCHOR, f"new_knob: int = 7\n    {_ANCHOR}")
    if bump_version:
        source = source.replace("JOB_SCHEMA_VERSION = 3", "JOB_SCHEMA_VERSION = 4")
    jobs_path.write_text(source, encoding="utf-8")


class TestSchemaManifest:
    def test_checked_in_manifest_matches_head(self):
        assert schema.load_manifest(REPO_ROOT) == schema.compute_manifest(REPO_ROOT)

    def test_manifest_contains_hashed_surfaces(self):
        manifest = schema.compute_manifest(REPO_ROOT)
        solve = manifest["surfaces"]["solve_job"]
        assert "total_iterations" in solve["fields"]
        assert "job_schema" in solve["describe_keys"]
        assert "precision" in manifest["surfaces"]["msropm_config"]["fields"]
        assert "KingsGraphSpec" in manifest["surfaces"]["graph_specs"]["classes"]
        assert manifest["versions"]["JOB_SCHEMA_VERSION"] == 3

    def test_field_addition_without_bump_fails_lint(self, tmp_path):
        root = _copy_schema_sources(tmp_path)
        _add_hashed_field(root, bump_version=False)
        findings = SchemaCouplingChecker().check_project(root, LintConfig(root=root))
        assert rules_of(findings) == ["schema-manifest"]
        assert "without bumping JOB_SCHEMA_VERSION" in findings[0].message

    def test_field_addition_with_bump_needs_regen_then_passes(self, tmp_path):
        root = _copy_schema_sources(tmp_path)
        _add_hashed_field(root, bump_version=True)
        checker = SchemaCouplingChecker()
        # Bump done but manifest stale: still a finding, pointing at regen.
        stale = checker.check_project(root, LintConfig(root=root))
        assert rules_of(stale) == ["schema-manifest"]
        assert "regenerated" in stale[0].message
        # regen-manifest accepts the bumped change and restores zero findings.
        schema.regenerate(root)
        assert checker.check_project(root, LintConfig(root=root)) == []

    def test_regenerate_refuses_unbumped_change(self, tmp_path):
        root = _copy_schema_sources(tmp_path)
        _add_hashed_field(root, bump_version=False)
        with pytest.raises(schema.SchemaExtractionError, match="bump JOB_SCHEMA_VERSION"):
            schema.regenerate(root)
        # --force overrides for provably non-semantic refactors.
        schema.regenerate(root, force=True)
        assert SchemaCouplingChecker().check_project(root, LintConfig(root=root)) == []

    def test_overrides_simulate_changes_without_touching_disk(self):
        jobs_rel = schema.SOURCES["jobs"]
        source = (REPO_ROOT / jobs_rel).read_text(encoding="utf-8")
        changed = source.replace(_ANCHOR, f"new_knob: int = 7\n    {_ANCHOR}")
        baseline = schema.compute_manifest(REPO_ROOT)
        simulated = schema.compute_manifest(REPO_ROOT, overrides={jobs_rel: changed})
        assert "new_knob" in simulated["surfaces"]["solve_job"]["fields"]
        assert schema.unbumped_changes(baseline, simulated) == [
            ("solve_job", "JOB_SCHEMA_VERSION")
        ]

    def test_missing_manifest_is_a_finding(self, tmp_path):
        root = _copy_schema_sources(tmp_path)
        (root / schema.MANIFEST_PATH).unlink()
        findings = SchemaCouplingChecker().check_project(root, LintConfig(root=root))
        assert rules_of(findings) == ["schema-manifest"]
        assert "missing" in findings[0].message


# ----------------------------------------------------------------------
# The repo itself and the CLI entry points.


class TestRepoIsClean:
    def test_repo_lints_to_zero_findings(self):
        assert run_lint(REPO_ROOT) == []

    def test_cli_dev_lint(self, capsys):
        from repro.cli import main

        assert main(["dev", "lint", "--root", str(REPO_ROOT)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_cli_dev_lint_json(self, capsys):
        from repro.cli import main

        assert main(["dev", "lint", "--format", "json", "--root", str(REPO_ROOT)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {
            "schema": "repro-lint/findings",
            "report_version": 1,
            "count": 0,
            "findings": [],
        }

    def test_cli_regen_check(self, capsys):
        from repro.cli import main

        assert main(["dev", "regen-manifest", "--check", "--root", str(REPO_ROOT)]) == 0
        assert "current" in capsys.readouterr().out

    def test_module_entry_point(self, capsys):
        from repro.devtools.__main__ import main as devtools_main

        assert devtools_main(["--root", str(REPO_ROOT), "lint"]) == 0
