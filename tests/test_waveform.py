"""Tests for the voltage-waveform reconstruction used by the Fig. 3 reproduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.dynamics import (
    Trajectory,
    WaveformSet,
    phase_to_voltage,
    reconstruct_waveforms,
    square_wave,
)
from repro.units import ghz


class TestPhaseToVoltage:
    def test_output_range(self):
        times = np.linspace(0, 5e-9, 400)
        for shape in ("sine", "square", "harmonic"):
            voltages = phase_to_voltage(times, np.zeros_like(times), shape=shape)
            assert voltages.min() >= 0.0 - 1e-12
            assert voltages.max() <= 1.0 + 1e-12

    def test_phase_shift_moves_waveform(self):
        times = np.linspace(0, 2e-9, 1000)
        base = phase_to_voltage(times, np.zeros_like(times), shape="sine")
        shifted = phase_to_voltage(times, np.full_like(times, np.pi), shape="sine")
        # A 180-degree phase shift inverts the waveform around mid-supply.
        assert np.allclose(base + shifted, 1.0, atol=1e-9)

    def test_multi_oscillator_shape(self):
        times = np.linspace(0, 1e-9, 100)
        phases = np.zeros((100, 3))
        voltages = phase_to_voltage(times, phases)
        assert voltages.shape == (100, 3)

    def test_supply_scaling(self):
        times = np.linspace(0, 1e-9, 50)
        voltages = phase_to_voltage(times, np.zeros_like(times), supply_voltage=1.2, shape="square")
        assert voltages.max() == pytest.approx(1.2)

    def test_validation(self):
        times = np.linspace(0, 1e-9, 10)
        with pytest.raises(SimulationError):
            phase_to_voltage(times, np.zeros(5))
        with pytest.raises(SimulationError):
            phase_to_voltage(times, np.zeros(10), shape="sawtooth")
        with pytest.raises(SimulationError):
            phase_to_voltage(times, np.zeros(10), frequency=-1.0)


class TestSquareWave:
    def test_levels(self):
        times = np.linspace(0, 2e-9, 500)
        wave = square_wave(times, 1e9)
        assert set(np.round(np.unique(wave), 6)) <= {0.0, 0.5, 1.0}

    def test_frequency_validation(self):
        with pytest.raises(SimulationError):
            square_wave(np.zeros(3), 0.0)


class TestWaveformReconstruction:
    def _trajectory(self, num_oscillators=3, duration=4e-9, points=100):
        times = np.linspace(0, duration, points)
        phases = np.tile(np.linspace(0, np.pi, points)[:, None], (1, num_oscillators))
        return Trajectory(times=times, phases=phases)

    def test_reconstruction_shape(self):
        waveforms = reconstruct_waveforms(self._trajectory(), [0, 2], frequency=ghz(1.3))
        assert waveforms.voltages.shape[1] == 2
        assert waveforms.times[0] == 0.0

    def test_voltage_lookup_by_oscillator(self):
        waveforms = reconstruct_waveforms(self._trajectory(), [0, 2], frequency=ghz(1.3))
        assert waveforms.voltage_of(2).shape == waveforms.times.shape
        with pytest.raises(SimulationError):
            waveforms.voltage_of(1)

    def test_ascii_rendering(self):
        waveforms = reconstruct_waveforms(self._trajectory(), [0], frequency=ghz(1.3))
        art = waveforms.as_ascii(0, width=40, height=5)
        lines = art.splitlines()
        assert len(lines) == 5
        assert all(len(line) == 40 for line in lines)

    def test_requires_oscillators(self):
        with pytest.raises(SimulationError):
            reconstruct_waveforms(self._trajectory(), [])

    def test_samples_per_period_validation(self):
        with pytest.raises(SimulationError):
            reconstruct_waveforms(self._trajectory(), [0], samples_per_period=2)

    def test_waveform_set_validation(self):
        with pytest.raises(SimulationError):
            WaveformSet(times=np.zeros(5), voltages=np.zeros((4, 1)), oscillator_indices=[0], frequency=1e9)
        with pytest.raises(SimulationError):
            WaveformSet(times=np.zeros(5), voltages=np.zeros((5, 2)), oscillator_indices=[0], frequency=1e9)
