"""Tests for the Ising and Potts model layers (Eqs. 1 and 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.graphs import Coloring, cycle_graph, kings_graph, kings_graph_reference_coloring
from repro.ising import (
    IsingProblem,
    PottsProblem,
    labels_to_spins,
    potts_accuracy,
    spins_to_labels,
)


class TestIsingProblem:
    def test_antiferromagnetic_energy_two_spins(self):
        graph = cycle_graph(2)
        problem = IsingProblem.antiferromagnetic(graph, strength=1.0)
        aligned = {0: 1, 1: 1}
        opposed = {0: 1, 1: -1}
        # Eq. (1) has no leading minus, so the anti-aligning coupling is J = +1:
        # aligned neighbours are penalized, opposed neighbours are rewarded.
        assert problem.energy(aligned) == pytest.approx(1.0)
        assert problem.energy(opposed) == pytest.approx(-1.0)

    def test_energy_convention_matches_eq1(self):
        """H = sum J_ij s_i s_j with anti-aligning J is minimized by anti-aligned spins."""
        graph = cycle_graph(4)
        problem = IsingProblem.antiferromagnetic(graph)
        alternating = {0: 1, 1: -1, 2: 1, 3: -1}
        uniform = {0: 1, 1: 1, 2: 1, 3: 1}
        assert problem.energy(alternating) < problem.energy(uniform)

    def test_energy_from_array_matches_dict(self):
        graph = kings_graph(3, 3)
        problem = IsingProblem.antiferromagnetic(graph)
        spins_dict = problem.random_spins(seed=1)
        spins_array = np.array([spins_dict[node] for node in graph.nodes])
        assert problem.energy(spins_dict) == pytest.approx(problem.energy_from_array(spins_array))

    def test_energy_from_array_validation(self):
        problem = IsingProblem.antiferromagnetic(cycle_graph(3))
        with pytest.raises(ReproError):
            problem.energy_from_array(np.array([1.0, 0.5, -1.0]))
        with pytest.raises(ReproError):
            problem.energy_from_array(np.array([1.0, -1.0]))

    def test_invalid_spin_value(self):
        problem = IsingProblem.antiferromagnetic(cycle_graph(2))
        with pytest.raises(ReproError):
            problem.energy({0: 1, 1: 0})

    def test_coupling_lookup_symmetric(self):
        graph = cycle_graph(3)
        problem = IsingProblem(graph=graph, couplings={(0, 1): 2.0}, default_coupling=1.0)
        assert problem.coupling(1, 0) == 2.0
        assert problem.coupling(1, 2) == 1.0

    def test_coupling_for_non_edge(self):
        problem = IsingProblem.antiferromagnetic(cycle_graph(4))
        with pytest.raises(ReproError):
            problem.coupling(0, 2)

    def test_coupling_on_nonexistent_edge_rejected_at_construction(self):
        with pytest.raises(ReproError):
            IsingProblem(graph=cycle_graph(4), couplings={(0, 2): -1.0})

    def test_coupling_matrix_symmetric(self):
        problem = IsingProblem.antiferromagnetic(kings_graph(3, 3))
        matrix = problem.coupling_matrix(dense=True)
        assert np.allclose(matrix, matrix.T)
        assert matrix.max() == 1.0

    def test_ground_state_bound(self):
        problem = IsingProblem.antiferromagnetic(cycle_graph(5), strength=2.0)
        assert problem.ground_state_energy_bound() == pytest.approx(-10.0)

    def test_ferromagnetic_prefers_alignment(self):
        problem = IsingProblem.ferromagnetic(cycle_graph(4))
        uniform = {i: 1 for i in range(4)}
        alternating = {0: 1, 1: -1, 2: 1, 3: -1}
        assert problem.energy(uniform) < problem.energy(alternating)

    def test_strength_validation(self):
        with pytest.raises(ReproError):
            IsingProblem.antiferromagnetic(cycle_graph(3), strength=0.0)

    def test_label_spin_conversions(self):
        spins = {1: 1, 2: -1}
        labels = spins_to_labels(spins)
        assert labels == {1: 0, 2: 1}
        assert labels_to_spins(labels) == spins

    def test_label_spin_validation(self):
        with pytest.raises(ReproError):
            spins_to_labels({1: 2})
        with pytest.raises(ReproError):
            labels_to_spins({1: 3})


class TestPottsProblem:
    def test_energy_counts_monochromatic_edges(self):
        graph = cycle_graph(3)
        problem = PottsProblem.coloring_problem(graph, num_colors=3)
        all_same = {0: 0, 1: 0, 2: 0}
        all_diff = {0: 0, 1: 1, 2: 2}
        assert problem.energy(all_same) == pytest.approx(3.0)
        assert problem.energy(all_diff) == pytest.approx(0.0)

    def test_ground_state_energy_is_zero_for_coloring(self):
        problem = PottsProblem.coloring_problem(kings_graph(4, 4), num_colors=4)
        assert problem.ground_state_energy() == 0.0

    def test_ground_state_unknown_for_negative_couplings(self):
        problem = PottsProblem(graph=cycle_graph(3), num_states=3, default_coupling=-1.0)
        with pytest.raises(ReproError):
            problem.ground_state_energy()

    def test_reference_coloring_is_ground_state(self):
        graph = kings_graph(5, 5)
        problem = PottsProblem.coloring_problem(graph, num_colors=4)
        coloring = kings_graph_reference_coloring(5, 5)
        assert problem.energy_of_coloring(coloring) == 0.0

    def test_energy_of_coloring_palette_check(self):
        problem = PottsProblem.coloring_problem(cycle_graph(3), num_colors=2)
        coloring = Coloring(assignment={0: 0, 1: 1, 2: 2}, num_colors=3)
        with pytest.raises(ReproError):
            problem.energy_of_coloring(coloring)

    def test_spin_validation(self):
        problem = PottsProblem.coloring_problem(cycle_graph(3), num_colors=3)
        with pytest.raises(ReproError):
            problem.energy({0: 0, 1: 1, 2: 5})
        with pytest.raises(ReproError):
            problem.energy({0: 0, 1: 1})

    def test_num_states_validation(self):
        with pytest.raises(ReproError):
            PottsProblem(graph=cycle_graph(3), num_states=1)

    def test_random_spins_in_range(self):
        problem = PottsProblem.coloring_problem(kings_graph(4, 4), num_colors=4)
        spins = problem.random_spins(seed=7)
        assert all(0 <= value < 4 for value in spins.values())

    def test_to_coloring(self):
        problem = PottsProblem.coloring_problem(cycle_graph(4), num_colors=2)
        coloring = problem.to_coloring({0: 0, 1: 1, 2: 0, 3: 1})
        assert coloring.is_proper(cycle_graph(4))

    def test_potts_accuracy_matches_paper_metric(self):
        graph = kings_graph(4, 4)
        problem = PottsProblem.coloring_problem(graph, num_colors=4)
        reference = kings_graph_reference_coloring(4, 4)
        assert potts_accuracy(problem, reference.assignment) == 1.0

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_accuracy_equals_one_minus_normalized_energy(self, seed):
        """The paper's accuracy metric is the normalized Hamiltonian (Sec. 4)."""
        graph = kings_graph(4, 4)
        problem = PottsProblem.coloring_problem(graph, num_colors=4)
        spins = problem.random_spins(seed=seed)
        accuracy = potts_accuracy(problem, spins)
        energy = problem.energy(spins)
        assert accuracy == pytest.approx(1.0 - energy / graph.num_edges)
