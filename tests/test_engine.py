"""Tests for the replica execution engines (sequential vs batched).

The batched engine's contract is strict: for the same seeds it must reproduce
the sequential engine's colorings, accuracies, stage records and even the
final oscillator phases *bit-identically* on the sparse coupling backend, and
produce identical discrete read-outs on the dense backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.core import (
    MSROPM,
    BatchedEngine,
    MSROPMConfig,
    SequentialEngine,
    get_engine,
    resolve_coupling_backend,
)
from repro.core.engine import DENSE_DENSITY_THRESHOLD, DENSE_MIN_NODES
from repro.graphs import Graph, kings_graph
from repro.rng import ReplicaRNG, make_rng


def complete_graph(num_nodes: int) -> Graph:
    """A complete graph on integer nodes (density 1.0)."""
    return Graph(edges=[(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)])


def assert_equivalent_solves(sequential, batched, exact_phases: bool = True):
    """Assert two solve results are replica-for-replica identical."""
    assert sequential.num_iterations == batched.num_iterations
    assert np.array_equal(sequential.accuracies, batched.accuracies)
    for seq_item, bat_item in zip(sequential.iterations, batched.iterations):
        assert seq_item.iteration_index == bat_item.iteration_index
        assert seq_item.seed == bat_item.seed
        assert seq_item.coloring.assignment == bat_item.coloring.assignment
        assert seq_item.run_time == bat_item.run_time
        assert len(seq_item.stage_results) == len(bat_item.stage_results)
        for seq_stage, bat_stage in zip(seq_item.stage_results, bat_item.stage_results):
            assert seq_stage.stage_index == bat_stage.stage_index
            assert seq_stage.cut_value == bat_stage.cut_value
            assert seq_stage.reference_cut == bat_stage.reference_cut
            assert seq_stage.accuracy == bat_stage.accuracy
            assert seq_stage.partition.side_a == bat_stage.partition.side_a
        if exact_phases:
            assert np.array_equal(
                seq_item.stage_results[-1].final_phases,
                bat_item.stage_results[-1].final_phases,
            )


class TestEngineSelection:
    def test_default_config_uses_batched(self):
        assert MSROPMConfig().engine == "batched"

    def test_get_engine_resolution(self):
        assert isinstance(get_engine("sequential"), SequentialEngine)
        assert isinstance(get_engine("batched"), BatchedEngine)
        assert isinstance(get_engine(None), BatchedEngine)
        engine = BatchedEngine(coupling_backend="sparse")
        assert get_engine(engine) is engine

    def test_get_engine_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            get_engine("turbo")

    def test_config_validates_engine_and_backend(self):
        with pytest.raises(ConfigurationError):
            MSROPMConfig(engine="turbo")
        with pytest.raises(ConfigurationError):
            MSROPMConfig(coupling_backend="dense-ish")
        with pytest.raises(ConfigurationError):
            BatchedEngine(coupling_backend="nope")

    def test_auto_backend_by_density(self):
        # The paper's King's graphs are sparse (density <= 0.24).
        assert resolve_coupling_backend("auto", kings_graph(7, 7)) == "sparse"
        # Small graphs stay sparse even when complete (bit-identical path).
        assert resolve_coupling_backend("auto", complete_graph(DENSE_MIN_NODES - 1)) == "sparse"
        # Large dense graphs use the GEMM backend.
        dense = complete_graph(DENSE_MIN_NODES)
        assert resolve_coupling_backend("auto", dense) == "dense"
        assert 2.0 * dense.num_edges / (dense.num_nodes * (dense.num_nodes - 1)) >= (
            DENSE_DENSITY_THRESHOLD
        )
        # Pinned backends pass through untouched.
        assert resolve_coupling_backend("sparse", dense) == "sparse"
        assert resolve_coupling_backend("dense", kings_graph(3, 3)) == "dense"


class TestBatchedSequentialEquivalence:
    def test_bit_identical_on_kings_graph(self, fast_config):
        machine = MSROPM(kings_graph(5, 5), fast_config)
        sequential = machine.solve(iterations=5, seed=17, engine="sequential")
        batched = machine.solve(iterations=5, seed=17, engine="batched")
        assert_equivalent_solves(sequential, batched, exact_phases=True)

    def test_config_engine_matches_explicit_override(self, fast_config):
        graph = kings_graph(4, 4)
        by_config = MSROPM(graph, fast_config.with_updates(engine="batched")).solve(
            iterations=3, seed=9
        )
        by_override = MSROPM(graph, fast_config.with_updates(engine="sequential")).solve(
            iterations=3, seed=9, engine="batched"
        )
        assert_equivalent_solves(by_config, by_override, exact_phases=True)

    def test_single_iteration_batch(self, fast_config):
        machine = MSROPM(kings_graph(4, 4), fast_config)
        sequential = machine.solve(iterations=1, seed=3, engine="sequential")
        batched = machine.solve(iterations=1, seed=3, engine="batched")
        assert_equivalent_solves(sequential, batched, exact_phases=True)

    def test_two_color_single_stage_machine(self, fast_binary_config):
        machine = MSROPM(kings_graph(4, 4), fast_binary_config)
        sequential = machine.solve(iterations=4, seed=21, engine="sequential")
        batched = machine.solve(iterations=4, seed=21, engine="batched")
        assert_equivalent_solves(sequential, batched, exact_phases=True)

    def test_eight_colors_three_stages(self, fast_config):
        config = fast_config.with_updates(num_colors=8)
        machine = MSROPM(kings_graph(4, 4), config)
        sequential = machine.solve(iterations=3, seed=5, engine="sequential")
        batched = machine.solve(iterations=3, seed=5, engine="batched")
        assert_equivalent_solves(sequential, batched, exact_phases=True)

    def test_with_frequency_detuning(self, fast_config):
        config = fast_config.with_updates(frequency_detuning_std=0.01)
        machine = MSROPM(kings_graph(4, 4), config)
        sequential = machine.solve(iterations=3, seed=13, engine="sequential")
        batched = machine.solve(iterations=3, seed=13, engine="batched")
        assert_equivalent_solves(sequential, batched, exact_phases=True)

    def test_dense_backend_reproduces_readouts(self, fast_config):
        """The dense GEMM backend must read out the same discrete solutions."""
        graph = complete_graph(12)
        config = fast_config.with_updates(coupling_backend="dense")
        machine = MSROPM(graph, config)
        sequential = machine.solve(iterations=3, seed=7, engine="sequential")
        batched = machine.solve(iterations=3, seed=7, engine="batched")
        # Phases agree to floating-point reordering; read-outs are identical.
        assert_equivalent_solves(sequential, batched, exact_phases=False)
        for seq_item, bat_item in zip(sequential.iterations, batched.iterations):
            assert np.allclose(
                seq_item.stage_results[-1].final_phases,
                bat_item.stage_results[-1].final_phases,
            )

    def test_auto_dense_graph_end_to_end(self, fast_config):
        """A large dense graph auto-selects the dense backend and still solves."""
        graph = complete_graph(DENSE_MIN_NODES)
        machine = MSROPM(graph, fast_config)
        result = machine.solve(iterations=2, seed=1)
        assert result.num_iterations == 2
        assert all(coloring.covers(graph) for coloring in result.colorings)


class TestSweepEnginePlumbing:
    def test_sweep_engines_produce_identical_points(self, fast_config):
        from repro.analysis.sweep import coupling_strength_sweep

        graph = kings_graph(4, 4)
        sequential = coupling_strength_sweep(
            graph, [0.05, 0.1], base_config=fast_config, iterations=2, seed=3,
            engine="sequential",
        )
        batched = coupling_strength_sweep(
            graph, [0.05, 0.1], base_config=fast_config, iterations=2, seed=3,
            engine="batched",
        )
        assert len(sequential.points) == len(batched.points) == 2
        for seq_point, bat_point in zip(sequential.points, batched.points):
            assert seq_point.mean_accuracy == bat_point.mean_accuracy
            assert seq_point.best_accuracy == bat_point.best_accuracy
            assert seq_point.mean_stage1_accuracy == bat_point.mean_stage1_accuracy

    def test_sweep_rejects_invalid_engine(self, fast_config):
        """A bad engine name must raise, not silently skip every grid point."""
        from repro.analysis.sweep import coupling_strength_sweep

        with pytest.raises(ConfigurationError):
            coupling_strength_sweep(
                kings_graph(3, 3), [0.1], base_config=fast_config, iterations=1,
                seed=0, engine="batchd",
            )


class TestReplicaRNG:
    def test_streams_match_individual_generators(self):
        replica = ReplicaRNG.from_seeds([1, 2, 3])
        stacked = replica.standard_normal((3, 5))
        for row, seed in zip(stacked, [1, 2, 3]):
            assert np.array_equal(row, make_rng(seed).standard_normal(5))

    def test_scalar_size_adds_replica_axis(self):
        replica = ReplicaRNG.from_seeds([4, 5])
        drawn = replica.uniform(0.0, 1.0, size=6)
        assert drawn.shape == (2, 6)
        assert np.array_equal(drawn[1], make_rng(5).uniform(0.0, 1.0, size=6))

    def test_noise_block_matches_per_step_draws(self):
        replica = ReplicaRNG.from_seeds([8, 9])
        block = replica.noise_block(4, (2, 3))
        assert block.shape == (4, 2, 3)
        for index, seed in enumerate([8, 9]):
            generator = make_rng(seed)
            expected = np.stack([generator.standard_normal(3) for _ in range(4)])
            assert np.array_equal(block[:, index, :], expected)

    def test_size_validation(self):
        replica = ReplicaRNG.from_seeds([1, 2])
        with pytest.raises(ValueError):
            replica.standard_normal((3, 4))  # wrong replica axis
        with pytest.raises(ValueError):
            ReplicaRNG([])
