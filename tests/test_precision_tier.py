"""Tests of the throughput precision tier.

Covered here:

* configuration and engine validation of ``MSROPMConfig.precision``,
* the :class:`~repro.rng.ThroughputRNG` batched-stream RNG (shapes, dtype,
  moment matching, determinism),
* the throughput solve path itself: it runs, is deterministic per seed,
  records its provenance metadata, and leaves the exact tier bit-identical,
* tier segregation in the runtime: exact and throughput jobs hash
  differently, never share cache entries, and a campaign re-planned under a
  different tier schedules disjoint jobs,
* the stale-miss counter the tier switch surfaces through runner stats,
* the statistical-equivalence harness at smoke scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.core.config import MSROPMConfig
from repro.core.engine import BatchedEngine, SequentialEngine
from repro.core.machine import MSROPM
from repro.dynamics.batched import BatchedOscillatorModel, ThroughputOptions, ThroughputOscillatorModel
from repro.rng import ThroughputRNG, normal_noise_block
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import KingsGraphSpec, SolveJob
from repro.runtime.runner import ExperimentRunner, SolveRequest


# ----------------------------------------------------------------------
# Configuration and engine validation
# ----------------------------------------------------------------------
class TestPrecisionConfig:
    def test_default_is_exact(self):
        assert MSROPMConfig(num_colors=4).precision == "exact"

    def test_invalid_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            MSROPMConfig(num_colors=4, precision="fast")

    def test_sequential_engine_rejects_throughput(self, kings_5x5):
        config = MSROPMConfig(num_colors=4, seed=3, precision="throughput")
        machine = MSROPM(kings_5x5, config)
        with pytest.raises(ConfigurationError):
            machine.solve(iterations=2, engine=SequentialEngine())

    def test_throughput_rejects_dense_pin(self, kings_5x5):
        config = MSROPMConfig(
            num_colors=4, seed=3, precision="throughput", coupling_backend="dense"
        )
        machine = MSROPM(kings_5x5, config)
        with pytest.raises(ConfigurationError):
            machine.solve(iterations=2)

    def test_throughput_requires_fast_path(self, kings_5x5):
        config = MSROPMConfig(num_colors=4, seed=3, precision="throughput")
        machine = MSROPM(kings_5x5, config)
        with pytest.raises(ConfigurationError):
            machine.solve(iterations=2, engine=BatchedEngine(fast_path=False))


# ----------------------------------------------------------------------
# ThroughputRNG
# ----------------------------------------------------------------------
class TestThroughputRNG:
    def test_shapes_and_dtype(self):
        rng = ThroughputRNG([1, 2, 3])
        assert rng.num_replicas == 3
        assert rng.standard_normal(5).shape == (3, 5)
        assert rng.standard_normal(5).dtype == np.float32
        assert rng.uniform(0.0, 2.0, size=(3, 4)).shape == (3, 4)

    def test_deterministic_per_seed_list(self):
        a = ThroughputRNG([7, 8]).standard_normal(16)
        b = ThroughputRNG([7, 8]).standard_normal(16)
        assert np.array_equal(a, b)
        c = ThroughputRNG([7, 9]).standard_normal(16)
        assert not np.array_equal(a, c)

    def test_noise_block_moments_and_dtype(self):
        rng = ThroughputRNG([5])
        block = normal_noise_block(rng, 4000, (1, 50))
        assert block.shape == (4000, 1, 50)
        assert block.dtype == np.float32
        # Moment-matched uniform increments: mean 0, unit variance.
        assert abs(float(block.mean())) < 0.01
        assert abs(float(block.var()) - 1.0) < 0.01
        # Bounded support is the tell of the uniform relaxation.
        assert float(np.abs(block).max()) <= np.sqrt(3.0) + 1e-6

    def test_uniform_range(self):
        sample = ThroughputRNG([2]).uniform(1.0, 3.0, size=1000)
        assert float(sample.min()) >= 1.0
        assert float(sample.max()) <= 3.0


# ----------------------------------------------------------------------
# The fused-SHIL model relaxation
# ----------------------------------------------------------------------
class TestThroughputModel:
    def _models(self, fused: bool):
        from repro.dynamics.batched import FastSharedCoupling

        rng = np.random.default_rng(0)
        num = 12
        matrix = np.triu(rng.random((num, num)) < 0.3, k=1)
        adjacency = (matrix | matrix.T).astype(float) * -2.0e9
        offsets = rng.uniform(0.0, np.pi, size=num)
        kwargs = dict(
            num_oscillators=num,
            shil_strength=1.5e9,
            shil_offset=offsets,
            shil_order=2,
        )
        exact = BatchedOscillatorModel(coupling=FastSharedCoupling(adjacency), **kwargs)
        fast = ThroughputOscillatorModel(
            coupling=FastSharedCoupling(adjacency), fused_shil=fused, dtype=np.float64, **kwargs
        )
        return exact, fast

    @pytest.mark.parametrize("fused", [False, True])
    def test_matches_reference_model(self, fused):
        exact, fast = self._models(fused)
        phases = np.random.default_rng(1).uniform(0.0, 2 * np.pi, size=(4, 12))
        expected = exact.evaluate_into(0.0, phases, np.empty_like(phases))
        actual = fast.evaluate_into(0.0, phases, np.empty_like(phases))
        # In float64 the fused double-angle identity is algebraically exact up
        # to rounding; the non-fused path delegates to the parent verbatim.
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1.0)

    def test_float32_state(self):
        from repro.dynamics.batched import FastSharedCoupling

        model = ThroughputOscillatorModel(
            coupling=FastSharedCoupling(np.zeros((4, 4)), dtype=np.float32),
            num_oscillators=4,
            shil_strength=1.0e9,
            shil_offset=np.zeros(4),
            shil_order=2,
            dtype=np.float32,
        )
        phases = np.zeros((2, 4), dtype=np.float32)
        out = model.evaluate_into(0.0, phases, np.empty_like(phases))
        assert out.dtype == np.float32


# ----------------------------------------------------------------------
# The throughput solve path
# ----------------------------------------------------------------------
class TestThroughputSolve:
    def test_runs_and_records_metadata(self, kings_5x5):
        config = MSROPMConfig(num_colors=4, seed=5, precision="throughput")
        result = MSROPM(kings_5x5, config).solve(iterations=4)
        assert result.num_iterations == 4
        assert result.metadata["precision"] == "throughput"
        assert result.metadata["dtype"] == "float32"
        assert result.metadata["numpy"] == np.__version__
        assert all(0.0 <= item.accuracy <= 1.0 for item in result.iterations)

    def test_deterministic_per_seed(self, kings_5x5):
        config = MSROPMConfig(num_colors=4, seed=5, precision="throughput")
        first = MSROPM(kings_5x5, config).solve(iterations=4)
        second = MSROPM(kings_5x5, config).solve(iterations=4)
        assert np.array_equal(first.accuracies, second.accuracies)
        for a, b in zip(first.iterations, second.iterations):
            assert all(
                a.coloring.color_of(node) == b.coloring.color_of(node)
                for node in kings_5x5.nodes
            )

    def test_exact_tier_metadata_and_bit_identity(self, kings_5x5):
        config = MSROPMConfig(num_colors=4, seed=5)
        result = MSROPM(kings_5x5, config).solve(iterations=3)
        assert result.metadata["precision"] == "exact"
        assert result.metadata["dtype"] == "float64"
        # The exact tier must be unaffected by the tier machinery: batched
        # fast path vs the legacy engine body stay bit-identical.
        legacy = MSROPM(kings_5x5, config).solve(
            iterations=3, engine=BatchedEngine(fast_path=False)
        )
        assert np.array_equal(result.accuracies, legacy.accuracies)

    def test_relaxations_individually_switchable(self, kings_5x5):
        for options in (
            ThroughputOptions(batched_rng=False),
            ThroughputOptions(float32_state=False),
            ThroughputOptions(fused_shil=True),
        ):
            config = MSROPMConfig(num_colors=4, seed=5, precision="throughput")
            engine = BatchedEngine(precision="throughput", throughput_options=options)
            result = MSROPM(kings_5x5, config).solve(iterations=2, engine=engine)
            assert result.num_iterations == 2

    def test_accuracy_comparable_to_exact(self, kings_7x7):
        exact = MSROPM(kings_7x7, MSROPMConfig(num_colors=4, seed=9)).solve(iterations=10)
        throughput = MSROPM(
            kings_7x7, MSROPMConfig(num_colors=4, seed=9, precision="throughput")
        ).solve(iterations=10)
        assert abs(float(exact.accuracies.mean() - throughput.accuracies.mean())) < 0.05


# ----------------------------------------------------------------------
# Tier segregation in the runtime
# ----------------------------------------------------------------------
class TestTierSegregation:
    def _job(self, precision: str, **overrides) -> SolveJob:
        config = MSROPMConfig(num_colors=4, seed=1, precision=precision, **overrides)
        return SolveJob(
            spec=KingsGraphSpec(5, 5), config=config, seed=11, total_iterations=3
        )

    def test_distinct_content_hashes(self):
        assert self._job("exact").job_hash != self._job("throughput").job_hash

    def test_tiers_never_share_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        exact_job = self._job("exact")
        result = exact_job.run()
        cache.store(exact_job, result)
        assert cache.load(exact_job) is not None
        # The throughput job addresses a different entry entirely.
        assert cache.load(self._job("throughput")) is None
        assert cache.stale_misses == 0  # absent entry, not a stale one

    def test_runner_recomputes_across_tiers(self, tmp_path):
        spec = KingsGraphSpec(5, 5)
        with ExperimentRunner(cache_dir=tmp_path / "cache") as runner:
            for precision in ("exact", "throughput"):
                config = MSROPMConfig(num_colors=4, seed=1, precision=precision)
                runner.solve_many(
                    [SolveRequest(spec=spec, config=config, iterations=2, seed=3)]
                )
            stats = runner.stats()
        assert stats["jobs_run"] == 2
        assert stats["cache_hits"] == 0

    def test_campaign_replan_after_tier_change_schedules_new_jobs(self, tmp_path):
        from repro.campaigns import get_campaign
        from repro.campaigns.spec import CampaignContext

        spec = get_campaign("suite")
        stage = next(s for s in spec.stages if s.name == "table1")

        def plan(precision):
            with ExperimentRunner(cache_dir=tmp_path / "cache") as runner:
                context = CampaignContext(
                    params={
                        "scale": 0.1,
                        "seed": 2025,
                        "engine": None,
                        "precision": precision,
                    },
                    runner=runner,
                )
                return {job.job_hash for job in stage.plan(context)}

        exact_hashes = plan("exact")
        throughput_hashes = plan("throughput")
        assert exact_hashes
        assert exact_hashes.isdisjoint(throughput_hashes)


# ----------------------------------------------------------------------
# Stale-miss accounting
# ----------------------------------------------------------------------
class TestStaleMisses:
    def test_absent_entry_is_a_plain_miss(self, tmp_path, fast_config):
        cache = ResultCache(tmp_path)
        job = SolveJob(
            spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=1
        )
        assert cache.load(job) is None
        assert cache.misses == 1
        assert cache.stale_misses == 0

    def test_corrupt_entry_is_a_stale_miss(self, tmp_path, fast_config):
        cache = ResultCache(tmp_path)
        job = SolveJob(
            spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=1
        )
        path = cache.path_for(job.job_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.load(job) is None
        assert cache.misses == 1
        assert cache.stale_misses == 1

    def test_schema_mismatch_is_a_stale_miss(self, tmp_path, fast_config):
        import json

        cache = ResultCache(tmp_path)
        job = SolveJob(
            spec=KingsGraphSpec(4, 4), config=fast_config, seed=1, total_iterations=1
        )
        result = job.run()
        cache.store(job, result)
        path = cache.path_for(job.job_hash)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["cache_schema"] = -1
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert cache.load(job) is None
        assert cache.stale_misses == 1

    def test_runner_stats_surface_the_counter(self, tmp_path):
        with ExperimentRunner(cache_dir=tmp_path / "cache") as runner:
            stats = runner.stats()
        assert stats["cache_stale_misses"] == 0
        assert ExperimentRunner(cache_dir=None).stats()["cache_stale_misses"] == 0


# ----------------------------------------------------------------------
# The equivalence harness, smoke scale
# ----------------------------------------------------------------------
class TestEquivalenceHarness:
    def test_bootstrap_ci_is_deterministic(self):
        from repro.experiments.equivalence import bootstrap_mean_difference_ci

        a = np.linspace(0.9, 1.0, 20)
        b = np.linspace(0.89, 1.0, 20)
        first = bootstrap_mean_difference_ci(a, b, num_samples=200, seed=4)
        second = bootstrap_mean_difference_ci(a, b, num_samples=200, seed=4)
        assert first == second
        assert first[0] <= first[1]

    def test_smoke_two_families(self, tmp_path):
        from repro.experiments.equivalence import run_equivalence

        with ExperimentRunner(cache_dir=tmp_path / "cache") as runner:
            result = run_equivalence(iterations=6, seed=2025, runner=runner)
        assert len(result.rows) == 2
        assert {row.family for row in result.rows} == {"er", "regular"}
        assert result.passed
        rendered = result.render()
        assert "PASS" in rendered

    def test_detects_a_shifted_distribution(self):
        from repro.experiments.equivalence import (
            EquivalenceResult,
            EquivalenceRow,
            bootstrap_mean_difference_ci,
        )
        from scipy import stats

        rng = np.random.default_rng(0)
        exact = rng.normal(0.95, 0.01, size=200)
        shifted = exact - 0.2
        ks = stats.ks_2samp(exact, shifted)
        ci_low, ci_high = bootstrap_mean_difference_ci(shifted, exact, seed=1)
        row = EquivalenceRow(
            family="synthetic",
            num_instances=1,
            sample_size=200,
            exact_mean=float(exact.mean()),
            throughput_mean=float(shifted.mean()),
            mean_diff=float(shifted.mean() - exact.mean()),
            ci_low=ci_low,
            ci_high=ci_high,
            ks_statistic=float(ks.statistic),
            ks_pvalue=float(ks.pvalue),
            ks_ok=bool(ks.pvalue >= 0.01),
            ci_ok=bool(-0.05 <= ci_low and ci_high <= 0.05),
        )
        assert not row.equivalent
        result = EquivalenceResult(rows=[row])
        assert not result.passed
        assert "FAIL" in result.render()


# ----------------------------------------------------------------------
# Serialization of the metadata (results FORMAT_VERSION 4)
# ----------------------------------------------------------------------
class TestMetadataRoundTrip:
    def test_round_trip_preserves_metadata(self, kings_5x5):
        from repro.analysis.results_io import solve_result_from_dict, solve_result_to_dict

        config = MSROPMConfig(num_colors=4, seed=2, precision="throughput")
        result = MSROPM(kings_5x5, config).solve(iterations=2)
        payload = solve_result_to_dict(result)
        assert payload["format_version"] == 4
        restored = solve_result_from_dict(payload)
        assert restored.metadata == result.metadata

    def test_chunk_merge_keeps_metadata(self, tmp_path):
        with ExperimentRunner(cache_dir=None, replica_chunk=2) as runner:
            config = MSROPMConfig(num_colors=4, seed=2, precision="throughput")
            result = runner.solve(KingsGraphSpec(5, 5), config, iterations=4, seed=6)
        assert result.metadata["precision"] == "throughput"
        assert result.num_iterations == 4
