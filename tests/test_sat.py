"""Tests for the CNF representation, DIMACS CNF I/O and the DPLL solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SATError
from repro.sat import (
    CNF,
    DPLLSolver,
    from_dimacs_cnf,
    negate,
    read_dimacs_cnf,
    solve_cnf,
    to_dimacs_cnf,
    variable_of,
    write_dimacs_cnf,
)


class TestCNF:
    def test_literal_helpers(self):
        assert negate(3) == -3
        assert negate(-3) == 3
        assert variable_of(-7) == 7
        with pytest.raises(SATError):
            negate(0)
        with pytest.raises(SATError):
            variable_of(0)

    def test_add_clause_tracks_variables(self):
        formula = CNF()
        formula.add_clause([1, -2])
        formula.add_clause([3])
        assert formula.num_variables == 3
        assert formula.num_clauses == 2

    def test_duplicate_literals_removed(self):
        formula = CNF()
        formula.add_clause([1, 1, -2])
        assert formula.clauses[0] == (1, -2)

    def test_tautology_dropped(self):
        formula = CNF()
        formula.add_clause([1, -1, 2])
        assert formula.num_clauses == 0

    def test_empty_clause_rejected_by_default(self):
        formula = CNF()
        with pytest.raises(SATError):
            formula.add_clause([])
        formula.add_clause([], allow_empty=True)
        assert formula.num_clauses == 1

    def test_invalid_literal(self):
        with pytest.raises(SATError):
            CNF().add_clause([0])

    def test_new_variable(self):
        formula = CNF(num_variables=2)
        assert formula.new_variable() == 3

    def test_exactly_one(self):
        formula = CNF()
        formula.add_exactly_one([1, 2, 3])
        # 1 at-least-one clause + 3 pairwise at-most-one clauses
        assert formula.num_clauses == 4

    def test_exactly_one_empty(self):
        with pytest.raises(SATError):
            CNF().add_exactly_one([])

    def test_evaluate(self):
        formula = CNF(clauses=[[1, 2], [-1, 2]])
        assert formula.evaluate({1: True, 2: True})
        assert formula.evaluate({1: False, 2: True})
        assert not formula.evaluate({1: True, 2: False})

    def test_evaluate_requires_assignment(self):
        formula = CNF(clauses=[[1, 2]])
        with pytest.raises(SATError):
            formula.evaluate({1: False})

    def test_variables_and_copy(self):
        formula = CNF(clauses=[[1, -3]])
        assert formula.variables() == {1, 3}
        clone = formula.copy()
        clone.add_clause([2])
        assert formula.num_clauses == 1


class TestDimacsCNF:
    def test_round_trip(self):
        formula = CNF(clauses=[[1, -2], [2, 3], [-1, -3]])
        back = from_dimacs_cnf(to_dimacs_cnf(formula, comment="test"))
        assert back.num_variables == formula.num_variables
        assert sorted(back.clauses) == sorted(formula.clauses)

    def test_file_round_trip(self, tmp_path):
        formula = CNF(clauses=[[1, 2], [-1]])
        path = tmp_path / "formula.cnf"
        write_dimacs_cnf(formula, path)
        assert read_dimacs_cnf(path).num_clauses == 2

    def test_requires_header(self):
        with pytest.raises(SATError):
            from_dimacs_cnf("1 2 0\n")

    def test_header_can_declare_extra_variables(self):
        formula = from_dimacs_cnf("p cnf 5 1\n1 2 0\n")
        assert formula.num_variables == 5

    def test_clause_spanning_lines(self):
        formula = from_dimacs_cnf("p cnf 3 1\n1 2\n3 0\n")
        assert formula.clauses[0] == (1, 2, 3)


class TestDPLL:
    def test_trivially_sat(self):
        result = solve_cnf(CNF(clauses=[[1], [2]]))
        assert result.is_sat
        assert result.assignment[1] and result.assignment[2]

    def test_trivially_unsat(self):
        result = solve_cnf(CNF(clauses=[[1], [-1]]))
        assert result.is_unsat

    def test_empty_formula_sat(self):
        assert solve_cnf(CNF(num_variables=3)).is_sat

    def test_requires_backtracking(self):
        # Deciding x1=True propagates a conflict via (-x1 or x3) and (-x1 or -x3),
        # so the solver must flip its first decision to find the x1=False model.
        formula = CNF(clauses=[[1, 2], [-1, 3], [-1, -3]])
        result = solve_cnf(formula)
        assert result.is_sat
        assert result.assignment[1] is False
        assert result.assignment[2] is True

    def test_unsat_after_exhausting_both_branches(self):
        formula = CNF(clauses=[[1, 2], [1, -2], [-1, 3], [-1, -3]])
        result = solve_cnf(formula)
        assert result.is_unsat

    def test_pigeonhole_unsat(self):
        """3 pigeons in 2 holes is unsatisfiable (forces real search)."""
        formula = CNF()
        holes = 2
        pigeons = 3
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = formula.new_variable()
        for p in range(pigeons):
            formula.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    formula.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solve_cnf(formula).is_unsat

    def test_assumptions(self):
        formula = CNF(clauses=[[1, 2]])
        sat_under = solve_cnf(formula, assumptions=[-1])
        assert sat_under.is_sat and sat_under.assignment[2]
        unsat_under = solve_cnf(CNF(clauses=[[1]]), assumptions=[-1])
        assert unsat_under.is_unsat

    def test_decision_limit_returns_unknown(self):
        # A hard-ish random-like instance with a tiny decision budget.
        formula = CNF()
        for clause in ([1, 2, 3], [-1, -2, 3], [1, -2, -3], [-1, 2, -3], [1, 2, -3], [-1, -2, -3]):
            formula.add_clause(clause)
        solver = DPLLSolver(formula, max_decisions=1)
        result = solver.solve()
        assert result.is_unknown or result.is_sat  # tiny instances may finish within one decision

    def test_invalid_decision_limit(self):
        with pytest.raises(SATError):
            DPLLSolver(CNF(), max_decisions=0)

    def test_statistics_populated(self):
        result = solve_cnf(CNF(clauses=[[1, 2], [-1, 2], [1, -2], [-1, -2, 3]]))
        assert result.is_sat
        assert result.propagations >= 0
        assert result.decisions >= 1

    @given(
        num_vars=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_3sat_model_validity(self, num_vars, seed):
        """Any SAT answer must come with a model that actually satisfies the formula."""
        import numpy as np

        rng = np.random.default_rng(seed)
        formula = CNF(num_variables=num_vars)
        num_clauses = int(3 * num_vars)
        for _ in range(num_clauses):
            variables = rng.choice(np.arange(1, num_vars + 1), size=3, replace=False)
            signs = rng.choice([-1, 1], size=3)
            formula.add_clause([int(v * s) for v, s in zip(variables, signs)])
        result = solve_cnf(formula)
        if result.is_sat:
            assert formula.evaluate(result.assignment)
