"""Tests for DIMACS / JSON graph serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    Coloring,
    from_dimacs,
    from_json,
    kings_graph,
    read_dimacs,
    read_json,
    to_dimacs,
    to_json,
    write_dimacs,
    write_json,
)
from repro.graphs.io import coloring_from_json, coloring_to_json, edge_list


class TestDimacs:
    def test_round_trip_structure(self):
        graph = kings_graph(3, 3)
        text = to_dimacs(graph, comment="3x3 kings")
        back = from_dimacs(text)
        assert back.num_nodes == graph.num_nodes
        assert back.num_edges == graph.num_edges

    def test_header_line(self):
        text = to_dimacs(kings_graph(2, 2))
        assert "p edge 4 6" in text

    def test_comment_lines_preserved_as_comments(self):
        text = to_dimacs(kings_graph(2, 2), comment="line one\nline two")
        assert text.count("\nc ") >= 1 or text.startswith("c ")

    def test_parse_ignores_comments_and_self_loops(self):
        text = "c hello\np edge 3 3\ne 1 2\ne 2 2\ne 2 3\n"
        graph = from_dimacs(text)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_parse_requires_problem_line(self):
        with pytest.raises(GraphError):
            from_dimacs("e 1 2\n")

    def test_parse_rejects_unknown_record(self):
        with pytest.raises(GraphError):
            from_dimacs("p edge 2 1\nx 1 2\n")

    def test_parse_rejects_too_many_edges(self):
        with pytest.raises(GraphError):
            from_dimacs("p edge 3 1\ne 1 2\ne 2 3\n")

    def test_parse_rejects_out_of_range_endpoints(self):
        # Historically "p edge 3 2\ne 2 9" silently grew the graph to 4+ nodes.
        with pytest.raises(GraphError, match="outside 1..3.*line 2"):
            from_dimacs("p edge 3 2\ne 2 9\n")
        with pytest.raises(GraphError, match="outside"):
            from_dimacs("p edge 3 2\ne 0 2\n")
        with pytest.raises(GraphError, match="outside"):
            from_dimacs("p edge 3 2\ne -1 2\n")

    def test_parse_rejects_edges_before_header(self):
        with pytest.raises(GraphError, match="before the problem line at line 2"):
            from_dimacs("c comment\ne 1 2\np edge 3 2\n")

    def test_parse_rejects_duplicate_problem_line(self):
        with pytest.raises(GraphError, match="duplicate problem line at line 2"):
            from_dimacs("p edge 2 1\np edge 3 2\ne 1 2\n")

    def test_parse_rejects_non_integer_tokens(self):
        with pytest.raises(GraphError, match="non-integer.*line 2"):
            from_dimacs("p edge 3 3\ne one 2\n")
        with pytest.raises(GraphError, match="non-integer"):
            from_dimacs("p edge x 3\n")

    def test_parse_collapses_duplicate_edges(self):
        graph = from_dimacs("p edge 3 4\ne 1 2\ne 2 1\ne 1 2\ne 2 3\n")
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_declared_node_count_is_authoritative(self):
        # Isolated trailing nodes must exist even with no incident edges.
        graph = from_dimacs("p edge 5 1\ne 1 2\n")
        assert graph.num_nodes == 5
        assert graph.num_edges == 1

    def test_file_round_trip(self, tmp_path):
        graph = kings_graph(3, 4)
        path = tmp_path / "graph.col"
        write_dimacs(graph, path)
        back = read_dimacs(path)
        assert back.num_edges == graph.num_edges
        assert back.name == "graph"


class TestJson:
    def test_round_trip_with_tuple_labels(self):
        graph = kings_graph(3, 3)
        back = from_json(to_json(graph))
        assert set(back.nodes) == set(graph.nodes)
        assert set(map(frozenset, back.edges())) == set(map(frozenset, graph.edges()))

    def test_invalid_json(self):
        with pytest.raises(GraphError):
            from_json("{not json")

    def test_missing_fields(self):
        with pytest.raises(GraphError):
            from_json('{"nodes": []}')

    def test_file_round_trip(self, tmp_path):
        graph = kings_graph(2, 5)
        path = tmp_path / "graph.json"
        write_json(graph, path)
        assert read_json(path).num_nodes == 10

    def test_coloring_round_trip(self):
        graph = kings_graph(3, 3)
        coloring = Coloring.from_array(graph, [i % 4 for i in range(9)], 4)
        back = coloring_from_json(graph, coloring_to_json(graph, coloring))
        assert back.assignment == coloring.assignment

    def test_edge_list_indices(self):
        graph = kings_graph(2, 2)
        pairs = edge_list(graph)
        assert len(pairs) == graph.num_edges
        assert all(0 <= i < 4 and 0 <= j < 4 for i, j in pairs)
