"""End-to-end integration tests tying the whole stack together.

These tests exercise the public API the way the examples and benchmarks do:
solve the paper's smallest benchmark, compare against the exact baseline and
the software heuristics, and check the cross-layer invariants (accuracy
decomposition across stages, power/timing bookkeeping).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MSROPM, MSROPMConfig, kings_graph, solve_coloring
from repro.baselines import anneal_coloring, exact_coloring
from repro.circuit import PowerModel, TimingPlan
from repro.core.metrics import coloring_accuracy
from repro.units import as_ns, ns


@pytest.fixture(scope="module")
def solved_7x7():
    """One shared 49-node solve used by several integration checks."""
    config = MSROPMConfig(
        num_colors=4,
        timing=TimingPlan(initialization=ns(2.0), annealing=ns(12.0), shil_settling=ns(4.0)),
        time_step=0.04e-9,
        record_every=25,
        seed=2025,
    )
    machine = MSROPM(kings_graph(7, 7), config)
    return machine, machine.solve(iterations=8, seed=2025)


class TestEndToEnd:
    def test_accuracy_against_exact_baseline(self, solved_7x7):
        machine, result = solved_7x7
        exact = exact_coloring(machine.graph, 4)
        assert exact.is_proper(machine.graph)
        # The machine's best accuracy should be close to the exact solution's 1.0,
        # matching the paper's 49-node behaviour (average 98%, best 100%).
        assert result.best_accuracy >= 0.95
        assert result.accuracies.mean() >= 0.9

    def test_accuracy_decomposes_over_stages(self, solved_7x7):
        """Accuracy = (stage-1 cut + stage-2 cuts) / total edges for every run."""
        machine, result = solved_7x7
        total_edges = machine.graph.num_edges
        for iteration in result.iterations:
            cut_sum = sum(stage.cut_value for stage in iteration.stage_results)
            assert iteration.accuracy == pytest.approx(cut_sum / total_edges)

    def test_stage1_accuracy_positively_tracks_final(self, solved_7x7):
        _, result = solved_7x7
        if np.std(result.stage1_accuracies) > 1e-9 and np.std(result.accuracies) > 1e-9:
            assert result.stage_correlation() > -0.5  # never strongly negative

    def test_solutions_differ_across_iterations(self, solved_7x7):
        """The probabilistic nature of the machine: repeated runs find different solutions."""
        _, result = solved_7x7
        distances = result.hamming_distances()
        assert distances.max() > 0.0

    def test_run_time_is_the_timing_plan_total(self, solved_7x7):
        machine, result = solved_7x7
        assert result.average_run_time() == pytest.approx(machine.config.total_run_time)

    def test_power_model_on_machine(self, solved_7x7):
        machine, _ = solved_7x7
        power = machine.estimated_power(PowerModel())
        assert 0.001 < power < 0.1  # tens of mW for a 49-node fabric

    def test_machine_vs_simulated_annealing(self, solved_7x7):
        machine, result = solved_7x7
        sa = anneal_coloring(machine.graph, 4, seed=1)
        assert abs(result.best_accuracy - coloring_accuracy(machine.graph, sa)) < 0.15

    def test_convenience_api(self):
        result = solve_coloring(
            kings_graph(4, 4),
            num_colors=4,
            iterations=2,
            seed=7,
            config=MSROPMConfig(
                num_colors=4,
                timing=TimingPlan(initialization=ns(1.0), annealing=ns(6.0), shil_settling=ns(3.0)),
                time_step=0.05e-9,
            ),
        )
        assert result.num_iterations == 2
        assert result.best.coloring.covers(result.graph)


class TestEightColorExtension:
    def test_three_stage_machine_colors_with_eight_colors(self):
        """The paper's proposed extension: more stages -> more colors."""
        config = MSROPMConfig(
            num_colors=8,
            timing=TimingPlan(initialization=ns(1.0), annealing=ns(8.0), shil_settling=ns(3.0)),
            time_step=0.05e-9,
            seed=5,
        )
        graph = kings_graph(5, 5)
        machine = MSROPM(graph, config)
        result = machine.solve(iterations=2, seed=5)
        assert as_ns(machine.time_to_solution()) == pytest.approx(36.0)
        assert result.num_colors == 8
        # 8 colors on a 4-chromatic graph: high accuracy should be easy.
        assert result.best_accuracy >= 0.95
        assert all(color < 8 for coloring in result.colorings for color in coloring.used_colors())
