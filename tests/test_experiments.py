"""Tests for the experiment harness (Figures 3 and 5, Tables 1 and 2, ablations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.circuit import PAPER_POWER_MW
from repro.experiments import (
    FIGURE5_SIZES,
    PAPER_ITERATIONS,
    TABLE1_SIZES,
    default_config,
    paper_problem,
    power_scaling_series,
    render_figure3,
    render_figure5,
    run_coupling_ablation,
    run_figure3,
    run_figure5,
    run_multi_vs_single_stage,
    run_shil_ablation,
    run_table1,
    run_table2,
    scaled_iterations,
    scaled_problem,
)
from repro.experiments.fig5_accuracy import Figure5Result


class TestProblems:
    def test_paper_problem_sizes(self):
        for size in TABLE1_SIZES:
            problem = paper_problem(size)
            assert problem.graph.num_nodes == size
            assert problem.name == f"{size}-node"

    def test_paper_iterations_constant(self):
        assert PAPER_ITERATIONS == 40
        assert set(FIGURE5_SIZES) == {49, 400, 1024}

    def test_scaled_problem_shrinks(self):
        scaled = scaled_problem(1024, scale=0.1)
        assert scaled.graph.num_nodes < 1024
        assert scaled.graph.num_nodes >= 16
        assert scaled_problem(49, scale=1.0).graph.num_nodes == 49

    def test_scaled_iterations(self):
        assert scaled_iterations(1.0) == 40
        assert scaled_iterations(0.1) == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paper_problem(123)
        with pytest.raises(ConfigurationError):
            scaled_problem(49, scale=0.0)
        with pytest.raises(ConfigurationError):
            scaled_iterations(2.0)

    def test_default_config(self):
        config = default_config(seed=5)
        assert config.num_colors == 4
        assert config.seed == 5


class TestFigure3:
    def test_run_and_render(self, fast_config):
        result = run_figure3(rows=3, cols=3, config=fast_config.with_updates(record_every=1), seed=3)
        # After the final SHIL the oscillators occupy at most 4 of the 8 phase bins.
        assert result.final_num_clusters <= 4
        assert len(result.snapshots) == 6
        assert result.waveforms.voltages.shape[1] == len(result.traced_oscillators)
        text = render_figure3(result)
        assert "Figure 3" in text
        assert "shil-2" in text

    def test_two_phase_clustering_after_stage1(self, fast_config):
        result = run_figure3(rows=3, cols=3, config=fast_config.with_updates(record_every=1), seed=4)
        after_shil1 = next(snapshot for snapshot in result.snapshots if snapshot.label == "shil-1")
        # SHIL 1 binarizes phases to (near) 0/180 degrees: bins 0 and 4 of 8.
        assert after_shil1.num_phase_clusters <= 3


class TestFigure5:
    def test_scaled_run_structure(self, fast_config):
        result = run_figure5(sizes=(49,), iterations=4, scale=0.5, config=fast_config, seed=11)
        series = result.by_size(49)
        assert series.coloring_accuracies.shape == (4,)
        assert series.maxcut_accuracies.shape == (4,)
        assert series.hamming_distances.shape == (6,)
        assert 0.0 <= series.mean_accuracy <= 1.0
        assert series.best_accuracy >= series.mean_accuracy

    def test_render_contains_all_panels(self, fast_config):
        result = run_figure5(sizes=(49,), iterations=3, scale=0.3, config=fast_config, seed=12)
        text = render_figure5(result)
        assert "Figure 5(a)" in text
        assert "Figure 5(b)" in text
        assert "Figure 5(c)" in text
        assert "correlation" in text

    def test_by_size_missing(self):
        with pytest.raises(KeyError):
            Figure5Result(series=[]).by_size(49)


class TestTable1:
    def test_scaled_rows(self, fast_config):
        result = run_table1(sizes=(49, 400), iterations=3, scale=0.3, config=fast_config, seed=13)
        assert len(result.rows) == 2
        first = result.rows[0]
        assert first.search_space_text() == "4^49"
        assert first.iterations == 3
        assert 0.0 <= first.top_accuracy <= 1.0
        assert first.average_power_w > 0
        text = result.render()
        assert "Table 1" in text
        assert "4^400" in text

    def test_power_comparison_available(self, fast_config):
        result = run_table1(sizes=(49,), iterations=2, scale=0.3, config=fast_config, seed=14)
        comparison = result.paper_power_comparison()
        assert 49 in comparison
        assert comparison[49]["paper_mw"] == PAPER_POWER_MW[49]

    def test_power_scaling_series_is_linear_in_size(self):
        series = power_scaling_series()
        assert set(series) == set(TABLE1_SIZES)
        values = [series[size] for size in sorted(series)]
        assert values == sorted(values)
        # Per-node power decreases slightly with size (controller amortization),
        # mirroring the paper's trend.
        per_node = {size: series[size] / size for size in series}
        assert per_node[2116] < per_node[49]


class TestTable2:
    def test_measured_rows_and_render(self, fast_config):
        result = run_table2(
            msropm_nodes=400, comparison_nodes=49, iterations=3, scale=0.3, config=fast_config, seed=15
        )
        text = result.render()
        assert "MSROPM (this work)" in text
        assert "3-SHIL" in text
        assert "ROIM" in text
        assert "cited" in text
        assert result.msropm_accuracies.shape == (3,)
        assert result.ropm_accuracies.shape == (3,)
        assert result.roim_accuracies.shape == (3,)

    def test_msropm_outperforms_single_stage_on_its_problem(self, fast_config):
        """The paper's architectural claim: multi-stage beats single-stage N-SHIL."""
        comparison = run_multi_vs_single_stage(rows=5, iterations=4, config=fast_config, seed=16)
        assert comparison.multi_stage_mean >= comparison.single_stage_mean
        assert comparison.advantage >= 0.0


class TestAblations:
    def test_coupling_ablation_runs(self, fast_config):
        sweep = run_coupling_ablation(rows=4, strengths=(0.05, 0.1), iterations=2, config=fast_config, seed=17)
        assert len(sweep.points) == 2

    def test_shil_ablation_detects_weak_injection(self, fast_config):
        """Very weak SHIL discretizes poorly; the nominal strength must not be worse."""
        sweep = run_shil_ablation(rows=4, strengths=(0.02, 0.25), iterations=3, config=fast_config, seed=18)
        by_strength = {point.overrides["shil_strength"]: point.mean_accuracy for point in sweep.points}
        assert by_strength[0.25] >= by_strength[0.02] - 0.05
