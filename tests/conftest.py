"""Shared fixtures for the test-suite.

The dynamics-based tests use a *fast* configuration (shorter intervals,
coarser time step) so the full suite stays quick while still exercising every
stage of the machine; experiments that need the paper's exact timing construct
their own :class:`MSROPMConfig`.
"""

from __future__ import annotations

import pytest

from repro.circuit.control import TimingPlan
from repro.core.config import MSROPMConfig
from repro.graphs.generators import cycle_graph, grid_graph, kings_graph
from repro.units import ns


@pytest.fixture(autouse=True)
def _sandbox_result_cache(monkeypatch, tmp_path):
    """Point the runtime's default result cache at a per-test directory.

    CLI commands enable the on-disk cache by default; without this, tests
    would write into (and read stale results from) the user's real
    ``~/.cache/msropm``.
    """
    monkeypatch.setenv("MSROPM_CACHE_DIR", str(tmp_path / "msropm-cache"))


@pytest.fixture
def kings_5x5():
    """A 25-node King's graph — small enough for exact baselines."""
    return kings_graph(5, 5)


@pytest.fixture
def kings_7x7():
    """The paper's smallest benchmark (49 nodes)."""
    return kings_graph(7, 7)


@pytest.fixture
def small_grid():
    """A 4x4 rectangular grid (bipartite)."""
    return grid_graph(4, 4)


@pytest.fixture
def small_cycle():
    """A 6-cycle (bipartite, 2-colorable)."""
    return cycle_graph(6)


@pytest.fixture
def odd_cycle():
    """A 5-cycle (odd, 3-chromatic)."""
    return cycle_graph(5)


@pytest.fixture
def fast_config():
    """A reduced-timing MSROPM configuration for quick dynamics tests."""
    return MSROPMConfig(
        num_colors=4,
        timing=TimingPlan(initialization=ns(1.0), annealing=ns(8.0), shil_settling=ns(3.0)),
        time_step=0.05e-9,
        record_every=20,
        seed=1234,
    )


@pytest.fixture
def fast_binary_config():
    """A reduced-timing configuration for 2-color (single-stage) tests."""
    return MSROPMConfig(
        num_colors=2,
        timing=TimingPlan(initialization=ns(1.0), annealing=ns(8.0), shil_settling=ns(3.0)),
        time_step=0.05e-9,
        record_every=20,
        seed=99,
    )
