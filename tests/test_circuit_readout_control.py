"""Tests for DFF/read-out blocks, the SHIL MUX, control schedule, power model and netlist."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import CircuitError, MappingError, StageError
from repro.circuit import (
    ControlState,
    DFlipFlop,
    FabricNetlist,
    PAPER_POWER_MW,
    PhaseReadout,
    PowerModel,
    ReferenceSignal,
    ShilMux,
    StageInterval,
    StageKind,
    TimingPlan,
    binary_readout,
    energy_per_solution,
    msropm_schedule,
    multi_stage_schedule,
    reference_bank,
    shil1,
    shil2,
)
from repro.graphs import kings_graph
from repro.units import as_ns, ns


class TestDFFAndReferences:
    def test_dff_samples_data(self):
        dff = DFlipFlop()
        assert dff.sample(True) is True
        assert dff.sample(False) is False
        assert not dff.last_sample_metastable

    def test_dff_metastability_window(self):
        dff = DFlipFlop(setup_time=20e-12, hold_time=10e-12)
        assert dff.sample(True, data_transition_offset=5e-12) is False
        assert dff.last_sample_metastable
        assert dff.sample(True, data_transition_offset=50e-12) is True

    def test_dff_validation(self):
        with pytest.raises(CircuitError):
            DFlipFlop(setup_time=-1e-12)

    def test_reference_signal_values(self):
        ref = ReferenceSignal(frequency=1e9, phase=0.0)
        assert ref.value(0.1e-9) is True     # first half of the cycle
        assert ref.value(0.6e-9) is False    # second half

    def test_reference_rising_edges(self):
        ref = ReferenceSignal(frequency=1e9, phase=0.0)
        edges = ref.rising_edge_times(0.0, 3.5e-9)
        assert len(edges) == 4
        assert edges[1] == pytest.approx(1e-9)

    def test_reference_bank_phases(self):
        bank = reference_bank(4, frequency=1e9)
        phases = [ref.phase for ref in bank]
        assert phases == pytest.approx([0, math.pi / 2, math.pi, 3 * math.pi / 2])

    def test_reference_validation(self):
        with pytest.raises(CircuitError):
            ReferenceSignal(frequency=0.0)
        with pytest.raises(CircuitError):
            reference_bank(1)


class TestPhaseReadout:
    def test_four_phase_sampling(self):
        readout = PhaseReadout(num_phases=4)
        phases = np.array([0.02, np.pi / 2 + 0.02, np.pi - 0.02, 3 * np.pi / 2])
        assert np.array_equal(readout.sample_phases(phases), [0, 1, 2, 3])

    def test_one_hot_pattern(self):
        readout = PhaseReadout(num_phases=4)
        pattern = readout.one_hot(np.pi)
        assert pattern.tolist() == [0, 0, 1, 0]

    def test_common_mode_offset_removed(self):
        readout = PhaseReadout(num_phases=4)
        phases = np.array([0.0, np.pi / 2, np.pi]) + 0.4
        assert np.array_equal(readout.sample_phases(phases, offset=0.4), [0, 1, 2])

    def test_ambiguous_count(self):
        readout = PhaseReadout(num_phases=2, ambiguity_window=np.pi / 8)
        readout.sample_phases(np.array([np.pi / 2 - 0.01, 0.0]))
        assert readout.last_ambiguous_count == 1

    def test_binary_readout(self):
        phases = np.array([0.1, np.pi - 0.1, np.pi + 0.3, 2 * np.pi - 0.1])
        assert np.array_equal(binary_readout(phases), [0, 1, 1, 0])

    def test_dff_bank_size(self):
        assert len(PhaseReadout(num_phases=4).dff_bank()) == 4

    def test_validation(self):
        with pytest.raises(CircuitError):
            PhaseReadout(num_phases=1)


class TestShilMux:
    def test_selection(self):
        mux = ShilMux(shil_a=shil1(), shil_b=shil2())
        assert mux.active_source is None  # disabled by default
        mux.set_enabled(True)
        assert mux.active_source is mux.shil_a
        mux.set_select(1)
        assert mux.active_source is mux.shil_b
        assert mux.fundamental_offset() == pytest.approx(np.pi / 2)

    def test_injection_strength(self):
        mux = ShilMux(shil_a=shil1(strength=0.3), shil_b=shil2(strength=0.3))
        assert mux.injection_strength() == 0.0
        mux.set_enabled(True)
        assert mux.injection_strength() == pytest.approx(0.3)

    def test_invalid_select(self):
        mux = ShilMux(shil_a=shil1(), shil_b=shil2())
        with pytest.raises(CircuitError):
            mux.set_select(2)
        with pytest.raises(CircuitError):
            ShilMux(shil_a=shil1(), shil_b=shil2(), select=3)


class TestControlSchedule:
    def test_paper_timing_totals_60ns(self):
        plan = TimingPlan()
        assert as_ns(plan.total_for_stages(2)) == pytest.approx(60.0)
        assert as_ns(msropm_schedule().total_duration) == pytest.approx(60.0)

    def test_schedule_structure(self):
        schedule = msropm_schedule()
        kinds = [interval.kind for interval in schedule.intervals]
        assert kinds == [
            StageKind.INITIALIZE,
            StageKind.ANNEAL,
            StageKind.SHIL_LOCK,
            StageKind.INITIALIZE,
            StageKind.ANNEAL,
            StageKind.SHIL_LOCK,
        ]
        final = schedule.intervals[-1]
        assert final.control.dual_shil
        assert final.control.respect_partition

    def test_interval_at(self):
        schedule = msropm_schedule()
        assert schedule.interval_at(ns(1.0)).label == "init-1"
        assert schedule.interval_at(ns(10.0)).label == "anneal-1"
        assert schedule.interval_at(ns(59.0)).label == "shil-2"
        with pytest.raises(StageError):
            schedule.interval_at(ns(61.0))
        with pytest.raises(StageError):
            schedule.interval_at(-1.0)

    def test_boundaries_monotone(self):
        boundaries = msropm_schedule().boundaries()
        assert boundaries == sorted(boundaries)
        assert len(boundaries) == 6

    def test_labelled_lookup(self):
        schedule = msropm_schedule()
        assert schedule.labelled("anneal-2") is not None
        assert schedule.labelled("missing") is None

    def test_multi_stage_schedule_three_stages(self):
        schedule = multi_stage_schedule(3)
        assert len(schedule.intervals) == 9
        assert as_ns(schedule.total_duration) == pytest.approx(90.0)
        assert schedule.intervals[-1].control.dual_shil

    def test_multi_stage_schedule_single_stage(self):
        schedule = multi_stage_schedule(1)
        assert not schedule.intervals[-1].control.dual_shil

    def test_validation(self):
        with pytest.raises(StageError):
            multi_stage_schedule(0)
        with pytest.raises(StageError):
            TimingPlan(initialization=0.0)
        with pytest.raises(StageError):
            StageInterval(kind=StageKind.ANNEAL, duration=0.0, control=ControlState())


class TestPowerModel:
    def test_total_power_positive_and_monotone(self):
        model = PowerModel()
        small = model.total_power(49, 156)
        large = model.total_power(2116, 8372)
        assert 0 < small < large

    def test_breakdown_sums_to_total(self):
        model = PowerModel()
        breakdown = model.power_breakdown(400, 1482)
        assert sum(breakdown.values()) == pytest.approx(model.total_power(400, 1482))

    def test_power_tracks_paper_magnitudes(self):
        """The modeled power should land within 2x of every Table 1 entry."""
        model = PowerModel()
        sides = {49: 7, 400: 20, 1024: 32, 2116: 46}
        for nodes, paper_mw in PAPER_POWER_MW.items():
            graph = kings_graph(sides[nodes], sides[nodes])
            modeled = model.total_power_mw(graph.num_nodes, graph.num_edges)
            assert modeled == pytest.approx(paper_mw, rel=1.0)

    def test_validation(self):
        with pytest.raises(CircuitError):
            PowerModel(oscillator_activity=1.5)
        with pytest.raises(CircuitError):
            PowerModel().total_power(-1, 0)

    def test_energy_per_solution(self):
        assert energy_per_solution(0.2834, 60e-9) == pytest.approx(0.2834 * 60e-9)
        with pytest.raises(CircuitError):
            energy_per_solution(-1.0, 1.0)


class TestFabricNetlist:
    def test_block_counts(self):
        graph = kings_graph(4, 4)
        netlist = FabricNetlist(graph=graph)
        assert netlist.num_oscillators == 16
        assert netlist.num_couplings == graph.num_edges

    def test_partition_gating(self):
        graph = kings_graph(3, 3)
        netlist = FabricNetlist(graph=graph)
        labels = {node: (node[0] % 2) for node in graph.nodes}
        gated = netlist.apply_partition_gating(labels)
        assert gated > 0
        matrix_partitioned = netlist.coupling_matrix(respect_partition=True)
        matrix_full = netlist.coupling_matrix(respect_partition=False)
        assert matrix_partitioned.nnz < matrix_full.nnz
        # SHIL_SEL follows the partition labels.
        selects = netlist.shil_selects()
        offsets = netlist.shil_offsets()
        assert set(np.unique(selects)) == {0, 1}
        assert np.allclose(np.unique(offsets), [0.0, np.pi / 2])
        netlist.clear_partition_gating()
        assert netlist.coupling_matrix().nnz == matrix_full.nnz

    def test_partition_gating_requires_full_labels(self):
        netlist = FabricNetlist(graph=kings_graph(2, 2))
        with pytest.raises(MappingError):
            netlist.apply_partition_gating({(0, 0): 0})

    def test_coupling_element_lookup(self):
        graph = kings_graph(2, 2)
        netlist = FabricNetlist(graph=graph)
        assert netlist.coupling_element((0, 0), (0, 1)).strength == pytest.approx(0.1)
        with pytest.raises(MappingError):
            netlist.coupling_element((0, 0), (5, 5))

    def test_shil_sources(self):
        netlist = FabricNetlist(graph=kings_graph(2, 2))
        source1, source2 = netlist.shil_sources
        assert source1.fundamental_offset == 0.0
        assert source2.fundamental_offset == pytest.approx(np.pi / 2)

    def test_empty_graph_rejected(self):
        from repro.graphs import Graph

        with pytest.raises(MappingError):
            FabricNetlist(graph=Graph())
