"""Tests for the software and prior-work baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ColoringError, ConfigurationError
from repro.baselines import (
    AnnealingSchedule,
    ROIMMaxCut,
    SingleStageROPM,
    anneal_coloring,
    anneal_maxcut,
    exact_coloring,
    exact_coloring_backtracking,
    exact_coloring_sat,
    exact_kings_coloring,
    solve_onehot_coloring,
    tabucol,
    TabuParameters,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    hexagonal_graph,
    kings_graph,
)
from repro.ising import MaxCutProblem, kings_graph_reference_cut


class TestAnnealingSchedule:
    def test_temperature_endpoints(self):
        schedule = AnnealingSchedule(initial_temperature=2.0, final_temperature=0.02, sweeps=100)
        assert schedule.temperature(0) == pytest.approx(2.0)
        assert schedule.temperature(99) == pytest.approx(0.02)
        assert schedule.temperature(50) < schedule.temperature(10)

    def test_single_sweep(self):
        assert AnnealingSchedule(sweeps=1).temperature(0) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(initial_temperature=0.0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(final_temperature=5.0, initial_temperature=1.0)
        with pytest.raises(ConfigurationError):
            AnnealingSchedule(sweeps=0)


class TestSimulatedAnnealing:
    def test_sa_colors_kings_graph_well(self):
        graph = kings_graph(5, 5)
        coloring = anneal_coloring(graph, 4, seed=1)
        assert coloring.covers(graph)
        assert coloring.accuracy(graph) >= 0.95

    def test_sa_finds_proper_coloring_of_easy_graph(self):
        graph = cycle_graph(8)
        coloring = anneal_coloring(graph, 2, seed=2)
        assert coloring.is_proper(graph)

    def test_sa_respects_initial_coloring(self):
        graph = kings_graph(4, 4)
        from repro.graphs import kings_graph_reference_coloring

        initial = kings_graph_reference_coloring(4, 4)
        coloring = anneal_coloring(graph, 4, seed=3, initial=initial)
        assert coloring.is_proper(graph)  # cannot do worse than a zero-conflict start

    def test_sa_validation(self):
        with pytest.raises(ConfigurationError):
            anneal_coloring(cycle_graph(4), 1)

    def test_sa_maxcut_beats_random_on_average(self):
        graph = kings_graph(5, 5)
        problem = MaxCutProblem(graph)
        partition = anneal_maxcut(problem, seed=4)
        assert problem.cut_value(partition) >= 0.85 * kings_graph_reference_cut(5, 5)

    def test_sa_maxcut_bipartite_optimal(self):
        graph = grid_graph(4, 4)
        problem = MaxCutProblem(graph)
        partition = anneal_maxcut(problem, seed=5)
        assert problem.cut_value(partition) == graph.num_edges


class TestTabucol:
    def test_tabucol_solves_kings_four_coloring(self):
        graph = kings_graph(5, 5)
        coloring = tabucol(graph, 4, seed=1)
        assert coloring.is_proper(graph)

    def test_tabucol_cannot_three_color_kings(self):
        graph = kings_graph(4, 4)
        coloring = tabucol(graph, 3, seed=2, parameters=TabuParameters(max_iterations=500))
        assert not coloring.is_proper(graph)
        assert coloring.accuracy(graph) > 0.7  # still a decent approximation

    def test_tabucol_with_initial(self):
        from repro.graphs import kings_graph_reference_coloring

        graph = kings_graph(4, 4)
        coloring = tabucol(graph, 4, seed=3, initial=kings_graph_reference_coloring(4, 4))
        assert coloring.is_proper(graph)

    def test_tabucol_validation(self):
        with pytest.raises(ConfigurationError):
            tabucol(cycle_graph(4), 1)
        with pytest.raises(ConfigurationError):
            TabuParameters(max_iterations=0)


class TestExactBaselines:
    def test_exact_kings_closed_form(self):
        graph = kings_graph(6, 6)
        coloring = exact_kings_coloring(graph)
        assert coloring.is_proper(graph)

    def test_exact_kings_rejects_non_kings(self):
        with pytest.raises(ColoringError):
            exact_kings_coloring(grid_graph(4, 4))

    def test_backtracking_matches_sat_on_small_graphs(self):
        for graph in (cycle_graph(5), kings_graph(3, 3), complete_graph(4)):
            for colors in (2, 3, 4):
                by_backtracking = exact_coloring_backtracking(graph, colors)
                by_sat = exact_coloring_sat(graph, colors)
                assert (by_backtracking is None) == (by_sat is None)
                if by_backtracking is not None:
                    assert by_backtracking.is_proper(graph)

    def test_backtracking_empty_graph(self):
        from repro.graphs import Graph

        assert exact_coloring_backtracking(Graph(), 3) is not None

    def test_exact_coloring_auto_dispatch(self):
        kings = kings_graph(5, 5)
        assert exact_coloring(kings, 4).is_proper(kings)
        cycle = cycle_graph(7)
        assert exact_coloring(cycle, 3).is_proper(cycle)
        assert exact_coloring(cycle, 2) is None

    def test_exact_coloring_engine_selection(self):
        graph = cycle_graph(6)
        assert exact_coloring(graph, 2, prefer="sat").is_proper(graph)
        assert exact_coloring(graph, 2, prefer="backtracking").is_proper(graph)
        with pytest.raises(ColoringError):
            exact_coloring(graph, 2, prefer="quantum")


class TestSingleStageROPM:
    def test_three_coloring_of_triangular_lattice(self, fast_config):
        """A 3-SHIL ROPM should 3-color a (3-chromatic) triangular lattice reasonably well."""
        graph = hexagonal_graph(4, 4)
        machine = SingleStageROPM(graph, num_colors=3, config=fast_config)
        result = machine.solve(iterations=4, seed=5)
        assert result.best_accuracy >= 0.8
        assert all(coloring.num_colors == 3 for coloring in result.colorings)

    def test_run_time_is_single_stage(self, fast_config):
        machine = SingleStageROPM(kings_graph(3, 3), num_colors=3, config=fast_config)
        assert machine.run_time == pytest.approx(fast_config.timing.total_for_stages(1))

    def test_validation(self, fast_config):
        from repro.graphs import Graph

        with pytest.raises(ConfigurationError):
            SingleStageROPM(kings_graph(3, 3), num_colors=1, config=fast_config)
        with pytest.raises(ConfigurationError):
            SingleStageROPM(Graph(), num_colors=3, config=fast_config)
        machine = SingleStageROPM(kings_graph(3, 3), num_colors=3, config=fast_config)
        with pytest.raises(ConfigurationError):
            machine.solve(iterations=0)


class TestROIM:
    def test_maxcut_on_bipartite_graph_is_near_perfect(self, fast_config):
        graph = grid_graph(5, 5)
        roim = ROIMMaxCut(graph, config=fast_config)
        best = roim.best_of(iterations=3, seed=1)
        assert best.accuracy >= 0.9

    def test_kings_graph_cut_quality(self, fast_config):
        graph = kings_graph(5, 5)
        roim = ROIMMaxCut(graph, config=fast_config, reference_cut=kings_graph_reference_cut(5, 5))
        best = roim.best_of(iterations=3, seed=2)
        assert best.accuracy >= 0.85
        assert best.partition.covers(graph)

    def test_run_time_and_validation(self, fast_config):
        from repro.graphs import Graph

        roim = ROIMMaxCut(kings_graph(3, 3), config=fast_config)
        assert roim.run_time == pytest.approx(fast_config.timing.total_for_stages(1))
        with pytest.raises(ConfigurationError):
            ROIMMaxCut(Graph(), config=fast_config)
        with pytest.raises(ConfigurationError):
            roim.solve(iterations=0)


class TestOneHotBaseline:
    def test_onehot_solves_small_coloring(self):
        graph = cycle_graph(6)
        result = solve_onehot_coloring(graph, num_colors=2, seed=1,
                                       schedule=AnnealingSchedule(sweeps=150))
        assert result.num_spins == 12
        assert result.accuracy >= 0.8
        assert result.coloring.covers(graph)

    def test_onehot_spin_overhead_vs_potts(self):
        """The one-hot encoding needs K times more spins than the Potts formulation."""
        graph = kings_graph(3, 3)
        result = solve_onehot_coloring(graph, num_colors=4, seed=2,
                                       schedule=AnnealingSchedule(sweeps=30))
        assert result.num_spins == 4 * graph.num_nodes

    def test_onehot_validation(self):
        with pytest.raises(ConfigurationError):
            solve_onehot_coloring(cycle_graph(3), num_colors=1)
