"""Tests for the self-annealing (energy landscape) diagnostics experiment."""

from __future__ import annotations

import pytest

from repro.experiments import render_energy_landscape, run_energy_landscape


@pytest.fixture(scope="module")
def landscape(request):
    """One instrumented run on a small board with a fast configuration."""
    from repro.circuit.control import TimingPlan
    from repro.core.config import MSROPMConfig
    from repro.units import ns

    config = MSROPMConfig(
        num_colors=4,
        timing=TimingPlan(initialization=ns(1.0), annealing=ns(8.0), shil_settling=ns(3.0)),
        time_step=0.05e-9,
        record_every=1,
        seed=21,
    )
    return run_energy_landscape(rows=4, cols=4, config=config, seed=21)


class TestEnergyLandscape:
    def test_interval_structure(self, landscape):
        labels = [item.label for item in landscape.intervals]
        assert labels == ["init-1", "anneal-1", "shil-1", "init-2", "anneal-2", "shil-2"]
        for item in landscape.intervals:
            assert item.end_time > item.start_time

    def test_stage1_annealing_lowers_the_coupling_energy(self, landscape):
        """Self-annealing: the coupled interval must descend the vector-Potts energy."""
        anneal1 = landscape.interval("anneal-1")
        assert anneal1.energy_drop > 0.0
        assert landscape.total_energy_drop() > 0.0

    def test_shil_intervals_binarize_the_phases(self, landscape):
        """SHIL lock: the 2nd-harmonic order parameter must end near 1."""
        shil1 = landscape.interval("shil-1")
        shil2 = landscape.interval("shil-2")
        assert shil1.binarization_end > 0.9
        assert shil1.binarization_gain > 0.0
        # In the final stage the two partitions lock on shifted grids (0/180 and
        # 90/270), so the global second-harmonic order is lower than within one
        # partition but the phases still discretize well enough to read out.
        assert shil2.binarization_end >= 0.0
        assert landscape.accuracy >= 0.85

    def test_initial_phases_are_not_binarized(self, landscape):
        init1 = landscape.interval("init-1")
        assert init1.binarization_start < 0.6

    def test_unknown_interval_label(self, landscape):
        with pytest.raises(KeyError):
            landscape.interval("anneal-9")

    def test_render(self, landscape):
        text = render_energy_landscape(landscape)
        assert "Self-annealing diagnostics" in text
        assert "anneal-2" in text
        assert "accuracy" in text
