"""Adversarial ledger robustness: the journal under hostile conditions.

The ledger's durability story rests on committed-on-newline framing. These
tests attack it the ways production does: a writer SIGKILLed mid-append
(torn tail), bytes rotted on disk (tampered committed lines), two writers
interleaving appends to one journal, and old journals read by new code
(v1 -> v2 replay compatibility).
"""

from __future__ import annotations

import json

import pytest

from repro.campaigns import RunLedger
from repro.campaigns.ledger import LEDGER_SCHEMA_VERSION
from repro.exceptions import ConfigurationError, ReproError
from repro.obs import CampaignProjection, LedgerFollower, project_state


def _started(ledger, run_id):
    ledger.append(run_id, {"event": "stage_started", "stage": "s"})


# ----------------------------------------------------------------------
# Truncated mid-event (torn tail)
# ----------------------------------------------------------------------
class TestTornTail:
    def _run_with_torn_tail(self, tmp_path, fragment):
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("toy", {})
        _started(ledger, run_id)
        with open(ledger.path(run_id), "a") as handle:
            handle.write(fragment)  # crash mid-append: no trailing newline
        return ledger, run_id

    def test_unparseable_fragment_is_invisible(self, tmp_path):
        ledger, run_id = self._run_with_torn_tail(
            tmp_path, '{"event": "stage_pas'
        )
        kinds = [event["event"] for event in ledger.events(run_id)]
        assert kinds == ["campaign_started", "stage_started"]

    def test_parseable_but_uncommitted_fragment_is_invisible(self, tmp_path):
        # The fragment is complete, valid JSON — but without its newline it
        # was never committed, so it must not count.
        ledger, run_id = self._run_with_torn_tail(
            tmp_path, '{"event": "stage_passed", "stage": "s", "ts": 1.0}'
        )
        kinds = [event["event"] for event in ledger.events(run_id)]
        assert kinds == ["campaign_started", "stage_started"]
        assert ledger.replay(run_id).stage_states == {"s": "running"}

    def test_append_after_torn_tail_repairs_the_journal(self, tmp_path):
        ledger, run_id = self._run_with_torn_tail(tmp_path, '{"event": "stage_pas')
        ledger.append(run_id, {"event": "stage_passed", "stage": "s"})
        kinds = [event["event"] for event in ledger.events(run_id)]
        assert kinds == ["campaign_started", "stage_started", "stage_passed"]
        raw = ledger.path(run_id).read_text()
        assert "stage_pas{" not in raw  # fragment dropped, not concatenated

    def test_follower_holds_fragment_until_newline(self, tmp_path):
        ledger, run_id = self._run_with_torn_tail(
            tmp_path, '{"event": "stage_passed", "stage": "s", "ts": 1.0}'
        )
        follower = LedgerFollower(ledger.path(run_id))
        assert [e["event"] for e in follower.poll()] == [
            "campaign_started",
            "stage_started",
        ]
        with open(ledger.path(run_id), "a") as handle:
            handle.write("\n")
        assert [e["event"] for e in follower.poll()] == ["stage_passed"]


# ----------------------------------------------------------------------
# Tampered committed lines
# ----------------------------------------------------------------------
class TestTamperedJournal:
    def _tampered(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("toy", {})
        _started(ledger, run_id)
        ledger.append(run_id, {"event": "stage_passed", "stage": "s"})
        path = ledger.path(run_id)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # bit-rot a committed line
        path.write_text("\n".join(lines) + "\n")
        return ledger, run_id

    def test_events_raises_on_committed_corruption(self, tmp_path):
        ledger, run_id = self._tampered(tmp_path)
        with pytest.raises(ReproError, match="malformed event at line 2"):
            ledger.events(run_id)

    def test_scan_runs_flags_not_hides(self, tmp_path):
        ledger, run_id = self._tampered(tmp_path)
        healthy = ledger.start_run("toy", {})
        states, corrupt = ledger.scan_runs()
        assert [state.run_id for state in states] == [healthy]
        assert [entry["run_id"] for entry in corrupt] == [run_id]
        assert "malformed" in corrupt[0]["error"]

    def test_follower_skips_and_counts_what_events_rejects(self, tmp_path):
        # The strict reader (replay/resume) refuses the journal; the watcher
        # must instead keep watching and surface the damage as a counter.
        ledger, run_id = self._tampered(tmp_path)
        follower = LedgerFollower(ledger.path(run_id))
        kinds = [event["event"] for event in follower.poll()]
        assert kinds == ["campaign_started", "stage_passed"]
        assert follower.malformed == 1
        projection = CampaignProjection(run_id)
        for event in follower.poll() or []:
            projection.apply(event)


# ----------------------------------------------------------------------
# Interleaved writers
# ----------------------------------------------------------------------
class TestInterleavedWriters:
    def test_two_handles_one_journal(self, tmp_path):
        first = RunLedger(tmp_path)
        second = RunLedger(tmp_path)  # a second process's view of the root
        run_id = first.start_run("toy", {})
        first.append(run_id, {"event": "stage_started", "stage": "a"})
        second.append(run_id, {"event": "stage_started", "stage": "b"})
        first.append(
            run_id, {"event": "jobs_finished", "stage": "a", "job_hashes": ["h1"]}
        )
        second.append(
            run_id, {"event": "jobs_finished", "stage": "b", "job_hashes": ["h2"]}
        )
        first.append(run_id, {"event": "stage_passed", "stage": "a"})
        second.append(run_id, {"event": "stage_passed", "stage": "b"})
        state = first.replay(run_id)
        assert state.stage_states == {"a": "passed", "b": "passed"}
        assert state.finished_jobs == {"a": ["h1"], "b": ["h2"]}
        # Every line is whole: O_APPEND + single write never interleaves bytes.
        for line in first.path(run_id).read_text().splitlines():
            json.loads(line)

    def test_duplicate_progress_from_retrying_writer_dedups(self, tmp_path):
        # A BrokenProcessPool retry re-announces jobs already reported; the
        # replay must count each hash once.
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("toy", {})
        _started(ledger, run_id)
        for _ in range(2):
            ledger.append(
                run_id,
                {"event": "jobs_progress", "stage": "s", "job_hashes": ["h1", "h2"]},
            )
        ledger.append(
            run_id, {"event": "jobs_finished", "stage": "s", "job_hashes": ["h1", "h2"]}
        )
        state = ledger.replay(run_id)
        assert state.finished_jobs == {"s": ["h1", "h2"]}
        assert project_state(state).jobs_done == 2


# ----------------------------------------------------------------------
# Write-time validation (the guard that keeps shapes honest)
# ----------------------------------------------------------------------
class TestWriteValidation:
    def test_unknown_event_kind_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("toy", {})
        with pytest.raises(ConfigurationError, match="unknown ledger event kind"):
            ledger.append(run_id, {"event": "stage_exploded", "stage": "s"})

    def test_undeclared_field_rejected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("toy", {})
        with pytest.raises(ConfigurationError, match="undeclared field"):
            ledger.append(
                run_id, {"event": "stage_passed", "stage": "s", "mood": "great"}
            )


# ----------------------------------------------------------------------
# v1 -> v2 replay compatibility
# ----------------------------------------------------------------------
def _write_v1_journal(tmp_path, run_id="legacy-run", with_ts=True):
    """A journal exactly as the v1 ledger wrote it: no stage_planned, no
    jobs_progress, and (optionally) no ``ts`` stamps at all."""
    events = [
        {"event": "campaign_started", "ledger_schema": 1, "campaign": "toy",
         "params": {"seed": 4}, "runtime": {}},
        {"event": "stage_started", "stage": "s"},
        {"event": "jobs_finished", "stage": "s", "job_hashes": ["h1", "h2"]},
        {"event": "stage_passed", "stage": "s"},
        {"event": "campaign_finished"},
    ]
    if with_ts:
        for index, event in enumerate(events):
            event["ts"] = 1000.0 + index
    path = tmp_path / f"{run_id}.jsonl"
    path.write_text(
        "".join(json.dumps(event, sort_keys=True) + "\n" for event in events)
    )
    return run_id


class TestV1Compatibility:
    def test_v1_journal_replays_under_v2(self, tmp_path):
        run_id = _write_v1_journal(tmp_path)
        state = RunLedger(tmp_path).replay(run_id)
        assert state.finished
        assert state.stage_states == {"s": "passed"}
        assert state.finished_jobs == {"s": ["h1", "h2"]}
        assert state.planned_jobs == {}  # v2-only signal simply absent
        assert state.created_at == 1000.0

    def test_v1_journal_projects_and_reports(self, tmp_path):
        run_id = _write_v1_journal(tmp_path)
        projection = project_state(RunLedger(tmp_path).replay(run_id))
        assert projection.status == "finished"
        assert projection.jobs_done == 2
        assert projection.jobs_planned is None  # never planned -> honest "?"
        assert projection.eta_seconds() == 0.0  # terminal
        (stage,) = projection.stages
        assert stage.state == "passed"
        assert stage.completion == 1.0  # passed stage without a plan is done

    def test_missing_head_ts_falls_back_to_mtime(self, tmp_path):
        # The old behavior pinned created_at to 0.0, sorting the run *last*
        # in `campaign list` despite being the newest journal on disk.
        import os

        run_id = _write_v1_journal(tmp_path, run_id="no-ts", with_ts=False)
        ledger = RunLedger(tmp_path)
        state = ledger.replay(run_id)
        assert state.created_at == pytest.approx(
            os.path.getmtime(ledger.path(run_id))
        )
        assert state.created_at > 0.0

    def test_mixed_age_runs_sort_by_honest_creation_signal(self, tmp_path):
        ledger = RunLedger(tmp_path)
        _write_v1_journal(tmp_path, run_id="no-ts", with_ts=False)
        stamped = ledger.start_run("toy", {})  # stamped with real wall time
        runs = ledger.list_runs()
        # Both were written "now"; neither may sink to the epoch-0 bottom.
        assert {state.run_id for state in runs} == {"no-ts", stamped}
        assert all(state.created_at > 0.0 for state in runs)

    def test_current_schema_version_is_two(self):
        assert LEDGER_SCHEMA_VERSION == 2
