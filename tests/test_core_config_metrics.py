"""Tests for the MSROPM configuration, metrics and result containers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AnalysisError, ConfigurationError
from repro.circuit import TimingPlan
from repro.core import (
    MSROPMConfig,
    IterationResult,
    SolveResult,
    StageResult,
    accuracy_statistics,
    coloring_accuracy,
    hamming_distance,
    maxcut_accuracy,
    min_hamming_distance,
    pairwise_hamming_distances,
    stage_correlation,
    success_probability,
)
from repro.graphs import (
    Bipartition,
    Coloring,
    balanced_halves,
    kings_graph,
    kings_graph_reference_coloring,
    random_coloring,
)
from repro.units import as_ns, ns


class TestConfig:
    def test_defaults_match_paper(self):
        config = MSROPMConfig()
        assert config.num_colors == 4
        assert config.num_stages == 2
        assert as_ns(config.total_run_time) == pytest.approx(60.0)
        assert config.oscillator_frequency == pytest.approx(1.3e9)

    def test_power_of_two_colors_required(self):
        with pytest.raises(ConfigurationError):
            MSROPMConfig(num_colors=3)
        with pytest.raises(ConfigurationError):
            MSROPMConfig(num_colors=1)
        assert MSROPMConfig(num_colors=8).num_stages == 3

    def test_rates_scale_with_frequency(self):
        config = MSROPMConfig()
        assert config.coupling_rate == pytest.approx(config.coupling_strength * 2 * np.pi * 1.3e9)
        assert config.shil_rate == pytest.approx(config.shil_strength * 2 * np.pi * 1.3e9)

    def test_coupling_strength_cap(self):
        """Section 2.3: too-strong couplings halt the oscillation."""
        with pytest.raises(ConfigurationError):
            MSROPMConfig(coupling_strength=0.9)
        with pytest.raises(ConfigurationError):
            MSROPMConfig(coupling_strength=0.0)

    def test_shil_strength_cap(self):
        """Section 2.3: too-strong SHIL deforms the waveforms."""
        with pytest.raises(ConfigurationError):
            MSROPMConfig(shil_strength=1.5)

    def test_eight_color_run_time(self):
        config = MSROPMConfig(num_colors=8)
        assert as_ns(config.total_run_time) == pytest.approx(90.0)

    def test_phase_noise_diffusion_positive(self):
        assert MSROPMConfig().phase_noise_diffusion > 0
        assert MSROPMConfig(jitter_fraction=0.0).phase_noise_diffusion == 0.0

    def test_with_updates_and_seed(self):
        config = MSROPMConfig(seed=1)
        assert config.with_seed(7).seed == 7
        assert config.with_updates(coupling_strength=0.2).coupling_strength == 0.2
        with pytest.raises(ConfigurationError):
            config.with_updates(coupling_strength=0.9)

    def test_other_validations(self):
        with pytest.raises(ConfigurationError):
            MSROPMConfig(time_step=0.0)
        with pytest.raises(ConfigurationError):
            MSROPMConfig(record_every=0)
        with pytest.raises(ConfigurationError):
            MSROPMConfig(jitter_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            MSROPMConfig(stage2_reinit_jitter=-1.0)
        with pytest.raises(ConfigurationError):
            MSROPMConfig(oscillator_frequency=0.0)


class TestMetrics:
    def test_coloring_accuracy_reference(self):
        graph = kings_graph(5, 5)
        reference = kings_graph_reference_coloring(5, 5)
        assert coloring_accuracy(graph, reference) == 1.0

    def test_coloring_accuracy_requires_coverage(self):
        graph = kings_graph(3, 3)
        with pytest.raises(AnalysisError):
            coloring_accuracy(graph, Coloring(assignment={(0, 0): 0}, num_colors=4))

    def test_maxcut_accuracy(self):
        graph = kings_graph(4, 4)
        partition = balanced_halves(graph)
        accuracy = maxcut_accuracy(graph, partition, reference_cut=graph.num_edges)
        assert 0.0 <= accuracy <= 1.0

    def test_maxcut_accuracy_clipped_at_one(self):
        graph = kings_graph(4, 4)
        partition = balanced_halves(graph)
        assert maxcut_accuracy(graph, partition, reference_cut=1) == 1.0

    def test_hamming_distance_basic(self):
        graph = kings_graph(3, 3)
        a = kings_graph_reference_coloring(3, 3)
        assert hamming_distance(a, a, graph.nodes) == 0.0
        b = a.relabeled({0: 1, 1: 0, 2: 3, 3: 2})
        assert hamming_distance(a, b, graph.nodes) == 1.0
        assert min_hamming_distance(a, b, graph.nodes) == 0.0

    def test_min_hamming_distance_detects_real_differences(self):
        graph = kings_graph(3, 3)
        a = kings_graph_reference_coloring(3, 3)
        changed = dict(a.assignment)
        changed[(0, 0)] = (changed[(0, 0)] + 1) % 4
        b = Coloring(assignment=changed, num_colors=4)
        assert min_hamming_distance(a, b, graph.nodes) == pytest.approx(1.0 / 9.0)

    def test_min_hamming_color_limit(self):
        graph = kings_graph(2, 2)
        coloring = Coloring(assignment={node: 0 for node in graph.nodes}, num_colors=7)
        with pytest.raises(AnalysisError):
            min_hamming_distance(coloring, coloring, graph.nodes)

    def test_hamming_requires_nodes(self):
        coloring = Coloring(assignment={1: 0}, num_colors=2)
        with pytest.raises(AnalysisError):
            hamming_distance(coloring, coloring, [])

    def test_pairwise_hamming_count(self):
        graph = kings_graph(3, 3)
        colorings = [random_coloring(graph, 4, seed=i) for i in range(5)]
        distances = pairwise_hamming_distances(colorings, graph.nodes)
        assert distances.shape == (10,)
        assert np.all((0.0 <= distances) & (distances <= 1.0))
        assert pairwise_hamming_distances(colorings[:1], graph.nodes).size == 0

    def test_accuracy_statistics(self):
        stats = accuracy_statistics([0.9, 1.0, 0.95])
        assert stats["best"] == 1.0
        assert stats["worst"] == 0.9
        assert stats["count"] == 3
        with pytest.raises(AnalysisError):
            accuracy_statistics([])

    def test_stage_correlation(self):
        stage1 = [0.8, 0.9, 1.0, 0.95]
        final = [0.82, 0.91, 0.99, 0.96]
        assert stage_correlation(stage1, final) > 0.9
        assert stage_correlation([0.5, 0.5, 0.5], [0.4, 0.6, 0.8]) == 0.0
        with pytest.raises(AnalysisError):
            stage_correlation([1.0], [1.0])

    def test_success_probability(self):
        assert success_probability([1.0, 0.9, 1.0, 0.8]) == pytest.approx(0.5)
        assert success_probability([0.97, 0.99], threshold=0.95) == 1.0
        with pytest.raises(AnalysisError):
            success_probability([])

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_min_hamming_is_lower_bound_and_metric_like(self, seed):
        graph = kings_graph(3, 3)
        a = random_coloring(graph, 4, seed=seed)
        b = random_coloring(graph, 4, seed=seed + 1000)
        plain = hamming_distance(a, b, graph.nodes)
        invariant = min_hamming_distance(a, b, graph.nodes)
        assert invariant <= plain + 1e-12
        assert min_hamming_distance(a, a, graph.nodes) == 0.0


def _iteration(index, accuracy, stage1_accuracy, graph):
    coloring = kings_graph_reference_coloring(3, 3)
    stage = StageResult(
        stage_index=1,
        partition=balanced_halves(graph),
        cut_value=10,
        reference_cut=20,
        accuracy=stage1_accuracy,
    )
    return IterationResult(
        iteration_index=index,
        seed=index,
        coloring=coloring,
        accuracy=accuracy,
        stage_results=[stage],
        run_time=60e-9,
    )


class TestResults:
    def test_solve_result_aggregates(self):
        graph = kings_graph(3, 3)
        iterations = [
            _iteration(0, 0.95, 0.9, graph),
            _iteration(1, 1.0, 0.97, graph),
            _iteration(2, 0.97, 0.93, graph),
        ]
        result = SolveResult(graph=graph, num_colors=4, iterations=iterations)
        assert result.num_iterations == 3
        assert result.best_accuracy == 1.0
        assert result.best.iteration_index == 1
        assert result.num_exact_solutions == 1
        assert result.accuracies.tolist() == [0.95, 1.0, 0.97]
        assert result.stage1_accuracies.tolist() == [0.9, 0.97, 0.93]
        assert result.accuracy_summary()["mean"] == pytest.approx(np.mean([0.95, 1.0, 0.97]))
        assert result.stage_correlation() > 0.9
        assert result.average_run_time() == pytest.approx(60e-9)
        assert result.hamming_distances().shape == (3,)

    def test_solve_result_requires_iterations(self):
        with pytest.raises(AnalysisError):
            SolveResult(graph=kings_graph(2, 2), num_colors=4, iterations=[])

    def test_iteration_result_flags(self):
        graph = kings_graph(3, 3)
        exact = _iteration(0, 1.0, 1.0, graph)
        assert exact.is_exact
        assert exact.stage1_accuracy == 1.0
        no_stage = IterationResult(
            iteration_index=0, seed=0, coloring=kings_graph_reference_coloring(3, 3), accuracy=0.9
        )
        assert no_stage.stage1_accuracy == 1.0
