"""Tests for the campaign orchestrator: stage machine, ledger, resume,
baseline jobs, and the new workload families riding this PR.

The load-bearing properties are the acceptance criteria:

* the stage machine rejects illegal transitions, enforces prerequisites and
  cascades failure onto dependents,
* a campaign killed mid-run resumes from its ledger with completed stages'
  jobs served from the cache (zero recomputation) and byte-identical final
  results,
* baseline jobs are bit-identical across worker counts and cache like any
  other job,
* weighted max-cut weights are seed-derived and cross-process stable, and
  the raw (unclipped) stage-1 accuracy survives serialization.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import uuid
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.campaigns import (
    CampaignError,
    CampaignSpec,
    CampaignStage,
    InvalidTransitionError,
    PrerequisiteNotMetError,
    RunLedger,
    StageMachine,
    StageState,
    get_campaign,
    ledger_root,
    register_campaign,
    resume_campaign,
    run_campaign,
)
from repro.core.config import MSROPMConfig
from repro.runtime.baselines import BaselineJob
from repro.runtime.jobs import JOB_SCHEMA_VERSION, GeneratedGraphSpec, SolveJob
from repro.runtime.runner import ExperimentRunner
from repro.runtime.scheduler import JobScheduler
from repro.workloads import default_workload, get_family
from repro.workloads.families import wmaxcut_edge_weights


# ----------------------------------------------------------------------
# Stage machine
# ----------------------------------------------------------------------
class TestStageMachine:
    PREREQS = {"s0": (), "s1": ("s0",), "s2": ("s1",), "side": ()}

    def test_initial_states(self):
        machine = StageMachine(self.PREREQS)
        assert all(state is StageState.NOT_STARTED for state in machine.states().values())
        assert machine.order == ["s0", "s1", "s2", "side"]

    def test_legal_lifecycle(self):
        machine = StageMachine(self.PREREQS)
        record = machine.transition("s0", StageState.RUNNING)
        assert record.state_transition == "not_started->running"
        record = machine.transition("s0", StageState.PASSED)
        assert record.state_transition == "running->passed"
        assert machine.state("s0") is StageState.PASSED

    def test_invalid_transitions_rejected(self):
        machine = StageMachine(self.PREREQS)
        with pytest.raises(InvalidTransitionError):
            machine.transition("s0", StageState.PASSED)  # must run first
        machine.transition("s0", StageState.RUNNING)
        with pytest.raises(InvalidTransitionError):
            machine.transition("s0", StageState.RUNNING)  # already running
        machine.transition("s0", StageState.PASSED)
        with pytest.raises(InvalidTransitionError):
            machine.transition("s0", StageState.FAILED)  # terminal

    def test_prerequisite_enforcement(self):
        machine = StageMachine(self.PREREQS)
        with pytest.raises(PrerequisiteNotMetError):
            machine.transition("s1", StageState.RUNNING)
        machine.transition("s0", StageState.RUNNING)
        machine.transition("s0", StageState.PASSED)
        machine.transition("s1", StageState.RUNNING)  # now legal

    def test_cascade_on_failure_blocks_transitive_dependents(self):
        machine = StageMachine(self.PREREQS)
        machine.transition("s0", StageState.RUNNING)
        machine.transition("s0", StageState.FAILED)
        blocked = machine.cascade_failure("s0")
        assert blocked == ["s1", "s2"]  # transitive, topological order
        assert machine.state("s1") is StageState.BLOCKED
        assert machine.state("s2") is StageState.BLOCKED
        assert machine.state("side") is StageState.NOT_STARTED  # independent

    def test_unknown_prerequisite_and_cycles_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown stage"):
            StageMachine({"a": ("ghost",)})
        with pytest.raises(ConfigurationError, match="cycle"):
            StageMachine({"a": ("b",), "b": ("a",)})
        with pytest.raises(ConfigurationError, match="require itself"):
            StageMachine({"a": ("a",)})


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
class TestRunLedger:
    def test_append_and_replay(self, tmp_path):
        ledger = RunLedger(tmp_path / "campaigns")
        run_id = ledger.start_run("suite", {"scale": 0.5})
        ledger.append(run_id, {"event": "stage_started", "stage": "table1"})
        ledger.append(
            run_id, {"event": "jobs_finished", "stage": "table1", "job_hashes": ["a", "b"]}
        )
        ledger.append(run_id, {"event": "stage_passed", "stage": "table1"})
        state = ledger.replay(run_id)
        assert state.campaign == "suite"
        assert state.params == {"scale": 0.5}
        assert state.stage_states == {"table1": "passed"}
        assert state.finished_jobs == {"table1": ["a", "b"]}
        assert not state.finished

    def test_torn_tail_line_is_dropped(self, tmp_path):
        """A crash mid-append leaves a partial final line; replay must cope."""
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("suite", {})
        ledger.append(run_id, {"event": "stage_started", "stage": "s"})
        with open(ledger.path(run_id), "a", encoding="utf-8") as handle:
            handle.write('{"event": "stage_pas')  # torn write
        state = ledger.replay(run_id)
        assert state.stage_states == {"s": "running"}

    def test_append_after_torn_tail_truncates_the_fragment(self, tmp_path):
        """Appending to a journal with a torn tail must not concatenate onto
        the fragment — the uncommitted line is dropped, the new event lands
        clean, and the journal stays replayable forever after."""
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("suite", {})
        with open(ledger.path(run_id), "a", encoding="utf-8") as handle:
            handle.write('{"event": "stage_star')  # crash mid-append
        ledger.append(run_id, {"event": "stage_started", "stage": "s"})
        ledger.append(run_id, {"event": "stage_passed", "stage": "s"})
        state = ledger.replay(run_id)
        assert state.stage_states == {"s": "passed"}
        assert '"stage_star{' not in ledger.path(run_id).read_text(encoding="utf-8")

    def test_corrupt_middle_line_raises(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.start_run("suite", {})
        with open(ledger.path(run_id), "a", encoding="utf-8") as handle:
            handle.write("{broken\n")
            handle.write(json.dumps({"event": "stage_started", "stage": "s"}) + "\n")
        with pytest.raises(ReproError, match="malformed event"):
            ledger.replay(run_id)

    def test_duplicate_run_id_rejected_and_list_runs(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.start_run("suite", {}, run_id="one")
        with pytest.raises(ConfigurationError, match="already exists"):
            ledger.start_run("suite", {}, run_id="one")
        ledger.start_run("scenarios", {}, run_id="two")
        assert {state.run_id for state in ledger.list_runs()} == {"one", "two"}

    def test_unknown_run_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown campaign run"):
            RunLedger(tmp_path).replay("ghost")


# ----------------------------------------------------------------------
# Orchestrator on a tiny synthetic campaign
# ----------------------------------------------------------------------
def _toy_campaign(tmp_path: Path, fast_config: MSROPMConfig) -> CampaignSpec:
    """Two solve stages and a reporting stage, with a file-controlled failure."""
    from repro.runtime.jobs import KingsGraphSpec

    def plan_solves(context):
        return [
            SolveJob(
                spec=KingsGraphSpec(4, 4), config=fast_config, seed=7, total_iterations=2
            )
        ]

    def plan_second(context):
        if (tmp_path / "fail-second").exists():
            raise RuntimeError("injected stage failure")
        return [
            SolveJob(
                spec=KingsGraphSpec(4, 5), config=fast_config, seed=8, total_iterations=2
            )
        ]

    def reduce_report(context, results):
        first = context.outputs["first"][0]
        second = context.outputs["second"][0]
        return [list(first.accuracies), list(second.accuracies)]

    return CampaignSpec(
        name=f"toy-{uuid.uuid4().hex[:6]}",
        description="test campaign",
        stages=(
            CampaignStage(name="first", plan=plan_solves),
            CampaignStage(name="second", plan=plan_second, requires=("first",)),
            CampaignStage(
                name="report", plan=lambda context: [], reduce=reduce_report,
                requires=("first", "second"),
            ),
        ),
    )


class TestOrchestrator:
    def test_campaign_runs_stages_in_order_and_reports(self, fast_config, tmp_path):
        spec = _toy_campaign(tmp_path, fast_config)
        ledger = RunLedger(tmp_path / "ledger")
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        result = run_campaign(spec, {}, runner=runner, ledger=ledger)
        assert [report.name for report in result.reports] == ["first", "second", "report"]
        assert all(report.state == "passed" for report in result.reports)
        assert result.final_output == result.outputs["report"]
        assert "Campaign" in result.render()
        state = ledger.replay(result.run_id)
        assert state.finished
        assert set(state.stage_states) == {"first", "second", "report"}

    def test_failed_stage_cascades_blocks_and_resume_retries(self, fast_config, tmp_path):
        spec = _toy_campaign(tmp_path, fast_config)
        register_campaign(spec)  # resume looks the campaign up by name
        ledger = RunLedger(tmp_path / "ledger")
        (tmp_path / "fail-second").touch()
        runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        with pytest.raises(CampaignError, match="second"):
            run_campaign(spec, {}, runner=runner, ledger=ledger, run_id="r1")
        state = ledger.replay("r1")
        assert state.stage_states == {
            "first": "passed", "second": "failed", "report": "blocked",
        }
        # Clear the injected failure; resume retries the failed stage and
        # serves the passed stage's job from the cache.
        (tmp_path / "fail-second").unlink()
        resumed_runner = ExperimentRunner(cache_dir=tmp_path / "cache")
        result = resume_campaign("r1", ledger, runner=resumed_runner)
        assert ledger.replay("r1").finished
        first_report = result.reports[0]
        assert first_report.state == "passed"
        assert first_report.jobs_run == 0 and first_report.served == 1

    def test_interrupted_running_stage_resumes_from_cache(self, fast_config, tmp_path):
        """A stage RUNNING at the crash re-enqueues only unfinished jobs."""
        spec = _toy_campaign(tmp_path, fast_config)
        register_campaign(spec)
        ledger = RunLedger(tmp_path / "ledger")
        cache_dir = tmp_path / "cache"
        full = run_campaign(
            spec, {}, runner=ExperimentRunner(cache_dir=cache_dir), ledger=ledger,
            run_id="complete",
        )
        # Hand-craft a run that crashed mid-stage-one (started, never passed).
        ledger.start_run(spec.name, {}, run_id="interrupted")
        ledger.append("interrupted", {"event": "stage_started", "stage": "first"})
        result = resume_campaign(
            "interrupted", ledger, runner=ExperimentRunner(cache_dir=cache_dir)
        )
        # Every job was already in the shared cache: nothing recomputes, and
        # the outputs are identical to the uninterrupted run's.
        assert sum(report.jobs_run for report in result.reports) == 0
        assert result.outputs["report"] == full.outputs["report"]
        events = [event["event"] for event in ledger.events("interrupted")]
        assert "stage_resumed" in events

    def test_resume_requires_matching_campaign(self, fast_config, tmp_path):
        spec = _toy_campaign(tmp_path, fast_config)
        ledger = RunLedger(tmp_path / "ledger")
        ledger.start_run("someone-else", {}, run_id="foreign")
        with pytest.raises(CampaignError, match="belongs to campaign"):
            run_campaign(spec, runner=ExperimentRunner(), ledger=ledger,
                         run_id="foreign", resume=True)


# ----------------------------------------------------------------------
# Kill + resume on the built-in suite campaign (the acceptance property)
# ----------------------------------------------------------------------
SUITE_PARAMS = {"scale": 0.05, "iterations": 2, "seed": 11}


def _suite_fingerprint(run_result):
    """Every rendered number of the suite campaign's final report."""
    from repro.experiments.fig5_accuracy import render_figure5

    suite = run_result.outputs["report"]
    return (
        suite.table1.render(),
        suite.table2.render(),
        render_figure5(suite.figure5),
    )


class TestKillResumeByteIdentity:
    def test_killed_campaign_resumes_byte_identical(self, tmp_path):
        """Kill the suite campaign after its first stage in a real child
        process, resume it, and compare against an uninterrupted run."""
        killed_cache = tmp_path / "killed-cache"
        script = (
            "from repro.campaigns import RunLedger, get_campaign, ledger_root, run_campaign\n"
            "from repro.runtime.runner import ExperimentRunner\n"
            f"cache = {str(killed_cache)!r}\n"
            f"params = {SUITE_PARAMS!r}\n"
            "ledger = RunLedger(ledger_root(cache))\n"
            "with ExperimentRunner(cache_dir=cache) as runner:\n"
            "    run_campaign(get_campaign('suite'), params, runner=runner,\n"
            "                 ledger=ledger, run_id='killed')\n"
        )
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(repro.__file__).resolve().parent.parent)
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env["MSROPM_CAMPAIGN_KILL_AFTER"] = "table1"
        completed = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert completed.returncode == 86, completed.stderr

        ledger = RunLedger(ledger_root(killed_cache))
        state = ledger.replay("killed")
        assert state.stage_states["table1"] == "passed"
        assert "table2" not in state.stage_states
        assert not state.finished

        with ExperimentRunner(cache_dir=killed_cache) as runner:
            resumed = resume_campaign("killed", ledger, runner=runner)
        # The completed stage's jobs came from the ledger/cache, not compute.
        table1_report = {report.name: report for report in resumed.reports}["table1"]
        assert table1_report.jobs_run == 0
        assert table1_report.served == table1_report.num_jobs > 0
        assert ledger.replay("killed").finished

        clean_cache = tmp_path / "clean-cache"
        with ExperimentRunner(cache_dir=clean_cache) as runner:
            clean = run_campaign(
                get_campaign("suite"), SUITE_PARAMS, runner=runner,
                ledger=RunLedger(ledger_root(clean_cache)),
            )
        assert _suite_fingerprint(resumed) == _suite_fingerprint(clean)

    def test_resume_restores_the_recorded_replica_chunk(self, fast_config, tmp_path):
        """Job hashes depend on replica-chunk boundaries; a resume must plan
        with the chunking the original run recorded, not the resuming
        invocation's, or passed stages silently recompute."""
        spec = _toy_campaign(tmp_path, fast_config)
        register_campaign(spec)
        cache = tmp_path / "cache"
        ledger = RunLedger(ledger_root(cache))
        with ExperimentRunner(cache_dir=cache, replica_chunk=1) as runner:
            run_campaign(spec, {}, runner=runner, ledger=ledger, run_id="chunked")
        assert ledger.replay("chunked").runtime == {"replica_chunk": 1}
        # Resume with a differently-chunked runner: the ledger's value wins.
        with ExperimentRunner(cache_dir=cache, replica_chunk=None) as runner:
            resumed = resume_campaign("chunked", ledger, runner=runner)
            assert runner.replica_chunk == 1
        assert sum(report.jobs_run for report in resumed.reports) == 0

    def test_fully_warm_resume_recomputes_nothing(self, tmp_path):
        """Resuming a finished campaign is the all-cache path: zero jobs."""
        cache = tmp_path / "cache"
        ledger = RunLedger(ledger_root(cache))
        with ExperimentRunner(cache_dir=cache) as runner:
            run_campaign(get_campaign("suite"), SUITE_PARAMS, runner=runner,
                         ledger=ledger, run_id="warm")
        with ExperimentRunner(cache_dir=cache) as runner:
            warm = resume_campaign("warm", ledger, runner=runner)
        assert sum(report.jobs_run for report in warm.reports) == 0
        assert warm.runner_stats["jobs_run"] == 0


# ----------------------------------------------------------------------
# Baseline jobs
# ----------------------------------------------------------------------
def _dimacs_baseline_jobs(fast_config, iterations=2):
    from repro.experiments.scenario_matrix import plan_baseline_jobs
    from repro.workloads.registry import expand_workloads

    instances = expand_workloads(["dimacs"], base_seed=5)
    references = [instance.reference() for instance in instances]
    return plan_baseline_jobs(
        instances, references, iterations=iterations, seed=5, config=fast_config,
        baselines=("sa", "tabu", "roim", "single_stage"),
    )


class TestBaselineJobs:
    def test_hash_is_stable_and_sensitive(self, fast_config):
        jobs = _dimacs_baseline_jobs(fast_config)
        twins = _dimacs_baseline_jobs(fast_config)
        assert [job.job_hash for job in jobs] == [job.job_hash for job in twins]
        assert len({job.job_hash for job in jobs}) == len(jobs)  # baseline in hash
        budget = _dimacs_baseline_jobs(fast_config, iterations=3)
        assert all(a.job_hash != b.job_hash for a, b in zip(jobs, budget))

    def test_bit_identical_across_worker_counts(self, fast_config):
        """The acceptance property: baseline jobs through the scheduler give
        byte-identical payloads at --workers 1 and --workers 2."""
        jobs = _dimacs_baseline_jobs(fast_config)
        serial = JobScheduler(workers=1).run(jobs)
        with JobScheduler(workers=2) as scheduler:
            parallel = scheduler.run(jobs)
        assert serial == parallel
        # Applicability: ROIM never colors, so its payloads are None here.
        by_name = {}
        for job, payload in zip(jobs, serial):
            by_name.setdefault(job.baseline, []).append(payload["accuracy"])
        assert all(value is None for value in by_name["roim"])
        assert all(value is not None for value in by_name["sa"])

    def test_baseline_jobs_cache_and_memoize(self, fast_config, tmp_path):
        jobs = _dimacs_baseline_jobs(fast_config)
        cold = ExperimentRunner(cache_dir=tmp_path)
        first = cold.run_jobs(jobs)
        assert cold.stats()["jobs_run"] == len(jobs)
        assert cold.stats()["cache_stores"] == len(jobs)
        warm = ExperimentRunner(cache_dir=tmp_path)
        second = warm.run_jobs(jobs)
        assert warm.stats()["jobs_run"] == 0
        assert warm.stats()["cache_hits"] == len(jobs)
        assert first == second

    def test_matrix_with_sharded_baselines_matches_serial(self, fast_config):
        from repro.experiments.scenario_matrix import run_scenario_matrix

        kwargs = dict(
            families=["dimacs", "maxcut"], iterations=2, seed=3, config=fast_config,
            baselines=("sa", "roim", "single_stage"),
        )
        serial = run_scenario_matrix(runner=ExperimentRunner(workers=1), **kwargs)
        parallel = run_scenario_matrix(runner=ExperimentRunner(workers=2), **kwargs)
        assert serial.render() == parallel.render()
        for a, b in zip(serial.rows, parallel.rows):
            assert a.baselines == b.baselines


# ----------------------------------------------------------------------
# Weighted max-cut family
# ----------------------------------------------------------------------
class TestWeightedMaxcut:
    def test_weights_are_seed_derived_and_deterministic(self):
        instance = default_workload("wmaxcut", base_seed=4).expand()[0]
        graph = instance.build()
        first = instance.edge_weights(graph)
        second = instance.edge_weights(graph)
        assert first == second
        assert len(first) == graph.num_edges
        assert all(1.0 <= value <= 9.0 for value in first.values())
        other = wmaxcut_edge_weights(instance.params_dict, (instance.seed or 0) + 1, graph)
        assert other != first

    def test_weight_seed_rides_in_the_job_hash(self, fast_config):
        """Per-edge weights are folded into the recipe hash via the seed."""
        spec_a = GeneratedGraphSpec.create("wmaxcut", seed=1, rows=5)
        spec_b = GeneratedGraphSpec.create("wmaxcut", seed=2, rows=5)
        job_a = SolveJob(spec=spec_a, config=fast_config, seed=9, total_iterations=2)
        job_b = SolveJob(spec=spec_b, config=fast_config, seed=9, total_iterations=2)
        assert job_a.job_hash != job_b.job_hash

    def test_weights_cross_process_stable(self):
        """Same recipe, fresh interpreter, different hash randomization:
        identical weights."""
        script = (
            "import hashlib, json\n"
            "from repro.workloads.families import wmaxcut_edge_weights\n"
            "from repro.graphs.generators import kings_graph\n"
            "weights = wmaxcut_edge_weights({'rows': 5}, 77, kings_graph(5, 5))\n"
            "payload = json.dumps(sorted((str(k), v) for k, v in weights.items()))\n"
            "print(hashlib.sha256(payload.encode()).hexdigest())\n"
        )
        import hashlib

        import repro
        from repro.graphs.generators import kings_graph

        weights = wmaxcut_edge_weights({"rows": 5}, 77, kings_graph(5, 5))
        payload = json.dumps(sorted((str(k), v) for k, v in weights.items()))
        expected = hashlib.sha256(payload.encode()).hexdigest()
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(repro.__file__).resolve().parent.parent)
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env["PYTHONHASHSEED"] = "314159"
        completed = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, env=env,
        )
        assert completed.stdout.strip() == expected

    def test_scenario_accuracies_bounded_by_upper_bound_reference(self, fast_config):
        from repro.experiments.scenario_matrix import run_scenario_matrix

        result = run_scenario_matrix(
            families=["wmaxcut"], iterations=2, seed=6, config=fast_config,
            baselines=("sa", "roim"),
        )
        assert result.rows
        for row in result.rows:
            assert row.kind == "maxcut"
            assert row.reference.provider == "upper-bound"
            # Total weight bounds any cut, so ratios stay in [0, 1].
            assert all(0.0 <= value <= 1.0 for value in row.msropm_accuracies)
            assert 0.0 <= row.baselines["sa"] <= 1.0
            assert 0.0 <= row.baselines["roim"] <= 1.0


# ----------------------------------------------------------------------
# K-coloring workloads (K = 8, 16)
# ----------------------------------------------------------------------
class TestKColorFamilies:
    def test_registered_with_multi_stage_depths(self):
        for name, colors, stages in (("kcolor8", 8, 3), ("kcolor16", 16, 4)):
            family = get_family(name)
            assert family.num_colors == colors
            config = MSROPMConfig(num_colors=colors)
            assert config.num_stages == stages

    def test_solves_through_scenarios(self, fast_config):
        from repro.experiments.scenario_matrix import run_scenario_matrix

        result = run_scenario_matrix(
            families=["kcolor8", "kcolor16"], iterations=1, seed=2,
            config=fast_config, baselines=("sa",),
        )
        by_family = {row.family: row for row in result.rows}
        assert by_family["kcolor8"].num_colors == 8
        assert by_family["kcolor16"].num_colors == 16
        for row in by_family.values():
            assert all(0.0 <= value <= 1.0 for value in row.msropm_accuracies)
            assert row.baselines["sa"] is not None


# ----------------------------------------------------------------------
# Raw (unclipped) stage-1 accuracy
# ----------------------------------------------------------------------
class TestRawStage1Accuracy:
    def test_raw_exceeds_clip_when_beating_the_reference(self, fast_config):
        from repro.core.machine import MSROPM
        from repro.graphs.generators import kings_graph

        # An artificially tiny reference cut forces raw > 1 while the paper
        # metric stays clipped at 1.0.
        machine = MSROPM(kings_graph(4, 4), fast_config, stage1_reference_cut=1)
        result = machine.solve(iterations=2, seed=3)
        assert all(item.stage1_accuracy <= 1.0 for item in result.iterations)
        assert all(
            item.stage1_raw_accuracy >= item.stage1_accuracy for item in result.iterations
        )
        assert result.stage1_raw_accuracies.max() > 1.0

    def test_raw_round_trips_through_results_io(self, fast_config):
        from repro.analysis.results_io import solve_result_from_dict, solve_result_to_dict
        from repro.core.machine import MSROPM
        from repro.graphs.generators import kings_graph

        machine = MSROPM(kings_graph(4, 4), fast_config, stage1_reference_cut=1)
        result = machine.solve(iterations=2, seed=3)
        rebuilt = solve_result_from_dict(json.loads(json.dumps(solve_result_to_dict(result))))
        assert list(rebuilt.stage1_raw_accuracies) == list(result.stage1_raw_accuracies)
        assert list(rebuilt.stage1_accuracies) == list(result.stage1_accuracies)

    def test_schema_bumped_for_the_new_field(self):
        from repro.analysis.results_io import FORMAT_VERSION

        # Raw accuracies bumped these to 2/3; the precision tier bumped them
        # again (tier in the job hash, metadata in the payload).
        assert JOB_SCHEMA_VERSION == 3
        assert FORMAT_VERSION == 4


# ----------------------------------------------------------------------
# Built-in scenarios campaign
# ----------------------------------------------------------------------
class TestScenariosCampaign:
    def test_cli_shaped_params_with_none_values_take_defaults(self, tmp_path):
        """The CLI passes unset knobs as explicit None values; the campaign
        planners must apply their defaults to those, not crash on int(None)."""
        spec = get_campaign("scenarios")
        params = {"families": ["dimacs"], "iterations": None, "seed": None,
                  "engine": "batched", "baselines": ["sa"]}
        with ExperimentRunner(cache_dir=tmp_path / "cache") as runner:
            result = run_campaign(
                spec, params, runner=runner,
                ledger=RunLedger(ledger_root(tmp_path / "cache")),
            )
        assert result.outputs["report"].iterations == 5  # the default budget

    def test_unknown_params_rejected(self, tmp_path):
        """A flag the campaign would silently ignore must fail loudly."""
        with pytest.raises(CampaignError, match="does not accept parameter"):
            run_campaign(
                get_campaign("scenarios"), {"scale": 0.5, "seed": 1},
                runner=ExperimentRunner(),
            )
        with pytest.raises(CampaignError, match="does not accept parameter"):
            run_campaign(
                get_campaign("suite"), {"families": ["er"], "seed": 1},
                runner=ExperimentRunner(),
            )

    def test_report_requires_both_roots_and_resolves_from_memo(self, tmp_path):
        spec = get_campaign("scenarios")
        assert spec.stage("report").requires == ("solves", "baselines")
        params = {"families": ["dimacs"], "iterations": 2, "seed": 4,
                  "baselines": ["sa"]}
        with ExperimentRunner(cache_dir=tmp_path / "cache") as runner:
            result = run_campaign(
                spec, params, runner=runner,
                ledger=RunLedger(ledger_root(tmp_path / "cache")),
            )
        matrix = result.outputs["report"]
        assert len(matrix.rows) == 3  # myciel3 + myciel4 + myciel5
        reports = {report.name: report for report in result.reports}
        assert reports["solves"].jobs_run == reports["solves"].num_jobs == 3
        assert reports["baselines"].num_jobs == 3  # one per (instance, baseline)
        # The report stage re-assembles the matrix purely from the memo.
        assert reports["report"].jobs_run == 0
