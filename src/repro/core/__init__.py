"""Core MSROPM solver: configuration, staging, machine, metrics and results."""

from repro.core.config import MSROPMConfig
from repro.core.engine import (
    BatchedEngine,
    SequentialEngine,
    SolverEngine,
    get_engine,
    resolve_coupling_backend,
)
from repro.core.machine import MSROPM, solve_coloring
from repro.core.mapping import ProblemMapping, identity_mapping, map_to_kings_fabric
from repro.core.metrics import (
    accuracy_statistics,
    coloring_accuracy,
    hamming_distance,
    maxcut_accuracy,
    min_hamming_distance,
    pairwise_hamming_distances,
    stage_correlation,
    success_probability,
)
from repro.core.results import IterationResult, SolveResult, StageResult
from repro.core.stages import (
    StageExecutor,
    binarize_against_offsets,
    group_offsets,
    partition_coupling_matrix,
)
from repro.core.divide_and_color import (
    DivideAndColorResult,
    coloring_from_stage_bits,
    divide_and_color,
    local_search_maxcut_solver,
)

__all__ = [
    "MSROPM",
    "MSROPMConfig",
    "solve_coloring",
    "SolverEngine",
    "SequentialEngine",
    "BatchedEngine",
    "get_engine",
    "resolve_coupling_backend",
    "ProblemMapping",
    "identity_mapping",
    "map_to_kings_fabric",
    "coloring_accuracy",
    "maxcut_accuracy",
    "hamming_distance",
    "min_hamming_distance",
    "pairwise_hamming_distances",
    "accuracy_statistics",
    "stage_correlation",
    "success_probability",
    "IterationResult",
    "SolveResult",
    "StageResult",
    "StageExecutor",
    "group_offsets",
    "partition_coupling_matrix",
    "binarize_against_offsets",
    "DivideAndColorResult",
    "divide_and_color",
    "coloring_from_stage_bits",
    "local_search_maxcut_solver",
]
