"""Problem → oscillator-fabric mapping.

A problem graph is mapped one node per ROSC and one edge per B2B coupling.
Physical fabrics have a fixed sparse topology (the paper uses King's-graph
connectivity with nearest-neighbour couplings), so mapping also validates that
the problem's edges are realizable on the fabric and computes the ``L_EN``
programming (which couplings are enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import MappingError
from repro.graphs.generators import kings_graph
from repro.graphs.graph import Graph, Node


@dataclass
class ProblemMapping:
    """The assignment of problem nodes to fabric oscillators.

    Attributes
    ----------
    problem_graph:
        The logical problem graph.
    fabric_graph:
        The physical coupling topology (defaults to the problem graph itself,
        i.e. a fabric fabricated to match the problem, as in the paper's
        custom implementations).
    placement:
        Mapping from problem node to fabric node.
    """

    problem_graph: Graph
    fabric_graph: Graph
    placement: Dict[Node, Node]

    def __post_init__(self) -> None:
        if set(self.placement.keys()) != set(self.problem_graph.nodes):
            raise MappingError("placement must cover exactly the problem graph's nodes")
        placed = list(self.placement.values())
        if len(set(placed)) != len(placed):
            raise MappingError("placement must be injective (one oscillator per problem node)")
        for fabric_node in placed:
            if not self.fabric_graph.has_node(fabric_node):
                raise MappingError(f"fabric node {fabric_node!r} does not exist")
        for u, v in self.problem_graph.edges():
            if not self.fabric_graph.has_edge(self.placement[u], self.placement[v]):
                raise MappingError(
                    f"problem edge ({u!r}, {v!r}) has no physical coupling between "
                    f"{self.placement[u]!r} and {self.placement[v]!r}"
                )

    # ------------------------------------------------------------------
    @property
    def num_used_oscillators(self) -> int:
        """Number of fabric oscillators actually used."""
        return len(self.placement)

    @property
    def utilization(self) -> float:
        """Fraction of fabric oscillators used by the problem."""
        return self.num_used_oscillators / self.fabric_graph.num_nodes

    def enabled_couplings(self) -> List[Tuple[Node, Node]]:
        """Fabric edges whose ``L_EN`` must be asserted (problem edges)."""
        return [
            (self.placement[u], self.placement[v]) for u, v in self.problem_graph.edges()
        ]

    def disabled_couplings(self) -> List[Tuple[Node, Node]]:
        """Fabric edges left unprogrammed (``L_EN`` low)."""
        enabled = set()
        for u, v in self.enabled_couplings():
            enabled.add((u, v))
            enabled.add((v, u))
        return [edge for edge in self.fabric_graph.edges() if edge not in enabled]

    def oscillator_of(self, problem_node: Node) -> Node:
        """Return the fabric oscillator assigned to ``problem_node``."""
        try:
            return self.placement[problem_node]
        except KeyError as exc:
            raise MappingError(f"problem node {problem_node!r} is not placed") from exc


def identity_mapping(problem_graph: Graph) -> ProblemMapping:
    """Map a problem onto a fabric built exactly for it (the paper's setting)."""
    placement = {node: node for node in problem_graph.nodes}
    return ProblemMapping(problem_graph=problem_graph, fabric_graph=problem_graph, placement=placement)


def map_to_kings_fabric(problem_graph: Graph, rows: int, cols: Optional[int] = None) -> ProblemMapping:
    """Map a lattice-labelled problem graph onto a ``rows x cols`` King's fabric.

    The problem's nodes must already be ``(r, c)`` tuples inside the board (the
    natural labelling produced by the generators); the mapping is the identity
    placement onto the fabric, with the fabric's unused couplings left disabled.
    """
    fabric = kings_graph(rows, cols)
    for node in problem_graph.nodes:
        if not fabric.has_node(node):
            raise MappingError(f"problem node {node!r} does not fit on the {rows}x{cols or rows} fabric")
    placement = {node: node for node in problem_graph.nodes}
    return ProblemMapping(problem_graph=problem_graph, fabric_graph=fabric, placement=placement)
