"""The multi-stage ring-oscillator Potts machine (MSROPM) — the paper's contribution.

:class:`MSROPM` ties together the problem mapping, the circuit-level fabric
netlist, the control schedule and the phase dynamics into the solver the paper
evaluates:

* the problem graph is mapped one node per oscillator and one edge per B2B
  coupling;
* a run executes ``log2(K)`` binary stages; each stage self-anneals the
  coupled oscillators and then binarizes their phases with the appropriate
  phase-shifted SHIL, refining the coloring by one bit (divide-and-color);
* read-out happens on the K-phase reference grid, exactly one DFF per
  oscillator capturing a one, and the decoded coloring is scored against the
  paper's accuracy metric;
* repeated iterations with fresh random initial phases explore the solution
  space; the best iteration is the reported solution.

Typical use::

    from repro import kings_graph, MSROPM, MSROPMConfig

    machine = MSROPM(kings_graph(7, 7), MSROPMConfig(num_colors=4, seed=7))
    result = machine.solve(iterations=40)
    print(result.best_accuracy)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, MappingError
from repro.circuit.netlist import FabricNetlist
from repro.circuit.power import PowerModel
from repro.core.config import MSROPMConfig
from repro.core.engine import SolverEngine, get_engine
from repro.core.mapping import ProblemMapping, identity_mapping
from repro.core.metrics import coloring_accuracy, maxcut_accuracy
from repro.core.results import IterationResult, SolveResult, StageResult
from repro.core.stages import StageExecutor, group_offsets
from repro.dynamics.noise import perturbed_phases, random_initial_phases
from repro.graphs.coloring import Coloring, kings_graph_reference_coloring
from repro.graphs.graph import Graph
from repro.graphs.partition import Bipartition
from repro.graphs.properties import is_kings_graph_shape
from repro.ising.maxcut import kings_graph_reference_cut
from repro.rng import iteration_seeds, make_rng


class MSROPM:
    """Multi-Stage Ring-Oscillator Potts Machine solver for K-coloring.

    Parameters
    ----------
    graph:
        The problem graph (one oscillator per node).
    config:
        Machine configuration; defaults to the paper's 4-coloring operating point.
    mapping:
        Optional explicit problem → fabric mapping; defaults to a fabric built
        exactly for the problem (the paper's custom implementations).
    stage1_reference_cut:
        Normalization for the stage-1 max-cut accuracy.  Defaults to the cut
        induced by the canonical 4-coloring for King's graphs and to the total
        edge count otherwise.
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[MSROPMConfig] = None,
        mapping: Optional[ProblemMapping] = None,
        stage1_reference_cut: Optional[int] = None,
    ) -> None:
        if graph.num_nodes == 0:
            raise MappingError("cannot build an MSROPM for an empty graph")
        self.graph = graph
        self.config = config or MSROPMConfig()
        self.mapping = mapping or identity_mapping(graph)
        if self.mapping.problem_graph is not graph:
            # Re-validate against the provided graph to catch mismatched mappings.
            if set(self.mapping.problem_graph.nodes) != set(graph.nodes):
                raise MappingError("mapping was built for a different problem graph")
        self.netlist = FabricNetlist(
            graph=graph,
            coupling_strength=self.config.coupling_strength,
            shil_strength=self.config.shil_strength,
            num_colors=self.config.num_colors,
        )
        self._edge_index = graph.edge_index_array()
        self._nodes = graph.nodes
        self._stage1_reference_cut = (
            stage1_reference_cut
            if stage1_reference_cut is not None
            else self._default_stage1_reference()
        )
        # Static per-oscillator frequency mismatch (process variation): drawn
        # once per machine instance, like silicon, and reused by every
        # iteration.  config.frequency_detuning_std is the *relative* fraction
        # of the oscillator frequency; the dynamics need rad/s, so the draw
        # uses its converted form frequency_detuning_rate_std
        # (= frequency_detuning_std * 2*pi*f).
        if self.config.frequency_detuning_std > 0:
            mismatch_rng = make_rng(self.config.seed)
            self._frequency_detuning = mismatch_rng.normal(
                0.0, self.config.frequency_detuning_rate_std, size=graph.num_nodes
            )
        else:
            self._frequency_detuning = None

    # ------------------------------------------------------------------
    def _default_stage1_reference(self) -> int:
        if is_kings_graph_shape(self.graph):
            rows = 1 + max(node[0] for node in self.graph.nodes)
            cols = 1 + max(node[1] for node in self.graph.nodes)
            return kings_graph_reference_cut(rows, cols)
        return max(1, self.graph.num_edges)

    @property
    def num_oscillators(self) -> int:
        """Number of oscillators (problem nodes)."""
        return self.graph.num_nodes

    @property
    def stage1_reference_cut(self) -> int:
        """The cut value used to normalize stage-1 accuracy."""
        return self._stage1_reference_cut

    def batched_executor(
        self,
        coupling_backend: str,
        fast_path: bool = True,
        precision: str = "exact",
        throughput_options=None,
    ) -> StageExecutor:
        """The machine's cached batched :class:`StageExecutor`.

        Built once per ``(backend, fast_path, precision, options)`` key and
        reused across solves, so the executor's precompiled
        :class:`~repro.core.stages.CouplingPlan` (stage-1 CSR, kernel buffers,
        dense base matrix) survives from one solve to the next — and, through
        the runtime's per-worker machine memo, from one job to the next.  The
        executor is stateless with respect to a solve's data, so sharing it
        cannot couple solves.  Exact and throughput tiers get distinct
        executors (their plans hold different-dtype operators).
        """
        cache = self.__dict__.setdefault("_executor_cache", {})
        key = (coupling_backend, fast_path, precision, throughput_options)
        if key not in cache:
            cache[key] = StageExecutor(
                config=self.config,
                edge_index=self._edge_index,
                num_oscillators=self.num_oscillators,
                frequency_detuning=self._frequency_detuning,
                coupling_backend=coupling_backend,
                fast_path=fast_path,
                precision=precision,
                throughput_options=throughput_options,
            )
        return cache[key]

    # ------------------------------------------------------------------
    def run_iteration(
        self,
        iteration_index: int = 0,
        seed: Optional[int] = None,
        collect_trajectory: bool = False,
    ) -> IterationResult:
        """Run one complete multi-stage solve and return its result."""
        config = self.config
        rng = make_rng(seed)
        num = self.num_oscillators
        executor = StageExecutor(
            config=config,
            edge_index=self._edge_index,
            num_oscillators=num,
            collect_trajectory=collect_trajectory,
            frequency_detuning=self._frequency_detuning,
        )

        phases = random_initial_phases(num, rng)
        group_values = np.zeros(num, dtype=int)
        stage_results: List[StageResult] = []
        trajectory = None
        time = 0.0

        for stage_index in range(1, config.num_stages + 1):
            if stage_index > 1:
                # Compute-in-memory hand-off: phases persist between stages but
                # pick up a little jitter while couplings and SHIL are off.
                phases = perturbed_phases(phases, config.stage2_reinit_jitter, rng)
            phases, bits, stage_trajectory = executor.run_stage(
                stage_index, phases, group_values, rng, start_time=time
            )
            if collect_trajectory and stage_trajectory is not None:
                trajectory = stage_trajectory if trajectory is None else trajectory.concatenate(stage_trajectory)
            time += (
                config.timing.initialization + config.timing.annealing + config.timing.shil_settling
            )

            stage_results.append(
                self._score_stage(stage_index, bits, group_values)
            )
            group_values = group_values + bits * (2 ** (stage_index - 1))

        coloring = self._decode_coloring(group_values)
        accuracy = coloring_accuracy(self.graph, coloring)
        # Stash the final phases on the last stage record for inspection.
        if stage_results:
            stage_results[-1].final_phases = np.array(phases, dtype=float)
        return IterationResult(
            iteration_index=iteration_index,
            seed=int(seed) if seed is not None else -1,
            coloring=coloring,
            accuracy=accuracy,
            stage_results=stage_results,
            run_time=config.total_run_time,
            trajectory=trajectory,
        )

    def solve(
        self,
        iterations: int = 40,
        seed: Optional[int] = None,
        engine: Optional[object] = None,
    ) -> SolveResult:
        """Run ``iterations`` independent runs (the paper uses 40) and aggregate them.

        The iterations are executed by a replica engine: the default batched
        engine advances all of them as one vectorized integration, while the
        sequential engine replays the original one-at-a-time loop.  On the
        sparse coupling backend (auto-selected for every graph the paper
        uses) the two produce bit-identical results for the same seeds; the
        dense backend is numerically equivalent but may differ in the last
        floating-point ulp.  The engine comes from ``config.engine`` unless
        overridden here with an engine name (``"sequential"``/``"batched"``)
        or a :class:`repro.core.engine.SolverEngine` instance.
        """
        if iterations < 1:
            raise ConfigurationError(f"iterations must be at least 1, got {iterations}")
        base_seed = seed if seed is not None else self.config.seed
        seeds = iteration_seeds(base_seed, iterations)
        solver_engine = get_engine(engine if engine is not None else self.config.engine)
        results = solver_engine.run(self, seeds)
        return SolveResult(
            graph=self.graph,
            num_colors=self.config.num_colors,
            iterations=results,
            metadata=self.result_metadata(solver_engine),
        )

    def solve_range(
        self,
        total_iterations: int,
        start: int,
        stop: int,
        seed: Optional[int] = None,
        engine: Optional[object] = None,
    ) -> List[IterationResult]:
        """Run replicas ``[start, stop)`` of a ``total_iterations``-iteration solve.

        Per-iteration seeds are derived from the *full* solve
        (``iteration_seeds(seed, total_iterations)``) and then sliced, so any
        tiling of ``[0, total_iterations)`` into ranges merges back — in range
        order — to exactly the iteration list :meth:`solve` would produce for
        the same base seed.  This is the replica-chunking entry point of the
        experiment runtime (:mod:`repro.runtime`); the returned results carry
        global iteration indices.
        """
        if total_iterations < 1:
            raise ConfigurationError(
                f"total_iterations must be at least 1, got {total_iterations}"
            )
        if not 0 <= start < stop <= total_iterations:
            raise ConfigurationError(
                f"invalid replica range [{start}, {stop}) for {total_iterations} iterations"
            )
        base_seed = seed if seed is not None else self.config.seed
        seeds = iteration_seeds(base_seed, total_iterations)[start:stop]
        solver_engine = get_engine(engine if engine is not None else self.config.engine)
        return solver_engine.run_range(self, seeds, start_index=start)

    # ------------------------------------------------------------------
    def result_metadata(self, engine: Optional[object] = None) -> Dict[str, object]:
        """Provenance recorded on every :class:`SolveResult` this machine makes.

        Captures the active precision tier, the integrated state dtype, and
        the numpy version, so archived results are auditable: a cached
        throughput result can never masquerade as an exact one.  ``engine``
        (an engine instance) may carry a per-call tier override.
        """
        precision = getattr(engine, "precision", None) or self.config.precision
        dtype = "float64"
        if precision == "throughput":
            options = getattr(engine, "throughput_options", None)
            float32 = options.float32_state if options is not None else True
            dtype = "float32" if float32 else "float64"
        return {"precision": precision, "dtype": dtype, "numpy": np.__version__}

    # ------------------------------------------------------------------
    def _score_stage(
        self, stage_index: int, bits: np.ndarray, group_values: np.ndarray
    ) -> StageResult:
        """Compute the cut value/accuracy of one stage's binary read-out."""
        edge_index = self._edge_index
        if edge_index.size:
            active = group_values[edge_index[:, 0]] == group_values[edge_index[:, 1]]
            cut_mask = bits[edge_index[:, 0]] != bits[edge_index[:, 1]]
            cut_value = int(np.sum(active & cut_mask))
            active_edges = int(np.sum(active))
        else:
            cut_value = 0
            active_edges = 0
        if stage_index == 1:
            reference = self._stage1_reference_cut
        else:
            reference = max(1, active_edges)
        raw = cut_value / reference if reference > 0 else 1.0
        side_a = frozenset(node for node, bit in zip(self._nodes, bits) if bit == 0)
        side_b = frozenset(node for node, bit in zip(self._nodes, bits) if bit == 1)
        partition = Bipartition(side_a=side_a, side_b=side_b)
        return StageResult(
            stage_index=stage_index,
            partition=partition,
            cut_value=cut_value,
            reference_cut=int(reference),
            accuracy=float(min(1.0, raw)),
            raw_accuracy=float(raw),
        )

    def _score_stage_batch(
        self, stage_index: int, bits: np.ndarray, group_values: np.ndarray
    ) -> List[StageResult]:
        """Replica-vectorized :meth:`_score_stage` for ``(R, N)`` read-outs.

        The per-edge gating and cut masks are evaluated once over the whole
        ``(R, E)`` table instead of once per replica; the per-replica counts —
        and therefore every derived accuracy float — are identical to R
        separate :meth:`_score_stage` calls, which the hot-path tests pin.
        """
        num_replicas = bits.shape[0]
        edge_index = self._edge_index
        if edge_index.size:
            active = group_values[:, edge_index[:, 0]] == group_values[:, edge_index[:, 1]]
            cut_mask = bits[:, edge_index[:, 0]] != bits[:, edge_index[:, 1]]
            cut_values = np.sum(active & cut_mask, axis=1)
            active_counts = np.sum(active, axis=1)
        else:
            cut_values = np.zeros(num_replicas, dtype=int)
            active_counts = np.zeros(num_replicas, dtype=int)
        nodes = self._nodes
        results: List[StageResult] = []
        for replica in range(num_replicas):
            cut_value = int(cut_values[replica])
            if stage_index == 1:
                reference = self._stage1_reference_cut
            else:
                reference = max(1, int(active_counts[replica]))
            raw = cut_value / reference if reference > 0 else 1.0
            row = bits[replica]
            side_a = frozenset(node for node, bit in zip(nodes, row) if bit == 0)
            side_b = frozenset(node for node, bit in zip(nodes, row) if bit == 1)
            results.append(
                StageResult(
                    stage_index=stage_index,
                    partition=Bipartition(side_a=side_a, side_b=side_b),
                    cut_value=cut_value,
                    reference_cut=int(reference),
                    accuracy=float(min(1.0, raw)),
                    raw_accuracy=float(raw),
                )
            )
        return results

    def _batch_coloring_accuracies(self, group_values: np.ndarray) -> List[float]:
        """Replica-vectorized coloring accuracies for decoded group values.

        Computes the monochromatic-edge counts for all replicas in one pass;
        each returned float equals ``coloring_accuracy(graph, decoded)`` bit
        for bit (decoded colorings always cover the graph by construction, so
        the cover check is side-effect free to skip).
        """
        num_replicas = group_values.shape[0]
        num_edges = self.graph.num_edges
        edge_index = self._edge_index
        if num_edges == 0 or not edge_index.size:
            return [1.0] * num_replicas
        conflicts = np.sum(
            group_values[:, edge_index[:, 0]] == group_values[:, edge_index[:, 1]], axis=1
        )
        return [1.0 - int(count) / num_edges for count in conflicts]

    def _decode_coloring(self, group_values: np.ndarray) -> Coloring:
        """Convert the accumulated phase-grid indices into a coloring."""
        assignment = {node: int(value) for node, value in zip(self._nodes, group_values)}
        return Coloring(assignment=assignment, num_colors=self.config.num_colors)

    # ------------------------------------------------------------------
    def estimated_power(self, power_model: Optional[PowerModel] = None) -> float:
        """Average power (watts) of this instance per the bottom-up power model."""
        model = power_model or PowerModel()
        return model.total_power(self.graph.num_nodes, self.graph.num_edges)

    def time_to_solution(self) -> float:
        """Modeled single-run time in seconds (the paper's 60 ns for 4-coloring)."""
        return self.config.total_run_time


def solve_coloring(
    graph: Graph,
    num_colors: int = 4,
    iterations: int = 40,
    seed: Optional[int] = None,
    config: Optional[MSROPMConfig] = None,
) -> SolveResult:
    """One-call convenience API: build an :class:`MSROPM` and solve ``graph``."""
    if config is None:
        config = MSROPMConfig(num_colors=num_colors, seed=seed)
    elif config.num_colors != num_colors:
        config = config.with_updates(num_colors=num_colors)
    machine = MSROPM(graph, config)
    return machine.solve(iterations=iterations, seed=seed)
