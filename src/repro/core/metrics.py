"""Solution-quality metrics used in the paper's evaluation.

* ``coloring_accuracy`` — the fraction of edges whose endpoints receive
  different colors, normalized so an exact solution of a 4-colorable graph
  scores 1.0 (Sec. 4: "the normalized number of correctly colored neighbors").
* ``maxcut_accuracy`` — stage-1 cut value over a reference cut.
* ``hamming_distance`` / ``min_hamming_distance`` — normalized disagreement
  between two solutions; the label-invariant variant minimizes over color
  permutations because a proper coloring is only defined up to renaming.
* ``pairwise_hamming_distances`` — the statistic histogrammed in Fig. 5(c).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph, Node
from repro.graphs.partition import Bipartition, cut_size


def coloring_accuracy(graph: Graph, coloring: Coloring) -> float:
    """Fraction of edges with differently colored endpoints (1.0 = proper)."""
    if not coloring.covers(graph):
        raise AnalysisError("coloring does not cover every node of the graph")
    return coloring.accuracy(graph)


def maxcut_accuracy(graph: Graph, partition: Bipartition, reference_cut: Optional[int] = None) -> float:
    """Stage-1 accuracy: achieved cut divided by the reference cut (clipped to 1)."""
    achieved = cut_size(graph, partition)
    if reference_cut is None:
        reference_cut = graph.num_edges
    if reference_cut <= 0:
        return 1.0
    return min(1.0, achieved / reference_cut)


def hamming_distance(first: Coloring, second: Coloring, nodes: Sequence[Node]) -> float:
    """Plain normalized Hamming distance over ``nodes`` (no label matching)."""
    if not nodes:
        raise AnalysisError("node list must not be empty")
    disagreements = sum(1 for node in nodes if first.color_of(node) != second.color_of(node))
    return disagreements / len(nodes)


def min_hamming_distance(first: Coloring, second: Coloring, nodes: Sequence[Node]) -> float:
    """Label-invariant Hamming distance: minimized over color permutations.

    Proper colorings are equivalence classes under color renaming, so two
    solutions that differ only by a permutation of the palette are "the same"
    solution and should have distance 0.  The number of colors is small (4 in
    the paper), so exhaustive minimization over ``K!`` permutations is cheap.
    """
    if not nodes:
        raise AnalysisError("node list must not be empty")
    num_colors = max(first.num_colors, second.num_colors)
    if num_colors > 6:
        raise AnalysisError("label-invariant Hamming distance supports at most 6 colors")
    first_colors = np.array([first.color_of(node) for node in nodes])
    second_colors = np.array([second.color_of(node) for node in nodes])
    best = 1.0
    for permutation in itertools.permutations(range(num_colors)):
        mapped = np.array([permutation[color] for color in second_colors])
        distance = float(np.mean(first_colors != mapped))
        best = min(best, distance)
        if best == 0.0:
            break
    return best


def pairwise_hamming_distances(
    colorings: Sequence[Coloring],
    nodes: Sequence[Node],
    label_invariant: bool = False,
) -> np.ndarray:
    """All pairwise Hamming distances among a set of solutions (Fig. 5(c)).

    The paper histogramms the raw (label-sensitive) distances, which is the
    default here; pass ``label_invariant=True`` for the permutation-minimized
    variant.
    """
    if len(colorings) < 2:
        return np.zeros(0, dtype=float)
    distances: List[float] = []
    for a, b in itertools.combinations(range(len(colorings)), 2):
        if label_invariant:
            distances.append(min_hamming_distance(colorings[a], colorings[b], nodes))
        else:
            distances.append(hamming_distance(colorings[a], colorings[b], nodes))
    return np.array(distances, dtype=float)


def accuracy_statistics(accuracies: Sequence[float]) -> Dict[str, float]:
    """Best / worst / mean / std summary of per-iteration accuracies."""
    if len(accuracies) == 0:
        raise AnalysisError("accuracy list must not be empty")
    values = np.asarray(accuracies, dtype=float)
    return {
        "best": float(values.max()),
        "worst": float(values.min()),
        "mean": float(values.mean()),
        "std": float(values.std()),
        "count": int(values.size),
    }


def stage_correlation(stage1_accuracies: Sequence[float], final_accuracies: Sequence[float]) -> float:
    """Pearson correlation between stage-1 (max-cut) and final (coloring) accuracy.

    The paper observes a positive correlation (Sec. 4.1); degenerate inputs
    (constant series) return 0.0 rather than NaN.
    """
    stage1 = np.asarray(stage1_accuracies, dtype=float)
    final = np.asarray(final_accuracies, dtype=float)
    if stage1.shape != final.shape or stage1.size < 2:
        raise AnalysisError("need two equal-length series with at least two samples")
    if np.allclose(stage1.std(), 0.0) or np.allclose(final.std(), 0.0):
        return 0.0
    return float(np.corrcoef(stage1, final)[0, 1])


def success_probability(accuracies: Sequence[float], threshold: float = 1.0) -> float:
    """Fraction of iterations reaching at least ``threshold`` accuracy."""
    if len(accuracies) == 0:
        raise AnalysisError("accuracy list must not be empty")
    values = np.asarray(accuracies, dtype=float)
    return float(np.mean(values >= threshold - 1e-12))
