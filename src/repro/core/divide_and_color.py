"""Algorithmic divide-and-color: the multi-stage decomposition as pure software.

The MSROPM realizes divide-and-color physically (phase-shifted SHILs); this
module expresses the same decomposition over *any* max-cut solver so that

* software baselines (simulated annealing, local search) can be run through
  exactly the same staging for apples-to-apples comparisons, and
* the decomposition itself can be unit-tested independently of the oscillator
  dynamics (e.g. the bit-composition property: a perfect cut at every stage of
  a 2^k-colorable graph yields a proper 2^k-coloring).

A *max-cut solver* here is any callable ``solver(graph, rng) -> Bipartition``
covering the graph's nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph, Node
from repro.graphs.partition import Bipartition, cut_size
from repro.ising.maxcut import MaxCutProblem, greedy_local_improvement, random_partition
from repro.rng import SeedLike, make_rng

MaxCutSolver = Callable[[Graph, np.random.Generator], Bipartition]


@dataclass
class DivideAndColorResult:
    """Result of a software divide-and-color run."""

    coloring: Coloring
    stage_partitions: List[Dict[Node, int]]
    stage_cut_values: List[int]

    @property
    def num_stages(self) -> int:
        """Number of binary stages executed."""
        return len(self.stage_partitions)


def local_search_maxcut_solver(passes: int = 20) -> MaxCutSolver:
    """A simple randomized max-cut solver: random start + 1-exchange local search."""
    if passes < 1:
        raise ConfigurationError("passes must be at least 1")

    def solver(graph: Graph, rng: np.random.Generator) -> Bipartition:
        problem = MaxCutProblem(graph)
        partition = random_partition(graph, seed=rng)
        return greedy_local_improvement(problem, partition, max_passes=passes)

    return solver


def divide_and_color(
    graph: Graph,
    num_colors: int = 4,
    solver: Optional[MaxCutSolver] = None,
    seed: SeedLike = None,
) -> DivideAndColorResult:
    """Color ``graph`` with ``num_colors`` (a power of two) by cascaded max-cuts.

    Stage ``s`` partitions every current group independently with the supplied
    max-cut solver; after ``log2(num_colors)`` stages, the concatenated stage
    bits form the color of each node — the software mirror of the MSROPM's
    operation.
    """
    if num_colors < 2 or (num_colors & (num_colors - 1)) != 0:
        raise ConfigurationError(f"num_colors must be a power of two >= 2, got {num_colors}")
    solver = solver or local_search_maxcut_solver()
    rng = make_rng(seed)
    num_stages = int(np.log2(num_colors))

    group_of: Dict[Node, int] = {node: 0 for node in graph.nodes}
    stage_partitions: List[Dict[Node, int]] = []
    stage_cut_values: List[int] = []

    for stage in range(1, num_stages + 1):
        bits: Dict[Node, int] = {}
        stage_cut = 0
        groups = sorted({value for value in group_of.values()})
        for group in groups:
            members = [node for node in graph.nodes if group_of[node] == group]
            subgraph = graph.subgraph(members)
            if subgraph.num_nodes == 0:
                continue
            if subgraph.num_edges == 0:
                for node in members:
                    bits[node] = 0
                continue
            partition = solver(subgraph, rng)
            stage_cut += cut_size(subgraph, partition)
            for node in members:
                bits[node] = partition.side_of(node)
        stage_partitions.append(dict(bits))
        stage_cut_values.append(stage_cut)
        weight = 2 ** (stage - 1)
        for node in graph.nodes:
            group_of[node] = group_of[node] + bits.get(node, 0) * weight

    coloring = Coloring(assignment=dict(group_of), num_colors=num_colors)
    return DivideAndColorResult(
        coloring=coloring,
        stage_partitions=stage_partitions,
        stage_cut_values=stage_cut_values,
    )


def coloring_from_stage_bits(graph: Graph, stage_bits: Sequence[Dict[Node, int]], num_colors: int) -> Coloring:
    """Compose per-stage binary labels into a coloring (bit ``s`` has weight ``2**s``)."""
    if num_colors < 2 or (num_colors & (num_colors - 1)) != 0:
        raise ConfigurationError(f"num_colors must be a power of two >= 2, got {num_colors}")
    expected_stages = int(np.log2(num_colors))
    if len(stage_bits) != expected_stages:
        raise ConfigurationError(
            f"expected {expected_stages} stages of bits for {num_colors} colors, got {len(stage_bits)}"
        )
    assignment: Dict[Node, int] = {}
    for node in graph.nodes:
        value = 0
        for stage, bits in enumerate(stage_bits):
            if node not in bits:
                raise ConfigurationError(f"stage {stage + 1} bits missing node {node!r}")
            bit = int(bits[node])
            if bit not in (0, 1):
                raise ConfigurationError(f"stage bits must be 0/1, got {bit} for node {node!r}")
            value += bit * (2 ** stage)
        assignment[node] = value
    return Coloring(assignment=assignment, num_colors=num_colors)
