"""Replica execution engines: how ``MSROPM.solve`` runs its iterations.

The paper's headline numbers come from 40 independent iterations per problem.
Those iterations share everything except their random streams, which makes
them replicas of one stochastic process — and replicas can be advanced
together.  This module is the seam between the machine and that choice:

* :class:`SequentialEngine` runs one iteration at a time through
  :meth:`repro.core.machine.MSROPM.run_iteration` — the original behaviour,
  and the reference the batched path is tested against.
* :class:`BatchedEngine` (the default) stacks all R iterations into one
  ``(R, N)`` phase array and advances every replica with a single sparse or
  dense product per integrator step.  Per-replica seeded RNG streams
  (:class:`repro.rng.ReplicaRNG`) keep results bit-identical to the
  sequential path for the same seeds on the sparse backend, and numerically
  equivalent on the dense backend.

Engines are selected by name via ``MSROPMConfig.engine`` (or per call via
``MSROPM.solve(engine=...)``); the batched engine additionally chooses its
coupling representation — CSR for sparse graphs, group-masked GEMMs for dense
ones — from the problem's edge density unless pinned by
``MSROPMConfig.coupling_backend``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.config import MSROPMConfig
from repro.core.metrics import coloring_accuracy
from repro.core.results import IterationResult, StageResult
from repro.dynamics.batched import ThroughputOptions
from repro.dynamics.noise import perturbed_phases, random_initial_phases
from repro.graphs.graph import Graph
from repro.rng import ReplicaRNG, ThroughputRNG, make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.machine import MSROPM

#: Graphs below this node count always use the sparse backend (the dense
#: GEMM path only pays off at scale, and small problems keep the
#: bit-identical sparse arithmetic).
DENSE_MIN_NODES = 32

#: Edge density (2E / N(N-1)) at or above which ``auto`` picks the dense backend.
DENSE_DENSITY_THRESHOLD = 0.5


def resolve_coupling_backend(backend: str, graph: Graph) -> str:
    """Resolve an ``auto`` coupling backend to ``sparse`` or ``dense``.

    ``auto`` picks dense only for graphs that are both large enough for GEMMs
    to beat CSR indirection and dense enough that the adjacency structure
    carries no useful sparsity.  All of the paper's King's graphs (density
    <= 0.24) resolve to sparse.
    """
    if backend in ("sparse", "dense"):
        return backend
    if backend != "auto":
        raise ConfigurationError(
            f"coupling_backend must be one of {MSROPMConfig.COUPLING_BACKENDS}, got {backend!r}"
        )
    num_nodes = graph.num_nodes
    if num_nodes < DENSE_MIN_NODES:
        return "sparse"
    density = 2.0 * graph.num_edges / (num_nodes * (num_nodes - 1))
    return "dense" if density >= DENSE_DENSITY_THRESHOLD else "sparse"


class SolverEngine(ABC):
    """Strategy for executing the independent iterations of one solve."""

    #: Engine name as selected by ``MSROPMConfig.engine``.
    name: str = "abstract"

    @abstractmethod
    def run(self, machine: "MSROPM", seeds: Sequence[Optional[int]]) -> List[IterationResult]:
        """Run ``len(seeds)`` iterations of ``machine`` and return their results.

        ``seeds[i]`` seeds iteration ``i``; results are returned in iteration
        order, exactly as ``MSROPM.solve`` aggregated them historically.
        """

    def run_range(
        self,
        machine: "MSROPM",
        seeds: Sequence[Optional[int]],
        start_index: int = 0,
    ) -> List[IterationResult]:
        """Run a contiguous replica range of a larger solve.

        ``seeds`` are the per-iteration seeds of replicas ``start_index ..
        start_index + len(seeds) - 1`` of the enclosing solve; the returned
        results carry those *global* iteration indices.  Because every replica
        draws from its own seeded stream, running a solve as several ranges
        and concatenating the results is bit-identical to one full ``run`` —
        this is the entry point the experiment runtime's replica-chunked jobs
        use (:mod:`repro.runtime.jobs`).
        """
        results = self.run(machine, seeds)
        if start_index:
            for offset, item in enumerate(results):
                item.iteration_index = start_index + offset
        return results


class SequentialEngine(SolverEngine):
    """Runs iterations one at a time (the original interpreter loop)."""

    name = "sequential"

    def run(self, machine: "MSROPM", seeds: Sequence[Optional[int]]) -> List[IterationResult]:
        if machine.config.precision != "exact":
            raise ConfigurationError(
                "the sequential engine only implements the exact precision tier; "
                "use engine='batched' for precision='throughput'"
            )
        return [
            machine.run_iteration(iteration_index=index, seed=seed)
            for index, seed in enumerate(seeds)
        ]


class BatchedEngine(SolverEngine):
    """Advances all iterations as one ``(R, N)`` vectorized integration.

    Parameters
    ----------
    coupling_backend:
        ``"sparse"``, ``"dense"``, or ``"auto"``; ``None`` (default) defers to
        the machine's ``MSROPMConfig.coupling_backend``.
    fast_path:
        ``True`` (default) runs the precompiled hot path: the machine's
        cached :class:`StageExecutor` (coupling plans, direct kernels,
        final-state integration) plus replica-vectorized stage scoring and
        coloring accuracies.  ``False`` replays the pre-overhaul engine body
        — per-stage operator construction, recorded trajectories, per-replica
        Python scoring — which is the reference the fast path is proven
        bit-identical against and the baseline the hot-path benchmark times.
    precision:
        ``"exact"``, ``"throughput"``, or ``None`` (default) to defer to the
        machine's ``MSROPMConfig.precision``.  The throughput tier trades the
        bit-identity contract for speed: float32 state and CSR operators, one
        batched noise stream for all replicas (statistically equivalent
        accuracy, enforced by the equivalence harness).  It requires the fast
        path and the sparse coupling backend (``auto`` resolutions to dense
        are forced back to sparse; an explicit ``"dense"`` pin is an error).
    throughput_options:
        Relaxation switches of the throughput tier
        (:class:`repro.dynamics.batched.ThroughputOptions`); ``None`` means
        the tier defaults.  Ignored on the exact tier.
    """

    name = "batched"

    def __init__(
        self,
        coupling_backend: Optional[str] = None,
        fast_path: bool = True,
        precision: Optional[str] = None,
        throughput_options: Optional[ThroughputOptions] = None,
    ) -> None:
        if coupling_backend is not None and coupling_backend not in MSROPMConfig.COUPLING_BACKENDS:
            raise ConfigurationError(
                f"coupling_backend must be one of {MSROPMConfig.COUPLING_BACKENDS}, "
                f"got {coupling_backend!r}"
            )
        if precision is not None and precision not in MSROPMConfig.PRECISION_NAMES:
            raise ConfigurationError(
                f"precision must be one of {MSROPMConfig.PRECISION_NAMES}, got {precision!r}"
            )
        self.coupling_backend = coupling_backend
        self.fast_path = fast_path
        self.precision = precision
        self.throughput_options = throughput_options

    def run(self, machine: "MSROPM", seeds: Sequence[Optional[int]]) -> List[IterationResult]:
        config = machine.config
        num_replicas = len(seeds)
        num = machine.num_oscillators
        precision = self.precision if self.precision is not None else config.precision
        backend = resolve_coupling_backend(
            self.coupling_backend or config.coupling_backend, machine.graph
        )
        if precision == "throughput":
            if not self.fast_path:
                raise ConfigurationError(
                    "precision='throughput' requires the batched fast path"
                )
            if (self.coupling_backend or config.coupling_backend) == "dense":
                raise ConfigurationError(
                    "precision='throughput' runs on the sparse coupling backend; "
                    "remove the explicit coupling_backend='dense' pin"
                )
            # The float32 CSR kernels are sparse-only; an auto resolution to
            # dense falls back to sparse rather than silently switching tiers.
            backend = "sparse"
            options = (
                self.throughput_options
                if self.throughput_options is not None
                else ThroughputOptions()
            )
            rng = (
                ThroughputRNG(seeds)
                if options.batched_rng
                else ReplicaRNG([make_rng(seed) for seed in seeds])
            )
            executor = machine.batched_executor(
                backend,
                fast_path=True,
                precision="throughput",
                throughput_options=options,
            )
        else:
            rng = ReplicaRNG([make_rng(seed) for seed in seeds])
            executor = machine.batched_executor(backend, fast_path=self.fast_path)

        phases = random_initial_phases(num, rng)  # (R, N)
        group_values = np.zeros((num_replicas, num), dtype=int)
        stage_records: List[List[StageResult]] = [[] for _ in range(num_replicas)]
        time = 0.0

        for stage_index in range(1, config.num_stages + 1):
            if stage_index > 1:
                # Compute-in-memory hand-off, exactly as in the sequential path.
                phases = perturbed_phases(phases, config.stage2_reinit_jitter, rng)
            phases, bits, _ = executor.run_stage(
                stage_index, phases, group_values, rng, start_time=time
            )
            time += (
                config.timing.initialization
                + config.timing.annealing
                + config.timing.shil_settling
            )
            if self.fast_path:
                for replica, record in enumerate(
                    machine._score_stage_batch(stage_index, bits, group_values)
                ):
                    stage_records[replica].append(record)
            else:
                for replica in range(num_replicas):
                    stage_records[replica].append(
                        machine._score_stage(stage_index, bits[replica], group_values[replica])
                    )
            group_values = group_values + bits * (2 ** (stage_index - 1))

        accuracies: Optional[List[float]] = None
        if self.fast_path:
            accuracies = machine._batch_coloring_accuracies(group_values)
        results: List[IterationResult] = []
        for replica in range(num_replicas):
            stage_results = stage_records[replica]
            if stage_results:
                stage_results[-1].final_phases = np.array(phases[replica], dtype=float)
            coloring = machine._decode_coloring(group_values[replica])
            seed = seeds[replica]
            results.append(
                IterationResult(
                    iteration_index=replica,
                    seed=int(seed) if seed is not None else -1,
                    coloring=coloring,
                    accuracy=(
                        accuracies[replica]
                        if accuracies is not None
                        else coloring_accuracy(machine.graph, coloring)
                    ),
                    stage_results=stage_results,
                    run_time=config.total_run_time,
                )
            )
        return results


def get_engine(engine: Union[str, SolverEngine, None]) -> SolverEngine:
    """Resolve an engine selection (name, instance, or ``None``) to an engine.

    ``None`` maps to the default :class:`BatchedEngine`; strings must be one
    of ``MSROPMConfig.ENGINE_NAMES``.
    """
    if engine is None:
        return BatchedEngine()
    if isinstance(engine, SolverEngine):
        return engine
    if engine == SequentialEngine.name:
        return SequentialEngine()
    if engine == BatchedEngine.name:
        return BatchedEngine()
    raise ConfigurationError(
        f"engine must be one of {MSROPMConfig.ENGINE_NAMES} or a SolverEngine, got {engine!r}"
    )
