"""User-facing configuration of the MSROPM solver.

:class:`MSROPMConfig` collects every knob of the machine: the circuit-level
strengths (coupling, SHIL), the control timeline (the paper's 5/20/5 ns plan),
the phase-noise level, and the numerical settings of the phase-domain
simulation.  The defaults reproduce the paper's operating point for 4-coloring
on King's graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.circuit.control import TimingPlan
from repro.dynamics.schedules import AnnealingPolicy
from repro.units import ghz, ns


@dataclass(frozen=True)
class MSROPMConfig:
    """Configuration of a multi-stage ROSC Potts machine run.

    Attributes
    ----------
    num_colors:
        Number of colors to solve for; must be a power of two (each binary
        stage doubles the number of representable colors).  The paper's
        experiments use 4.
    oscillator_frequency:
        ROSC fundamental frequency in hertz (paper: 1.3 GHz).
    coupling_strength:
        Normalized B2B coupling strength; the effective phase-repulsion rate is
        ``coupling_strength * 2*pi*f``.  Too-strong couplings would quench a
        real oscillator, which is modelled by the validation cap below.
    shil_strength:
        Normalized SHIL injection strength; the pinning rate is
        ``shil_strength * 2*pi*f``.
    jitter_fraction:
        RMS cycle-to-cycle jitter as a fraction of the period; sets the phase
        noise during free-running/annealing intervals.
    timing:
        Stage durations (defaults to the paper's 5/20/5 ns plan).
    annealing_policy:
        Soft-start ramps for couplings and SHIL inside the intervals.
    time_step:
        Integrator step in seconds.
    record_every:
        Trajectory thinning factor (1 records every step — required for
        waveform reconstruction; larger values keep memory small for the big
        benchmark problems).
    stage2_reinit_jitter:
        Amplitude (radians) of the random perturbation applied to phases during
        the inter-stage re-initialization interval.
    frequency_detuning_std:
        Relative standard deviation of the per-oscillator free-running
        frequency mismatch (process variation), expressed as a *dimensionless
        fraction* of the oscillator frequency (0.01 = 1 % mismatch).  0 models
        identical oscillators (the paper's idealized simulation); a 65 nm
        uncompensated ring typically sits in the 0.5-2 % range.  The mismatch
        is drawn once per machine (static across iterations, like silicon).
        The rad/s value actually fed to the dynamics is the derived property
        :attr:`frequency_detuning_rate_std` ``= frequency_detuning_std *
        angular_frequency`` — the two names describe the same knob in
        different units.
    engine:
        Replica execution engine used by :meth:`repro.core.machine.MSROPM.solve`:
        ``"batched"`` (default) advances all iterations as one vectorized
        integration, ``"sequential"`` runs them one at a time (the original
        loop).  Per seed the two produce bit-identical results on the sparse
        coupling backend (chosen automatically for every sparse graph,
        including all King's graphs); the dense backend is numerically
        equivalent to floating-point reordering.
    coupling_backend:
        How the batched engine represents coupling matrices: ``"sparse"``
        (CSR / block-diagonal CSR), ``"dense"`` (group-masked GEMMs), or
        ``"auto"`` (default — dense only for large, dense graphs).
    seed:
        Base RNG seed for the run (per-iteration seeds are derived from it).
    precision:
        Numerical precision tier of the solve.  ``"exact"`` (default) keeps
        the bit-identity contract: float64 state, per-replica RNG streams,
        results reproducible bit-for-bit against the sequential reference.
        ``"throughput"`` trades bit-identity for speed — float32 phase state,
        one batched noise stream for all replicas, moment-matched uniform
        noise increments — while keeping the reported accuracy statistically
        equivalent (the contract the equivalence harness checks).  The tier
        is part of the job content hash, so exact and throughput results
        never share cache entries.
    """

    num_colors: int = 4
    oscillator_frequency: float = ghz(1.3)
    coupling_strength: float = 0.10
    shil_strength: float = 0.25
    jitter_fraction: float = 0.01
    timing: TimingPlan = field(default_factory=TimingPlan)
    annealing_policy: AnnealingPolicy = field(default_factory=AnnealingPolicy)
    time_step: float = 0.025e-9
    record_every: int = 10
    stage2_reinit_jitter: float = 0.3
    frequency_detuning_std: float = 0.0
    engine: str = "batched"
    coupling_backend: str = "auto"
    seed: Optional[int] = None
    precision: str = "exact"

    #: Engines accepted by :attr:`engine`.
    ENGINE_NAMES = ("sequential", "batched")
    #: Precision tiers accepted by :attr:`precision`.
    PRECISION_NAMES = ("exact", "throughput")
    #: Coupling backends accepted by :attr:`coupling_backend`.
    COUPLING_BACKENDS = ("auto", "sparse", "dense")

    #: Coupling strengths above this level would stall a real ROSC (Sec. 2.3).
    MAX_COUPLING_STRENGTH: float = 0.5
    #: SHIL strengths above this level deform the waveform beyond readability.
    MAX_SHIL_STRENGTH: float = 1.0

    def __post_init__(self) -> None:
        if self.num_colors < 2 or (self.num_colors & (self.num_colors - 1)) != 0:
            raise ConfigurationError(
                f"num_colors must be a power of two >= 2 for the multi-stage scheme, got {self.num_colors}"
            )
        if self.oscillator_frequency <= 0:
            raise ConfigurationError("oscillator_frequency must be positive")
        if not 0 < self.coupling_strength <= self.MAX_COUPLING_STRENGTH:
            raise ConfigurationError(
                f"coupling_strength must be in (0, {self.MAX_COUPLING_STRENGTH}] "
                f"(stronger couplings halt the oscillation), got {self.coupling_strength}"
            )
        if not 0 < self.shil_strength <= self.MAX_SHIL_STRENGTH:
            raise ConfigurationError(
                f"shil_strength must be in (0, {self.MAX_SHIL_STRENGTH}] "
                f"(stronger SHIL deforms the waveforms), got {self.shil_strength}"
            )
        if self.jitter_fraction < 0:
            raise ConfigurationError("jitter_fraction must be non-negative")
        if self.time_step <= 0:
            raise ConfigurationError("time_step must be positive")
        if self.record_every < 1:
            raise ConfigurationError("record_every must be at least 1")
        if self.stage2_reinit_jitter < 0:
            raise ConfigurationError("stage2_reinit_jitter must be non-negative")
        if not 0.0 <= self.frequency_detuning_std < 0.1:
            raise ConfigurationError(
                "frequency_detuning_std must be in [0, 0.1) — larger mismatch breaks injection locking"
            )
        if self.engine not in self.ENGINE_NAMES:
            raise ConfigurationError(
                f"engine must be one of {self.ENGINE_NAMES}, got {self.engine!r}"
            )
        if self.coupling_backend not in self.COUPLING_BACKENDS:
            raise ConfigurationError(
                f"coupling_backend must be one of {self.COUPLING_BACKENDS}, got {self.coupling_backend!r}"
            )
        if self.precision not in self.PRECISION_NAMES:
            raise ConfigurationError(
                f"precision must be one of {self.PRECISION_NAMES}, got {self.precision!r}"
            )

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        """Number of binary (max-cut) stages: ``log2(num_colors)``."""
        return int(np.log2(self.num_colors))

    @property
    def angular_frequency(self) -> float:
        """``2 * pi * f`` in radians/second."""
        return 2.0 * np.pi * self.oscillator_frequency

    @property
    def coupling_rate(self) -> float:
        """Effective coupling (phase-repulsion) rate in radians/second."""
        return self.coupling_strength * self.angular_frequency

    @property
    def shil_rate(self) -> float:
        """Effective SHIL pinning rate in radians/second."""
        return self.shil_strength * self.angular_frequency

    @property
    def frequency_detuning_rate_std(self) -> float:
        """Standard deviation of the per-oscillator detuning in radians/second.

        This is the rad/s conversion of the *relative* knob
        :attr:`frequency_detuning_std`:
        ``frequency_detuning_rate_std == frequency_detuning_std * 2 * pi *
        oscillator_frequency``.  The machine draws its static per-oscillator
        mismatch with this standard deviation.
        """
        return self.frequency_detuning_std * self.angular_frequency

    @property
    def phase_noise_diffusion(self) -> float:
        """Phase diffusion coefficient (rad^2/s) derived from the jitter fraction."""
        period = 1.0 / self.oscillator_frequency
        variance_per_period = (2.0 * np.pi * self.jitter_fraction) ** 2
        return variance_per_period / period

    @property
    def total_run_time(self) -> float:
        """End-to-end run time in seconds (60 ns for the default 4-coloring plan)."""
        return self.timing.total_for_stages(self.num_stages)

    def with_seed(self, seed: Optional[int]) -> "MSROPMConfig":
        """Return a copy with a different base seed."""
        return replace(self, seed=seed)

    def with_updates(self, **kwargs) -> "MSROPMConfig":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **kwargs)
