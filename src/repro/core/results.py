"""Result containers for MSROPM runs.

A full experiment is ``iterations`` independent runs of the machine on one
problem; each run produces a per-stage record (partition, cut accuracy,
phases) and a final coloring.  The containers here keep everything the
analysis layer and the paper's figures need: per-iteration accuracies for
Fig. 5(a)/(b), the solutions themselves for the Hamming histograms of
Fig. 5(c), and the best solution for Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import AnalysisError
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph
from repro.graphs.partition import Bipartition
from repro.core.metrics import accuracy_statistics, pairwise_hamming_distances, stage_correlation


@dataclass
class StageResult:
    """Outcome of one binary (max-cut) stage of a run.

    Attributes
    ----------
    stage_index:
        1-based stage number.
    partition:
        The bipartition read out after the stage's SHIL lock (of the nodes the
        stage operated on).
    cut_value:
        Number of graph edges cut by this stage's partition (within the node
        set the stage operated on).
    reference_cut:
        Normalization used for the stage accuracy.
    accuracy:
        ``cut_value / reference_cut`` clipped to [0, 1] (the paper's metric).
    raw_accuracy:
        The same ratio *unclipped*: against a heuristic reference (e.g. the
        King's striping cut) the machine can land above 1.0, and hiding that
        would overstate the reference.  ``None`` only for legacy records
        built before the field existed; :attr:`raw` falls back to the
        clipped value then.
    final_phases:
        Oscillator phases at the end of the stage (radians, aligned with the
        machine's node order).
    """

    stage_index: int
    partition: Bipartition
    cut_value: int
    reference_cut: int
    accuracy: float
    raw_accuracy: Optional[float] = None
    final_phases: Optional[np.ndarray] = None

    @property
    def raw(self) -> float:
        """The unclipped accuracy ratio (falls back to the clipped metric)."""
        return self.accuracy if self.raw_accuracy is None else self.raw_accuracy


@dataclass
class IterationResult:
    """Outcome of one complete MSROPM run (all stages).

    Attributes
    ----------
    iteration_index:
        0-based index of the run within the experiment.
    seed:
        RNG seed used for this run (recorded so single runs can be replayed).
    coloring:
        The decoded coloring after the final stage.
    accuracy:
        Fraction of properly colored edges (the paper's metric).
    stage_results:
        Per-stage records, in stage order.
    run_time:
        Modeled wall-clock of the run in seconds (60 ns for 4-coloring).
    energy_trace_times / energy_trace_values:
        Optional coarse energy samples over the run (for annealing plots).
    """

    iteration_index: int
    seed: int
    coloring: Coloring
    accuracy: float
    stage_results: List[StageResult] = field(default_factory=list)
    run_time: float = 0.0
    energy_trace_times: Optional[np.ndarray] = None
    energy_trace_values: Optional[np.ndarray] = None
    #: Full phase trajectory of the run (populated only when the machine is
    #: asked to collect it, e.g. for the Fig. 3 waveform reconstruction).
    trajectory: Optional[object] = None

    @property
    def stage1_accuracy(self) -> float:
        """Accuracy of the first (max-cut) stage, or 1.0 if there was none."""
        if not self.stage_results:
            return 1.0
        return self.stage_results[0].accuracy

    @property
    def stage1_raw_accuracy(self) -> float:
        """Unclipped stage-1 accuracy ratio (the machine's internal number).

        Reported alongside the [0, 1] paper metric: values above 1.0 mean the
        stage beat its heuristic reference cut.
        """
        if not self.stage_results:
            return 1.0
        return self.stage_results[0].raw

    @property
    def is_exact(self) -> bool:
        """``True`` when the run found a proper coloring (accuracy 1.0)."""
        return self.accuracy >= 1.0 - 1e-12


@dataclass
class SolveResult:
    """Aggregate of all iterations of an MSROPM experiment on one problem.

    ``metadata`` records execution provenance — the precision tier
    (``"exact"``/``"throughput"``), the integrated state dtype, and the numpy
    version — so archived results stay auditable; empty on results built by
    code paths that predate the field.
    """

    graph: Graph
    num_colors: int
    iterations: List[IterationResult]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.iterations:
            raise AnalysisError("a solve result needs at least one iteration")

    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        """Number of repeated runs."""
        return len(self.iterations)

    @property
    def best(self) -> IterationResult:
        """The iteration with the highest final accuracy (ties: earliest)."""
        return max(self.iterations, key=lambda item: (item.accuracy, -item.iteration_index))

    @property
    def best_accuracy(self) -> float:
        """Top accuracy across iterations (Table 1's "Top accuracy")."""
        return self.best.accuracy

    @property
    def accuracies(self) -> np.ndarray:
        """Per-iteration final accuracies, in iteration order (Fig. 5(a))."""
        return np.array([item.accuracy for item in self.iterations], dtype=float)

    @property
    def stage1_accuracies(self) -> np.ndarray:
        """Per-iteration stage-1 (max-cut) accuracies (Fig. 5(b))."""
        return np.array([item.stage1_accuracy for item in self.iterations], dtype=float)

    @property
    def stage1_raw_accuracies(self) -> np.ndarray:
        """Per-iteration *unclipped* stage-1 accuracy ratios.

        The machine's internal numbers before the [0, 1] presentation clip;
        may exceed 1.0 against heuristic reference cuts.
        """
        return np.array([item.stage1_raw_accuracy for item in self.iterations], dtype=float)

    @property
    def colorings(self) -> List[Coloring]:
        """Per-iteration decoded colorings."""
        return [item.coloring for item in self.iterations]

    @property
    def num_exact_solutions(self) -> int:
        """How many iterations reached accuracy 1.0."""
        return sum(1 for item in self.iterations if item.is_exact)

    # ------------------------------------------------------------------
    def accuracy_summary(self) -> Dict[str, float]:
        """Best/worst/mean/std of the final accuracies."""
        return accuracy_statistics(self.accuracies)

    def stage1_summary(self) -> Dict[str, float]:
        """Best/worst/mean/std of the stage-1 accuracies."""
        return accuracy_statistics(self.stage1_accuracies)

    def stage_correlation(self) -> float:
        """Correlation between stage-1 and final accuracy across iterations."""
        if self.num_iterations < 2:
            return 0.0
        return stage_correlation(self.stage1_accuracies, self.accuracies)

    def hamming_distances(self, label_invariant: bool = False) -> np.ndarray:
        """Pairwise Hamming distances between the iteration solutions (Fig. 5(c))."""
        return pairwise_hamming_distances(self.colorings, self.graph.nodes, label_invariant=label_invariant)

    def average_run_time(self) -> float:
        """Mean modeled run time per iteration (seconds)."""
        return float(np.mean([item.run_time for item in self.iterations]))
