"""Stage execution: turning the control schedule into phase-dynamics runs.

Each binary stage of the MSROPM consists of three intervals (Fig. 3):

1. *initialization* — couplings and SHIL off; phases either start random
   (stage 1) or keep their previous values plus a little jitter (later stages,
   the compute-in-memory property),
2. *annealing* — couplings on (restricted to the current partition), SHIL off;
   the coupled oscillators self-anneal towards a low-energy phase pattern,
3. *SHIL lock* — the per-partition SHIL is injected (ramped up) and binarizes
   the phases onto the partition's lock grid; at the end the phases are read
   out.

The helpers here build the :class:`CoupledOscillatorModel` for each interval
from the stage's group labels and run the integrator; :class:`repro.core.machine.MSROPM`
strings the stages together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import SimulationError, StageError
from repro.core.config import MSROPMConfig
from repro.dynamics.batched import (
    BatchedOscillatorModel,
    BlockDiagonalCoupling,
    CouplingOperator,
    FastBlockDiagonalCoupling,
    FastSharedCoupling,
    GroupMaskedDenseCoupling,
    SharedCoupling,
    ThroughputOptions,
    ThroughputOscillatorModel,
)
from repro.dynamics.integrators import (
    Trajectory,
    euler_maruyama_final,
    integrate_euler_maruyama,
)
from repro.dynamics.kuramoto import CoupledOscillatorModel
from repro.rng import SeedLike, make_rng


def group_offsets(group_values: np.ndarray, stage_index: int) -> np.ndarray:
    """Return the per-oscillator SHIL lock-grid offsets for ``stage_index``.

    A node whose accumulated group value (the phase index read out after the
    previous stages) is ``v`` receives a SHIL whose fundamental lock grid is
    offset by ``v * 2*pi / 2**stage_index``; stage 1 therefore uses offset 0
    everywhere (SHIL 1) and stage 2 uses 0 or pi/2 (SHIL 1 / SHIL 2), exactly
    the paper's phase-shifted SHIL pair.

    ``group_values`` may be ``(N,)`` or a batched ``(R, N)`` array; the
    offsets keep the same shape.
    """
    if stage_index < 1:
        raise StageError(f"stage_index must be >= 1, got {stage_index}")
    group_values = np.asarray(group_values, dtype=int)
    max_group = 2 ** (stage_index - 1)
    if group_values.size and (group_values.min() < 0 or group_values.max() >= max_group):
        raise StageError(
            f"group values for stage {stage_index} must lie in [0, {max_group}), "
            f"got range [{group_values.min()}, {group_values.max()}]"
        )
    return group_values * (2.0 * np.pi / (2 ** stage_index))


def partition_coupling_matrix(
    edge_index: np.ndarray,
    group_values: np.ndarray,
    num_oscillators: int,
    coupling_rate: float,
) -> sparse.csr_matrix:
    """Return the coupling-rate matrix with cross-partition edges gated off.

    ``edge_index`` is the ``(E, 2)`` array of edges in node-index space; an
    edge is conducting only when both endpoints share the same group value
    (the ``P_EN`` gating derived from the earlier stage read-outs).
    """
    if coupling_rate < 0:
        raise StageError("coupling_rate must be non-negative")
    group_values = np.asarray(group_values, dtype=int)
    if edge_index.size == 0:
        return sparse.csr_matrix((num_oscillators, num_oscillators))
    same_group = group_values[edge_index[:, 0]] == group_values[edge_index[:, 1]]
    active = edge_index[same_group]
    if active.size == 0:
        return sparse.csr_matrix((num_oscillators, num_oscillators))
    rows = np.concatenate([active[:, 0], active[:, 1]])
    cols = np.concatenate([active[:, 1], active[:, 0]])
    vals = np.full(rows.shape[0], coupling_rate, dtype=float)
    return sparse.csr_matrix((vals, (rows, cols)), shape=(num_oscillators, num_oscillators))


def binarize_against_offsets(phases: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Return the per-oscillator stage bit: 0 if locked near its offset, 1 if near offset + pi."""
    phases = np.asarray(phases, dtype=float)
    offsets = np.asarray(offsets, dtype=float)
    relative = np.mod(phases - offsets, 2.0 * np.pi)
    return ((relative > np.pi / 2.0) & (relative <= 3.0 * np.pi / 2.0)).astype(int)


class CouplingPlan:
    """Precompiled coupling state for one (problem, config) pair.

    Batched stage execution needs a coupling operator per stage; building it
    from scratch on every stage entry (a fresh CSR for stage 1, an R-block
    Python loop through ``sparse.block_diag`` for stage 2) used to dominate
    the non-integration time of a solve.  The plan is built once per executor
    — and, via the machine-level executor cache, once per machine — and hands
    out precompiled operators:

    * the ungated (uniform-grouping) shared CSR is built once and reused by
      every solve's stage 1, buffers included;
    * replica-dependent stage-2 gatings are assembled by the vectorized
      :func:`repro.dynamics.batched.gated_block_diagonal_csr` constructor
      instead of a per-replica loop;
    * the dense backend's base matrix is built once and shared by every
      :class:`GroupMaskedDenseCoupling` instance (which itself caches its
      per-label masks for the stage's two intervals).

    Every operator the plan returns is bit-identical in its arithmetic to the
    per-stage construction it replaces (same canonical CSR, same kernels).
    """

    def __init__(
        self,
        edge_index: np.ndarray,
        num_oscillators: int,
        coupling_rate: float,
        backend: str,
        dtype=float,
    ) -> None:
        if backend not in ("sparse", "dense"):
            raise StageError(
                f"coupling plans need a resolved 'sparse' or 'dense' backend, got {backend!r}"
            )
        self.edge_index = edge_index
        self.num_oscillators = num_oscillators
        self.coupling_rate = coupling_rate
        self.backend = backend
        self.dtype = np.dtype(dtype)
        self._uniform_shared: Optional[FastSharedCoupling] = None
        self._dense_base: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def dense_base(self) -> np.ndarray:
        """The fabric's ungated dense coupling-rate matrix (built once)."""
        if self._dense_base is None:
            num = self.num_oscillators
            base = np.zeros((num, num), dtype=float)
            if self.edge_index.size:
                rows = self.edge_index[:, 0]
                cols = self.edge_index[:, 1]
                base[rows, cols] = self.coupling_rate
                base[cols, rows] = self.coupling_rate
            self._dense_base = base
        return self._dense_base

    def operator(self, group_values: np.ndarray) -> CouplingOperator:
        """The precompiled coupling operator for one stage's gating table."""
        if self.backend == "dense":
            return GroupMaskedDenseCoupling(self.dense_base(), group_values)
        first_row = group_values[0]
        if np.all(group_values == first_row):
            if first_row.size == 0 or np.all(first_row == first_row[0]):
                # Uniform grouping gates nothing, for any common value: one
                # shared ungated CSR serves every solve's stage 1.
                if self._uniform_shared is None:
                    self._uniform_shared = FastSharedCoupling(
                        partition_coupling_matrix(
                            self.edge_index,
                            first_row,
                            self.num_oscillators,
                            self.coupling_rate,
                        ),
                        dtype=self.dtype,
                    )
                return self._uniform_shared
            return FastSharedCoupling(
                partition_coupling_matrix(
                    self.edge_index, first_row, self.num_oscillators, self.coupling_rate
                ),
                dtype=self.dtype,
            )
        return FastBlockDiagonalCoupling.from_group_values(
            self.edge_index, group_values, self.num_oscillators, self.coupling_rate,
            dtype=self.dtype,
        )


@dataclass
class StageExecutor:
    """Runs the three intervals of one binary stage on a phase vector.

    Parameters
    ----------
    config:
        Machine configuration (strengths, timing, integrator settings).
    edge_index:
        ``(E, 2)`` edge array of the mapped problem in node-index space.
    num_oscillators:
        Number of oscillators (problem nodes).
    collect_trajectory:
        When ``True`` the initialization interval is also simulated and all
        intervals record every integrator step, so waveforms can be
        reconstructed; when ``False`` the initialization interval is applied
        analytically (pure diffusion) and trajectories are thinned.
    frequency_detuning:
        Optional per-oscillator free-running frequency offsets (radians/second)
        modelling static process variation; applied during the annealing and
        SHIL intervals of every stage.  Note these are rad/s rates (drawn with
        standard deviation ``config.frequency_detuning_rate_std``), not the
        relative ``config.frequency_detuning_std`` fraction.
    coupling_backend:
        Coupling representation for *batched* stage runs: ``"sparse"``
        (shared CSR / block-diagonal CSR, bit-identical to the sequential
        path) or ``"dense"`` (group-masked GEMMs, numerically equivalent).
        ``"auto"`` must be resolved by the caller (the engine) before the
        executor runs.
    fast_path:
        When ``True`` (default), batched non-trajectory stages run the
        precompiled hot path: operators come from the executor's
        :class:`CouplingPlan` and the intervals integrate through
        :func:`repro.dynamics.integrators.euler_maruyama_final`, never
        materializing intermediate states.  ``False`` forces the reference
        body (per-stage operator construction, recorded trajectories) — the
        baseline the fast path is tested bit-identical against and the
        pre-overhaul behaviour the hot-path benchmark times.
    precision:
        Precision tier of the stage arithmetic: ``"exact"`` (default,
        bit-identical contract) or ``"throughput"`` (float32 state + relaxed
        RNG per :class:`repro.dynamics.batched.ThroughputOptions`, statistical
        contract).  The throughput tier requires the batched fast path.
    throughput_options:
        Relaxation switches of the throughput tier; ``None`` means the tier's
        defaults.  Ignored on the exact tier.
    """

    config: MSROPMConfig
    edge_index: np.ndarray
    num_oscillators: int
    collect_trajectory: bool = False
    frequency_detuning: Optional[np.ndarray] = None
    coupling_backend: str = "sparse"
    fast_path: bool = True
    precision: str = "exact"
    throughput_options: Optional[ThroughputOptions] = None

    @property
    def throughput(self) -> ThroughputOptions:
        """The effective throughput relaxations (defaults when unset)."""
        return self.throughput_options if self.throughput_options is not None else ThroughputOptions()

    @property
    def state_dtype(self) -> np.dtype:
        """dtype of the integrated phase state under this executor's tier."""
        if self.precision == "throughput" and self.throughput.float32_state:
            return np.dtype(np.float32)
        return np.dtype(float)

    @property
    def plan(self) -> CouplingPlan:
        """The executor's precompiled :class:`CouplingPlan` (built lazily once)."""
        plan = self.__dict__.get("_plan")
        if plan is None:
            plan = CouplingPlan(
                self.edge_index,
                self.num_oscillators,
                self.config.coupling_rate,
                self.coupling_backend,
                dtype=self.state_dtype,
            )
            self._plan = plan
        return plan

    def run_stage(
        self,
        stage_index: int,
        phases: np.ndarray,
        group_values: np.ndarray,
        rng,
        start_time: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[Trajectory]]:
        """Execute stage ``stage_index`` starting from ``phases``.

        ``phases`` is either a flat ``(N,)`` vector (one run) or a batched
        ``(R, N)`` array of R replicas, with ``group_values`` of matching
        shape; batched runs execute every replica in one vectorized
        integration.  Returns ``(final_phases, stage_bits, trajectory_or_None)``
        where ``stage_bits`` is the per-oscillator binary read-out of this
        stage, shaped like ``phases``.
        """
        if self.precision == "throughput":
            if (
                np.ndim(phases) != 2
                or not self.fast_path
                or self.collect_trajectory
                or self.coupling_backend != "sparse"
            ):
                raise StageError(
                    "precision='throughput' requires the batched fast path on the "
                    "sparse backend without trajectory collection"
                )
            phases = np.asarray(phases, dtype=self.state_dtype)
            return self._run_batched_stage_throughput(
                stage_index, phases, group_values, rng, start_time
            )
        phases = np.asarray(phases, dtype=float)
        if phases.ndim == 2:
            if self.fast_path and not self.collect_trajectory:
                return self._run_batched_stage_fast(
                    stage_index, phases, group_values, rng, start_time
                )
            return self._run_batched_stage(stage_index, phases, group_values, rng, start_time)
        config = self.config
        timing = config.timing
        rng = make_rng(rng)
        record_every = 1 if self.collect_trajectory else config.record_every
        diffusion = config.phase_noise_diffusion
        trajectory: Optional[Trajectory] = None
        time = start_time

        coupling = partition_coupling_matrix(
            self.edge_index, group_values, self.num_oscillators, config.coupling_rate
        )
        offsets = group_offsets(group_values, stage_index)

        # ------------------------------------------------------- initialization
        if self.collect_trajectory:
            free_model = CoupledOscillatorModel(
                coupling_matrix=sparse.csr_matrix((self.num_oscillators, self.num_oscillators)),
                shil_strength=0.0,
            )
            segment = integrate_euler_maruyama(
                free_model,
                phases,
                timing.initialization,
                config.time_step,
                noise_amplitude=diffusion,
                seed=rng,
                start_time=time,
                record_every=record_every,
            )
            trajectory = segment
            phases = segment.final_phases
        else:
            # Couplings and SHIL are off, so the interval is a pure phase
            # diffusion; apply the equivalent Gaussian walk directly.
            std = np.sqrt(2.0 * diffusion * timing.initialization)
            if std > 0:
                phases = phases + rng.normal(0.0, std, size=phases.shape)
        time += timing.initialization

        # ------------------------------------------------------------ annealing
        anneal_model = CoupledOscillatorModel(
            coupling_matrix=coupling,
            shil_strength=0.0,
            frequency_detuning=self.frequency_detuning,
            coupling_ramp=config.annealing_policy.coupling_ramp(time, timing.annealing),
        )
        segment = integrate_euler_maruyama(
            anneal_model,
            phases,
            timing.annealing,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
            record_every=record_every,
        )
        trajectory = segment if trajectory is None else trajectory.concatenate(segment)
        phases = segment.final_phases
        time += timing.annealing

        # ------------------------------------------------------------ SHIL lock
        lock_model = CoupledOscillatorModel(
            coupling_matrix=coupling,
            shil_strength=config.shil_rate,
            shil_offset=offsets,
            shil_order=2,
            frequency_detuning=self.frequency_detuning,
            shil_ramp=config.annealing_policy.shil_ramp(time, timing.shil_settling),
        )
        segment = integrate_euler_maruyama(
            lock_model,
            phases,
            timing.shil_settling,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
            record_every=record_every,
        )
        trajectory = trajectory.concatenate(segment)
        phases = segment.final_phases

        bits = binarize_against_offsets(phases, offsets)
        return phases, bits, (trajectory if self.collect_trajectory else None)

    # ------------------------------------------------------------------
    # Batched (replica-parallel) execution
    # ------------------------------------------------------------------
    def _dense_base_matrix(self) -> np.ndarray:
        """The fabric's ungated dense coupling-rate matrix (plan-cached)."""
        return self.plan.dense_base()

    def _batched_coupling(self, group_values: np.ndarray) -> CouplingOperator:
        """Build the coupling operator for one batched stage.

        Sparse backend: one shared CSR matrix when every replica agrees on the
        grouping (always true in stage 1), otherwise per-replica gated blocks
        on a block-diagonal CSR — both bit-identical to the sequential matvec.
        Dense backend: the shared dense base with per-replica group masking.
        """
        if self.coupling_backend == "dense":
            return GroupMaskedDenseCoupling(self._dense_base_matrix(), group_values)
        if self.coupling_backend != "sparse":
            raise StageError(
                f"coupling_backend must be resolved to 'sparse' or 'dense' before "
                f"stage execution, got {self.coupling_backend!r}"
            )
        rate = self.config.coupling_rate
        if np.all(group_values == group_values[0]):
            return SharedCoupling(
                partition_coupling_matrix(
                    self.edge_index, group_values[0], self.num_oscillators, rate
                )
            )
        blocks = [
            partition_coupling_matrix(self.edge_index, row, self.num_oscillators, rate)
            for row in group_values
        ]
        return BlockDiagonalCoupling(blocks)

    def _run_batched_stage_fast(
        self,
        stage_index: int,
        phases: np.ndarray,
        group_values: np.ndarray,
        rng,
        start_time: float,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[Trajectory]]:
        """Hot-path mirror of :meth:`_run_batched_stage` for final-state solves.

        Exactly the reference body minus everything a non-trajectory solve
        never reads: operators come precompiled from the :class:`CouplingPlan`
        (bit-identical matrices, direct kernels), the two integrated intervals
        run through :func:`euler_maruyama_final` (same steps, same random
        stream, no recording), and no :class:`Trajectory` is ever built.  The
        returned phases and bits are bit-identical to the reference body's.
        """
        config = self.config
        timing = config.timing
        rng = make_rng(rng)
        diffusion = config.phase_noise_diffusion
        time = start_time

        group_values = np.asarray(group_values, dtype=int)
        if group_values.shape != phases.shape:
            raise StageError(
                f"batched group_values shape {group_values.shape} must match "
                f"phases shape {phases.shape}"
            )
        coupling = self.plan.operator(group_values)
        offsets = group_offsets(group_values, stage_index)

        # Initialization: couplings and SHIL are off, so the interval is a
        # pure phase diffusion; apply the equivalent Gaussian walk directly.
        std = np.sqrt(2.0 * diffusion * timing.initialization)
        if std > 0:
            phases = phases + rng.normal(0.0, std, size=phases.shape)
        time += timing.initialization

        anneal_model = BatchedOscillatorModel(
            coupling=coupling,
            num_oscillators=self.num_oscillators,
            shil_strength=0.0,
            frequency_detuning=self.frequency_detuning,
            coupling_ramp=config.annealing_policy.coupling_ramp(time, timing.annealing),
        )
        phases = euler_maruyama_final(
            anneal_model,
            phases,
            timing.annealing,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
        )
        time += timing.annealing

        lock_model = BatchedOscillatorModel(
            coupling=coupling,
            num_oscillators=self.num_oscillators,
            shil_strength=config.shil_rate,
            shil_offset=offsets,
            shil_order=2,
            frequency_detuning=self.frequency_detuning,
            shil_ramp=config.annealing_policy.shil_ramp(time, timing.shil_settling),
        )
        phases = euler_maruyama_final(
            lock_model,
            phases,
            timing.shil_settling,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
        )

        bits = binarize_against_offsets(phases, offsets)
        return phases, bits, None

    def _run_batched_stage_throughput(
        self,
        stage_index: int,
        phases: np.ndarray,
        group_values: np.ndarray,
        rng,
        start_time: float,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[Trajectory]]:
        """Throughput-tier mirror of :meth:`_run_batched_stage_fast`.

        Same three intervals and the same term structure, with the tier's
        declared relaxations: the state (and the plan's CSR operators) may be
        float32, the RHS is a :class:`ThroughputOscillatorModel`, and the
        noise stream is whatever the caller's RNG provides (a
        :class:`repro.rng.ThroughputRNG` under the default relaxations —
        one batched stream of moment-matched uniform increments).  Results
        are statistically equivalent to the exact tier, not bit-identical;
        the equivalence harness owns that contract.
        """
        config = self.config
        timing = config.timing
        rng = make_rng(rng)
        diffusion = config.phase_noise_diffusion
        options = self.throughput
        dtype = self.state_dtype
        time = start_time

        group_values = np.asarray(group_values, dtype=int)
        if group_values.shape != phases.shape:
            raise StageError(
                f"batched group_values shape {group_values.shape} must match "
                f"phases shape {phases.shape}"
            )
        coupling = self.plan.operator(group_values)
        offsets = group_offsets(group_values, stage_index)

        # Initialization: couplings and SHIL are off, so the interval is a
        # pure phase diffusion; apply the equivalent Gaussian walk directly.
        std = np.sqrt(2.0 * diffusion * timing.initialization)
        if std > 0:
            phases = phases + rng.normal(0.0, std, size=phases.shape)
        time += timing.initialization

        anneal_model = ThroughputOscillatorModel(
            coupling=coupling,
            num_oscillators=self.num_oscillators,
            shil_strength=0.0,
            frequency_detuning=self.frequency_detuning,
            coupling_ramp=config.annealing_policy.coupling_ramp(time, timing.annealing),
            fused_shil=options.fused_shil,
            dtype=dtype,
        )
        phases = euler_maruyama_final(
            anneal_model,
            phases,
            timing.annealing,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
            dtype=dtype,
        )
        time += timing.annealing

        lock_model = ThroughputOscillatorModel(
            coupling=coupling,
            num_oscillators=self.num_oscillators,
            shil_strength=config.shil_rate,
            shil_offset=offsets,
            shil_order=2,
            frequency_detuning=self.frequency_detuning,
            shil_ramp=config.annealing_policy.shil_ramp(time, timing.shil_settling),
            fused_shil=options.fused_shil,
            dtype=dtype,
        )
        phases = euler_maruyama_final(
            lock_model,
            phases,
            timing.shil_settling,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
            dtype=dtype,
        )

        bits = binarize_against_offsets(phases, offsets)
        return phases, bits, None

    def _run_batched_stage(
        self,
        stage_index: int,
        phases: np.ndarray,
        group_values: np.ndarray,
        rng,
        start_time: float,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[Trajectory]]:
        """Vectorized mirror of the sequential stage body for ``(R, N)`` phases.

        The three intervals are identical to the sequential path; the replica
        axis rides through the integrators, and randomness comes from the
        caller's :class:`repro.rng.ReplicaRNG` so each replica's stream is
        consumed exactly as its sequential run would consume it.
        """
        config = self.config
        timing = config.timing
        rng = make_rng(rng)
        record_every = 1 if self.collect_trajectory else config.record_every
        diffusion = config.phase_noise_diffusion
        trajectory: Optional[Trajectory] = None
        time = start_time

        group_values = np.asarray(group_values, dtype=int)
        if group_values.shape != phases.shape:
            raise StageError(
                f"batched group_values shape {group_values.shape} must match "
                f"phases shape {phases.shape}"
            )
        coupling = self._batched_coupling(group_values)
        offsets = group_offsets(group_values, stage_index)

        # ------------------------------------------------------- initialization
        if self.collect_trajectory:
            free_model = BatchedOscillatorModel(
                coupling=SharedCoupling(
                    sparse.csr_matrix((self.num_oscillators, self.num_oscillators))
                ),
                num_oscillators=self.num_oscillators,
            )
            segment = integrate_euler_maruyama(
                free_model,
                phases,
                timing.initialization,
                config.time_step,
                noise_amplitude=diffusion,
                seed=rng,
                start_time=time,
                record_every=record_every,
            )
            trajectory = segment
            phases = segment.final_phases
        else:
            # Couplings and SHIL are off, so the interval is a pure phase
            # diffusion; apply the equivalent Gaussian walk directly.
            std = np.sqrt(2.0 * diffusion * timing.initialization)
            if std > 0:
                phases = phases + rng.normal(0.0, std, size=phases.shape)
        time += timing.initialization

        # ------------------------------------------------------------ annealing
        anneal_model = BatchedOscillatorModel(
            coupling=coupling,
            num_oscillators=self.num_oscillators,
            shil_strength=0.0,
            frequency_detuning=self.frequency_detuning,
            coupling_ramp=config.annealing_policy.coupling_ramp(time, timing.annealing),
        )
        segment = integrate_euler_maruyama(
            anneal_model,
            phases,
            timing.annealing,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
            record_every=record_every,
        )
        trajectory = segment if trajectory is None else trajectory.concatenate(segment)
        phases = segment.final_phases
        time += timing.annealing

        # ------------------------------------------------------------ SHIL lock
        lock_model = BatchedOscillatorModel(
            coupling=coupling,
            num_oscillators=self.num_oscillators,
            shil_strength=config.shil_rate,
            shil_offset=offsets,
            shil_order=2,
            frequency_detuning=self.frequency_detuning,
            shil_ramp=config.annealing_policy.shil_ramp(time, timing.shil_settling),
        )
        segment = integrate_euler_maruyama(
            lock_model,
            phases,
            timing.shil_settling,
            config.time_step,
            noise_amplitude=diffusion,
            seed=rng,
            start_time=time,
            record_every=record_every,
        )
        trajectory = trajectory.concatenate(segment)
        phases = segment.final_phases

        bits = binarize_against_offsets(phases, offsets)
        return phases, bits, (trajectory if self.collect_trajectory else None)
