"""Seed and random-number-generator management.

Every stochastic component in the library (initial oscillator phases, phase
noise, annealing baselines) draws randomness from a :class:`numpy.random.Generator`
obtained through this module, so a single integer seed makes a full experiment
reproducible while independent iterations still receive decorrelated streams.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Return ``count`` independent generators derived from ``seed``.

    Independent streams are produced with :class:`numpy.random.SeedSequence`
    spawning, which guarantees statistical independence between the children
    regardless of how many random numbers each consumes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream.
        seed = int(seed.integers(0, 2**63 - 1))
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def iteration_seeds(seed: SeedLike, count: int) -> list:
    """Return ``count`` integer seeds derived deterministically from ``seed``.

    Useful when per-iteration seeds need to be recorded alongside results so a
    single iteration can be replayed later.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1)) for child in sequence.spawn(count)]


def random_phases(num: int, rng: SeedLike = None, low: float = 0.0, high: float = 2.0 * np.pi) -> np.ndarray:
    """Draw ``num`` uniformly random phases in ``[low, high)``.

    This models the random ROSC start-up phases the paper obtains by turning
    oscillators on at random instants and letting jitter decorrelate them.
    """
    if num < 0:
        raise ValueError(f"num must be non-negative, got {num}")
    generator = make_rng(rng)
    return generator.uniform(low, high, size=num)
