"""Seed and random-number-generator management.

Every stochastic component in the library (initial oscillator phases, phase
noise, annealing baselines) draws randomness from a :class:`numpy.random.Generator`
obtained through this module, so a single integer seed makes a full experiment
reproducible while independent iterations still receive decorrelated streams.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

SeedLike = Union[
    None,
    int,
    np.random.Generator,
    np.random.SeedSequence,
    "ReplicaRNG",
    "ThroughputRNG",
]


class ReplicaRNG:
    """A bundle of per-replica generators with a batched draw interface.

    Batched (replica-parallel) runs need randomness that is *bit-identical* to
    running each replica sequentially with its own seed.  ``ReplicaRNG`` holds
    one :class:`numpy.random.Generator` per replica and serves draws of shape
    ``(R, ...)`` by stacking one ``(...)`` draw from each replica's generator,
    so every replica consumes its stream in exactly the order a sequential run
    with that replica's generator would.

    The object quacks like a generator for the draw methods the solver uses
    (``standard_normal``, ``normal``, ``uniform``), which lets the noise
    helpers and integrators stay agnostic of whether they drive one replica or
    a batch.
    """

    def __init__(self, generators: Sequence[np.random.Generator]) -> None:
        generators = list(generators)
        if not generators:
            raise ValueError("ReplicaRNG needs at least one generator")
        for generator in generators:
            if not isinstance(generator, np.random.Generator):
                raise TypeError(f"expected numpy Generators, got {type(generator)!r}")
        self.generators = generators

    @classmethod
    def from_seeds(cls, seeds: Sequence[SeedLike]) -> "ReplicaRNG":
        """Build one generator per seed (the per-iteration seeds of a solve)."""
        return cls([make_rng(seed) for seed in seeds])

    @property
    def num_replicas(self) -> int:
        """Number of independent replica streams."""
        return len(self.generators)

    def _replica_shape(self, size) -> Tuple[int, ...]:
        """Normalize a requested ``size`` into the per-replica draw shape."""
        if size is None:
            return ()
        if np.ndim(size) == 0:
            return (int(size),)
        size = tuple(int(value) for value in size)
        if not size or size[0] != self.num_replicas:
            raise ValueError(
                f"batched draws must have a leading replica axis of {self.num_replicas}, got size {size}"
            )
        return size[1:]

    def standard_normal(self, size=None) -> np.ndarray:
        """Stacked per-replica ``standard_normal`` draws of shape ``(R, ...)``."""
        shape = self._replica_shape(size)
        return np.stack([generator.standard_normal(shape) for generator in self.generators])

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None) -> np.ndarray:
        """Stacked per-replica ``normal`` draws of shape ``(R, ...)``."""
        shape = self._replica_shape(size)
        return np.stack([generator.normal(loc, scale, size=shape) for generator in self.generators])

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None) -> np.ndarray:
        """Stacked per-replica ``uniform`` draws of shape ``(R, ...)``."""
        shape = self._replica_shape(size)
        return np.stack([generator.uniform(low, high, size=shape) for generator in self.generators])

    def noise_block(self, num_steps: int, shape: Tuple[int, ...]) -> np.ndarray:
        """Standard-normal noise for ``num_steps`` integrator steps at once.

        ``shape`` is the batched state shape ``(R, N)``; the result has shape
        ``(num_steps, R, N)``.  Each replica's block is drawn in one chunked
        ``standard_normal`` call, which numpy guarantees to consume the stream
        exactly like ``num_steps`` successive ``(N,)`` draws.
        """
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        per_replica = self._replica_shape(shape)
        # Draw straight into one (R, num_steps, N) buffer — each replica's
        # slice is contiguous, so the generator fills it like a chunked draw —
        # then hand back a transposed *view*; no transposed copy is ever made.
        block = np.empty((self.num_replicas, num_steps) + per_replica, dtype=float)
        for replica, generator in enumerate(self.generators):
            generator.standard_normal(out=block[replica])
        return block.swapaxes(0, 1)


class ThroughputRNG:
    """A single batched noise stream for the throughput precision tier.

    Where :class:`ReplicaRNG` maintains one generator per replica (the price
    of bit-identity with sequential runs), ``ThroughputRNG`` drives *one*
    PCG64 stream for the whole replica batch and draws in float32.  Replica
    independence is statistical rather than structural: the generator is
    seeded with a :class:`numpy.random.SeedSequence` over the job's
    per-replica seeds, so the stream is deterministic per seed set — and a
    different seed set yields an uncorrelated stream — but replicas no longer
    own stream positions, so results are not invariant under replica
    re-chunking.

    Noise blocks contain *moment-matched uniform* increments
    ``(2u - 1) * sqrt(3)`` (mean 0, variance 1) instead of Gaussians: for the
    weak Euler–Maruyama convergence the solver relies on, only the first two
    moments of the per-step increment matter, and uniform float32 draws are
    several times cheaper than per-replica float64 Gaussians.

    The class quacks like :class:`ReplicaRNG` for the draw methods the solver
    uses (``standard_normal``, ``normal``, ``uniform``, ``noise_block``), with
    the same ``(R, ...)`` shape semantics, so the noise helpers and
    integrators stay tier-agnostic.
    """

    def __init__(self, seeds: Sequence[Optional[int]], num_replicas: Optional[int] = None) -> None:
        seeds = list(seeds)
        if not seeds:
            raise ValueError("ThroughputRNG needs at least one seed")
        self.seeds = seeds
        self._num_replicas = int(num_replicas) if num_replicas is not None else len(seeds)
        if self._num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {self._num_replicas}")
        if any(seed is None for seed in seeds):
            # Non-deterministic fallback: no seeds means no reproducibility
            # contract to honour, so use OS entropy.
            self.generator = np.random.default_rng()
        else:
            self.generator = np.random.default_rng(
                np.random.SeedSequence([int(seed) for seed in seeds])
            )

    @property
    def num_replicas(self) -> int:
        """Replica count the batched draws span."""
        return self._num_replicas

    def _replica_shape(self, size) -> Tuple[int, ...]:
        """Normalize a requested ``size`` into the per-replica draw shape."""
        if size is None:
            return ()
        if np.ndim(size) == 0:
            return (int(size),)
        size = tuple(int(value) for value in size)
        if not size or size[0] != self.num_replicas:
            raise ValueError(
                f"batched draws must have a leading replica axis of {self.num_replicas}, got size {size}"
            )
        return size[1:]

    def standard_normal(self, size=None) -> np.ndarray:
        """One float32 ``standard_normal`` draw of shape ``(R, ...)``."""
        shape = (self.num_replicas,) + self._replica_shape(size)
        return self.generator.standard_normal(shape, dtype=np.float32)

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None) -> np.ndarray:
        """One float32 ``normal`` draw of shape ``(R, ...)``."""
        draw = self.standard_normal(size)
        if scale != 1.0:
            np.multiply(draw, np.float32(scale), out=draw)
        if loc != 0.0:
            np.add(draw, np.float32(loc), out=draw)
        return draw

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None) -> np.ndarray:
        """One float32 ``uniform`` draw of shape ``(R, ...)``.

        ``Generator.uniform`` has no dtype parameter, so the draw is a float32
        ``random`` rescaled in place.
        """
        shape = (self.num_replicas,) + self._replica_shape(size)
        draw = self.generator.random(shape, dtype=np.float32)
        if high != 1.0 or low != 0.0:
            np.multiply(draw, np.float32(high - low), out=draw)
            if low != 0.0:
                np.add(draw, np.float32(low), out=draw)
        return draw

    def noise_block(self, num_steps: int, shape: Tuple[int, ...]) -> np.ndarray:
        """Unit-variance float32 noise for ``num_steps`` integrator steps.

        Shape ``(num_steps, R, N)`` like :meth:`ReplicaRNG.noise_block`, but
        filled in one batched float32 ``random`` call and transformed to
        moment-matched uniform increments ``(2u - 1) * sqrt(3)``.
        """
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        per_replica = self._replica_shape(shape)
        block = self.generator.random(
            (num_steps, self.num_replicas) + per_replica, dtype=np.float32
        )
        # (2u - 1) * sqrt(3): mean 0, variance 1 — a weak-order-equivalent
        # substitute for the standard normal per-step increment.
        np.multiply(block, np.float32(2.0 * np.sqrt(3.0)), out=block)
        np.subtract(block, np.float32(np.sqrt(3.0)), out=block)
        return block


def normal_noise_block(rng: SeedLike, num_steps: int, shape: Tuple[int, ...]) -> np.ndarray:
    """Draw ``(num_steps,) + shape`` unit-variance noise from ``rng``.

    For a plain generator this is one chunked draw (bit-identical to
    ``num_steps`` successive ``shape`` draws); for a :class:`ReplicaRNG` the
    block is assembled from the per-replica streams.  A :class:`ThroughputRNG`
    returns float32 moment-matched uniform increments instead of Gaussians.
    """
    if isinstance(rng, (ReplicaRNG, ThroughputRNG)):
        return rng.noise_block(num_steps, shape)
    return make_rng(rng).standard_normal((num_steps,) + tuple(shape))


def make_rng(seed: SeedLike = None) -> Union[np.random.Generator, "ReplicaRNG", "ThroughputRNG"]:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one generator through a pipeline).  A
    :class:`ReplicaRNG` or :class:`ThroughputRNG` is likewise returned
    unchanged so batched pipelines can thread their replica streams through
    the same code paths.
    """
    if isinstance(seed, (np.random.Generator, ReplicaRNG, ThroughputRNG)):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Return ``count`` independent generators derived from ``seed``.

    Independent streams are produced with :class:`numpy.random.SeedSequence`
    spawning, which guarantees statistical independence between the children
    regardless of how many random numbers each consumes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream.
        seed = int(seed.integers(0, 2**63 - 1))
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def iteration_seeds(seed: SeedLike, count: int) -> list:
    """Return ``count`` integer seeds derived deterministically from ``seed``.

    Useful when per-iteration seeds need to be recorded alongside results so a
    single iteration can be replayed later.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1)) for child in sequence.spawn(count)]


def random_phases(num: int, rng: SeedLike = None, low: float = 0.0, high: float = 2.0 * np.pi) -> np.ndarray:
    """Draw ``num`` uniformly random phases in ``[low, high)``.

    This models the random ROSC start-up phases the paper obtains by turning
    oscillators on at random instants and letting jitter decorrelate them.
    """
    if num < 0:
        raise ValueError(f"num must be non-negative, got {num}")
    generator = make_rng(rng)
    return generator.uniform(low, high, size=num)
