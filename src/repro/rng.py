"""Seed and random-number-generator management.

Every stochastic component in the library (initial oscillator phases, phase
noise, annealing baselines) draws randomness from a :class:`numpy.random.Generator`
obtained through this module, so a single integer seed makes a full experiment
reproducible while independent iterations still receive decorrelated streams.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence, "ReplicaRNG"]


class ReplicaRNG:
    """A bundle of per-replica generators with a batched draw interface.

    Batched (replica-parallel) runs need randomness that is *bit-identical* to
    running each replica sequentially with its own seed.  ``ReplicaRNG`` holds
    one :class:`numpy.random.Generator` per replica and serves draws of shape
    ``(R, ...)`` by stacking one ``(...)`` draw from each replica's generator,
    so every replica consumes its stream in exactly the order a sequential run
    with that replica's generator would.

    The object quacks like a generator for the draw methods the solver uses
    (``standard_normal``, ``normal``, ``uniform``), which lets the noise
    helpers and integrators stay agnostic of whether they drive one replica or
    a batch.
    """

    def __init__(self, generators: Sequence[np.random.Generator]) -> None:
        generators = list(generators)
        if not generators:
            raise ValueError("ReplicaRNG needs at least one generator")
        for generator in generators:
            if not isinstance(generator, np.random.Generator):
                raise TypeError(f"expected numpy Generators, got {type(generator)!r}")
        self.generators = generators

    @classmethod
    def from_seeds(cls, seeds: Sequence[SeedLike]) -> "ReplicaRNG":
        """Build one generator per seed (the per-iteration seeds of a solve)."""
        return cls([make_rng(seed) for seed in seeds])

    @property
    def num_replicas(self) -> int:
        """Number of independent replica streams."""
        return len(self.generators)

    def _replica_shape(self, size) -> Tuple[int, ...]:
        """Normalize a requested ``size`` into the per-replica draw shape."""
        if size is None:
            return ()
        if np.ndim(size) == 0:
            return (int(size),)
        size = tuple(int(value) for value in size)
        if not size or size[0] != self.num_replicas:
            raise ValueError(
                f"batched draws must have a leading replica axis of {self.num_replicas}, got size {size}"
            )
        return size[1:]

    def standard_normal(self, size=None) -> np.ndarray:
        """Stacked per-replica ``standard_normal`` draws of shape ``(R, ...)``."""
        shape = self._replica_shape(size)
        return np.stack([generator.standard_normal(shape) for generator in self.generators])

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None) -> np.ndarray:
        """Stacked per-replica ``normal`` draws of shape ``(R, ...)``."""
        shape = self._replica_shape(size)
        return np.stack([generator.normal(loc, scale, size=shape) for generator in self.generators])

    def uniform(self, low: float = 0.0, high: float = 1.0, size=None) -> np.ndarray:
        """Stacked per-replica ``uniform`` draws of shape ``(R, ...)``."""
        shape = self._replica_shape(size)
        return np.stack([generator.uniform(low, high, size=shape) for generator in self.generators])

    def noise_block(self, num_steps: int, shape: Tuple[int, ...]) -> np.ndarray:
        """Standard-normal noise for ``num_steps`` integrator steps at once.

        ``shape`` is the batched state shape ``(R, N)``; the result has shape
        ``(num_steps, R, N)``.  Each replica's block is drawn in one chunked
        ``standard_normal`` call, which numpy guarantees to consume the stream
        exactly like ``num_steps`` successive ``(N,)`` draws.
        """
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        per_replica = self._replica_shape(shape)
        # Draw straight into one (R, num_steps, N) buffer — each replica's
        # slice is contiguous, so the generator fills it like a chunked draw —
        # then hand back a transposed *view*; no transposed copy is ever made.
        block = np.empty((self.num_replicas, num_steps) + per_replica, dtype=float)
        for replica, generator in enumerate(self.generators):
            generator.standard_normal(out=block[replica])
        return block.swapaxes(0, 1)


def normal_noise_block(rng: SeedLike, num_steps: int, shape: Tuple[int, ...]) -> np.ndarray:
    """Draw ``(num_steps,) + shape`` standard-normal noise from ``rng``.

    For a plain generator this is one chunked draw (bit-identical to
    ``num_steps`` successive ``shape`` draws); for a :class:`ReplicaRNG` the
    block is assembled from the per-replica streams.
    """
    if isinstance(rng, ReplicaRNG):
        return rng.noise_block(num_steps, shape)
    return make_rng(rng).standard_normal((num_steps,) + tuple(shape))


def make_rng(seed: SeedLike = None) -> Union[np.random.Generator, "ReplicaRNG"]:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one generator through a pipeline).  A
    :class:`ReplicaRNG` is likewise returned unchanged so batched pipelines
    can thread their replica streams through the same code paths.
    """
    if isinstance(seed, (np.random.Generator, ReplicaRNG)):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Return ``count`` independent generators derived from ``seed``.

    Independent streams are produced with :class:`numpy.random.SeedSequence`
    spawning, which guarantees statistical independence between the children
    regardless of how many random numbers each consumes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream.
        seed = int(seed.integers(0, 2**63 - 1))
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def iteration_seeds(seed: SeedLike, count: int) -> list:
    """Return ``count`` integer seeds derived deterministically from ``seed``.

    Useful when per-iteration seeds need to be recorded alongside results so a
    single iteration can be replayed later.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1)) for child in sequence.spawn(count)]


def random_phases(num: int, rng: SeedLike = None, low: float = 0.0, high: float = 2.0 * np.pi) -> np.ndarray:
    """Draw ``num`` uniformly random phases in ``[low, high)``.

    This models the random ROSC start-up phases the paper obtains by turning
    oscillators on at random instants and letting jitter decorrelate them.
    """
    if num < 0:
        raise ValueError(f"num must be non-negative, got {num}")
    generator = make_rng(rng)
    return generator.uniform(low, high, size=num)
