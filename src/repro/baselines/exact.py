"""Exact coloring baselines.

The paper normalizes accuracy against exact solutions obtained with a generic
SAT solver.  Three exact engines are exposed:

* :func:`exact_coloring_sat` — the from-scratch DPLL solver on the direct CNF
  encoding (the general path, used for small/medium generic graphs),
* :func:`exact_coloring_backtracking` — a DSATUR-ordered backtracking search
  with forward checking (faster on small structured instances and a useful
  cross-check of the SAT path),
* :func:`exact_kings_coloring` — the closed-form proper 4-coloring of King's
  graphs (used for the large benchmark sizes where running a complete solver
  on a 2116-node instance would only re-derive the known pattern).

``exact_coloring`` dispatches between them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ColoringError, SATError
from repro.graphs.coloring import Coloring, kings_graph_reference_coloring
from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_kings_graph_shape
from repro.sat.coloring_sat import sat_coloring


def exact_kings_coloring(graph: Graph) -> Coloring:
    """Return the canonical proper 4-coloring of a King's graph.

    Raises :class:`ColoringError` if the graph is not a full King's graph on an
    integer lattice.
    """
    if not is_kings_graph_shape(graph):
        raise ColoringError("graph does not have the King's-graph degree signature")
    rows = 1 + max(node[0] for node in graph.nodes)
    cols = 1 + max(node[1] for node in graph.nodes)
    full = kings_graph_reference_coloring(rows, cols)
    assignment = {node: full.color_of(node) for node in graph.nodes}
    coloring = Coloring(assignment=assignment, num_colors=4)
    if not coloring.is_proper(graph):
        raise ColoringError("internal error: reference King's coloring is improper")
    return coloring


def exact_coloring_backtracking(
    graph: Graph, num_colors: int, max_nodes_expanded: int = 2_000_000
) -> Optional[Coloring]:
    """Exact K-coloring by DSATUR-ordered backtracking with forward checking.

    Returns ``None`` when the graph is not ``num_colors``-colorable; raises
    :class:`ColoringError` when the search exceeds ``max_nodes_expanded``.
    """
    if num_colors < 1:
        raise ColoringError(f"num_colors must be positive, got {num_colors}")
    nodes = graph.nodes
    if not nodes:
        return Coloring(assignment={}, num_colors=num_colors)
    index = graph.node_index()
    neighbors = {node: graph.neighbors(node) for node in nodes}

    assignment: Dict[Node, int] = {}
    domains: Dict[Node, set] = {node: set(range(num_colors)) for node in nodes}
    expanded = 0

    def select_node() -> Optional[Node]:
        unassigned = [node for node in nodes if node not in assignment]
        if not unassigned:
            return None
        # DSATUR: smallest remaining domain, then highest degree.
        return min(unassigned, key=lambda n: (len(domains[n]), -graph.degree(n), index[n]))

    def backtrack() -> bool:
        nonlocal expanded
        expanded += 1
        if expanded > max_nodes_expanded:
            raise ColoringError("backtracking search exceeded max_nodes_expanded")
        node = select_node()
        if node is None:
            return True
        for color in sorted(domains[node]):
            removed: List[Node] = []
            feasible = True
            for neighbor in neighbors[node]:
                if neighbor in assignment:
                    continue
                if color in domains[neighbor]:
                    domains[neighbor].discard(color)
                    removed.append(neighbor)
                    if not domains[neighbor]:
                        feasible = False
            if feasible:
                assignment[node] = color
                if backtrack():
                    return True
                del assignment[node]
            for neighbor in removed:
                domains[neighbor].add(color)
        return False

    if not backtrack():
        return None
    return Coloring(assignment=dict(assignment), num_colors=num_colors)


def exact_coloring_sat(graph: Graph, num_colors: int, max_decisions: Optional[int] = None) -> Optional[Coloring]:
    """Exact K-coloring via the from-scratch DPLL SAT solver (None = UNSAT)."""
    return sat_coloring(graph, num_colors, max_decisions=max_decisions)


def exact_coloring(graph: Graph, num_colors: int = 4, prefer: str = "auto") -> Optional[Coloring]:
    """Return an exact ``num_colors``-coloring, or ``None`` if none exists.

    ``prefer`` selects the engine: "auto" (King's closed form when applicable
    and ``num_colors`` >= 4, otherwise backtracking), "sat", "backtracking" or
    "kings".
    """
    if prefer not in ("auto", "sat", "backtracking", "kings"):
        raise ColoringError(f"unknown engine {prefer!r}")
    if prefer == "kings" or (prefer == "auto" and num_colors >= 4 and is_kings_graph_shape(graph)):
        coloring = exact_kings_coloring(graph)
        if coloring.num_colors <= num_colors:
            return Coloring(assignment=coloring.assignment, num_colors=num_colors)
        return coloring
    if prefer == "sat":
        return exact_coloring_sat(graph, num_colors)
    return exact_coloring_backtracking(graph, num_colors)
