"""One-hot Ising coloring baseline (the encoding the Potts model avoids).

Section 2.2 of the paper contrasts the native Potts formulation (one
multivalued spin per vertex) with the Ising one-hot encoding of Eq. (5) that
needs ``n * K`` binary spins.  This baseline actually solves the one-hot
encoding — with simulated annealing over the binary variables — so the
encoding overhead (spin count, constraint violations, solution quality for a
matched compute budget) can be quantified, which is the quantitative backdrop
of the paper's "why Potts" argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.baselines.simulated_annealing import AnnealingSchedule
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph
from repro.ising.coloring_encoding import OneHotColoringEncoding
from repro.rng import SeedLike, make_rng


@dataclass
class OneHotSolveResult:
    """Result of a one-hot Ising coloring run."""

    coloring: Coloring
    energy: float
    one_hot_violations: int
    accuracy: float
    num_spins: int


def solve_onehot_coloring(
    graph: Graph,
    num_colors: int = 4,
    schedule: Optional[AnnealingSchedule] = None,
    seed: SeedLike = None,
    penalty: float = 1.0,
) -> OneHotSolveResult:
    """Anneal the one-hot Ising encoding of K-coloring and decode the result.

    The annealer flips single binary variables of the ``n * K`` one-hot vector
    with the Metropolis rule on the Eq. (5) energy.  The decoded coloring uses
    the first set bit per node (hardware-style coercion), so constraint
    violations degrade accuracy exactly as they would on a physical Ising
    machine running this encoding.
    """
    if num_colors < 2:
        raise ConfigurationError(f"num_colors must be at least 2, got {num_colors}")
    encoding = OneHotColoringEncoding(graph=graph, num_colors=num_colors, penalty=penalty)
    schedule = schedule or AnnealingSchedule()
    rng = make_rng(seed)
    num_vars = encoding.num_variables
    bits = rng.integers(0, 2, size=num_vars)

    def energy_of(vector: np.ndarray) -> float:
        return encoding.energy(vector)

    energy = energy_of(bits)
    best_bits = bits.copy()
    best_energy = energy

    for sweep in range(schedule.sweeps):
        temperature = schedule.temperature(sweep)
        order = rng.permutation(num_vars)
        for variable in order:
            bits[variable] ^= 1
            new_energy = _incremental_energy(encoding, bits, variable, energy)
            delta = new_energy - energy
            if delta <= 0 or rng.random() < np.exp(-delta / temperature):
                energy = new_energy
                if energy < best_energy:
                    best_energy = energy
                    best_bits = bits.copy()
            else:
                bits[variable] ^= 1
        if best_energy == 0:
            break

    coloring = encoding.decode(best_bits, strict=False)
    table = best_bits.reshape(graph.num_nodes, num_colors)
    violations = int(np.sum(table.sum(axis=1) != 1))
    return OneHotSolveResult(
        coloring=coloring,
        energy=float(best_energy),
        one_hot_violations=violations,
        accuracy=coloring.accuracy(graph),
        num_spins=num_vars,
    )


def _incremental_energy(
    encoding: OneHotColoringEncoding, bits: np.ndarray, flipped_variable: int, _old_energy: float
) -> float:
    """Recompute the energy after a single-bit flip.

    The encoding's energy is cheap to evaluate for the modest problem sizes
    this baseline targets (it exists for comparison, not for scale), so a full
    re-evaluation keeps the code simple and obviously correct.
    """
    return encoding.energy(bits)
