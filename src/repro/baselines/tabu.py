"""TabuCol: tabu-search graph coloring baseline.

TabuCol (Hertz & de Werra) is the classical local-search coloring heuristic:
moves recolor a conflicting node, recently reversed moves are tabu for a
number of iterations proportional to the current conflict count, and aspiring
moves (that beat the best solution) override the tabu.  It is used as an
additional software baseline alongside simulated annealing, mirroring how the
1,968-node ROIM the paper compares against was evaluated against tabu search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph, Node
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class TabuParameters:
    """TabuCol search parameters."""

    max_iterations: int = 5000
    tabu_base: int = 7
    tabu_conflict_factor: float = 0.6

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        if self.tabu_base < 0:
            raise ConfigurationError("tabu_base must be non-negative")
        if self.tabu_conflict_factor < 0:
            raise ConfigurationError("tabu_conflict_factor must be non-negative")


def tabucol(
    graph: Graph,
    num_colors: int,
    parameters: Optional[TabuParameters] = None,
    seed: SeedLike = None,
    initial: Optional[Coloring] = None,
) -> Coloring:
    """Run TabuCol and return the best coloring found (possibly improper)."""
    if num_colors < 2:
        raise ConfigurationError(f"num_colors must be at least 2, got {num_colors}")
    parameters = parameters or TabuParameters()
    rng = make_rng(seed)
    nodes = graph.nodes
    n = len(nodes)
    index = graph.node_index()
    neighbors = [np.array([index[m] for m in graph.neighbors(node)], dtype=int) for node in nodes]

    if initial is not None:
        colors = initial.as_array(graph).copy()
        if initial.num_colors > num_colors:
            raise ConfigurationError("initial coloring uses more colors than allowed")
    else:
        colors = rng.integers(0, num_colors, size=n)

    # conflict_table[i, c] = number of neighbours of i currently colored c.
    conflict_table = np.zeros((n, num_colors), dtype=int)
    for i in range(n):
        for j in neighbors[i]:
            conflict_table[i, colors[j]] += 1

    def total_conflicts() -> int:
        return int(sum(conflict_table[i, colors[i]] for i in range(n)) // 2)

    conflicts = total_conflicts()
    best_colors = colors.copy()
    best_conflicts = conflicts
    tabu_until = np.zeros((n, num_colors), dtype=int)

    for iteration in range(parameters.max_iterations):
        if best_conflicts == 0:
            break
        conflicting = [i for i in range(n) if conflict_table[i, colors[i]] > 0]
        if not conflicting:
            best_colors = colors.copy()
            best_conflicts = 0
            break
        best_move: Optional[Tuple[int, int]] = None
        best_delta = None
        for i in conflicting:
            current = conflict_table[i, colors[i]]
            for color in range(num_colors):
                if color == colors[i]:
                    continue
                delta = conflict_table[i, color] - current
                is_tabu = tabu_until[i, color] > iteration
                aspiration = conflicts + delta < best_conflicts
                if is_tabu and not aspiration:
                    continue
                if best_delta is None or delta < best_delta or (delta == best_delta and rng.random() < 0.5):
                    best_delta = delta
                    best_move = (i, color)
        if best_move is None:
            # Every move is tabu: pick a random conflicting node and color.
            i = int(rng.choice(conflicting))
            color = int(rng.integers(0, num_colors))
            best_move = (i, color)
            best_delta = conflict_table[i, color] - conflict_table[i, colors[i]]
        i, new_color = best_move
        old_color = colors[i]
        tenure = parameters.tabu_base + int(parameters.tabu_conflict_factor * len(conflicting))
        tabu_until[i, old_color] = iteration + tenure
        colors[i] = new_color
        for j in neighbors[i]:
            conflict_table[j, old_color] -= 1
            conflict_table[j, new_color] += 1
        conflicts += best_delta if best_delta is not None else 0
        if conflicts < best_conflicts:
            best_conflicts = conflicts
            best_colors = colors.copy()

    return Coloring.from_array(graph, best_colors, num_colors)
