"""Single-stage N-SHIL ring-oscillator Potts machine (the prior-work baseline).

The paper's closest prior work [14] discretizes oscillator phases at N points
in a *single* stage by injecting an N-th order SHIL (3-SHIL for 3-coloring).
This baseline re-implements that architecture on the same phase-domain
substrate so Table 2's accuracy comparison (single-stage N-SHIL vs the
multi-stage 2-SHIL MSROPM) can be reproduced: all oscillators anneal together
once and are then pinned by a single SHIL of order ``num_colors``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.config import MSROPMConfig
from repro.core.metrics import coloring_accuracy
from repro.core.results import IterationResult, SolveResult
from repro.dynamics.integrators import integrate_euler_maruyama
from repro.dynamics.kuramoto import CoupledOscillatorModel
from repro.dynamics.noise import random_initial_phases
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph
from repro.ising.vector_potts import phases_to_spins
from repro.rng import iteration_seeds, make_rng
from repro.core.stages import partition_coupling_matrix


@dataclass
class SingleStageROPM:
    """A single-stage ROSC Potts machine using an order-N SHIL.

    Parameters
    ----------
    graph:
        Problem graph (one oscillator per node).
    num_colors:
        Number of Potts states; equals the SHIL order (3 in the prior work,
        any value >= 2 here — no power-of-two restriction since there is only
        one stage).
    config:
        Shared circuit/timing configuration.  Only one
        initialization/annealing/locking triple is executed, so the run time
        is half the MSROPM's for the same timing plan.
    """

    graph: Graph
    num_colors: int = 3
    config: Optional[MSROPMConfig] = None

    def __post_init__(self) -> None:
        if self.num_colors < 2:
            raise ConfigurationError(f"num_colors must be at least 2, got {self.num_colors}")
        if self.graph.num_nodes == 0:
            raise ConfigurationError("cannot build a ROPM for an empty graph")
        # The base config validates num_colors as a power of two, which does not
        # apply to the single-stage machine; borrow its circuit parameters only.
        self._config = self.config or MSROPMConfig(num_colors=4)
        self._edge_index = self.graph.edge_index_array()

    # ------------------------------------------------------------------
    @property
    def run_time(self) -> float:
        """Modeled single-run time (one init + anneal + lock triple)."""
        return self._config.timing.total_for_stages(1)

    def run_iteration(self, iteration_index: int = 0, seed: Optional[int] = None) -> IterationResult:
        """One run: anneal the coupled oscillators, lock with the order-N SHIL, read out."""
        config = self._config
        rng = make_rng(seed)
        num = self.graph.num_nodes
        timing = config.timing
        diffusion = config.phase_noise_diffusion

        phases = random_initial_phases(num, rng)
        # Initialization interval: free-running diffusion.
        std = np.sqrt(2.0 * diffusion * timing.initialization)
        if std > 0:
            phases = phases + rng.normal(0.0, std, size=num)

        group_values = np.zeros(num, dtype=int)
        coupling = partition_coupling_matrix(self._edge_index, group_values, num, config.coupling_rate)

        anneal_model = CoupledOscillatorModel(coupling_matrix=coupling, shil_strength=0.0)
        segment = integrate_euler_maruyama(
            anneal_model, phases, timing.annealing, config.time_step,
            noise_amplitude=diffusion, seed=rng, record_every=config.record_every,
        )
        phases = segment.final_phases

        lock_model = CoupledOscillatorModel(
            coupling_matrix=coupling,
            shil_strength=config.shil_rate,
            shil_offset=0.0,
            shil_order=self.num_colors,
            shil_ramp=config.annealing_policy.shil_ramp(0.0, timing.shil_settling),
        )
        segment = integrate_euler_maruyama(
            lock_model, phases, timing.shil_settling, config.time_step,
            noise_amplitude=diffusion, seed=rng, record_every=config.record_every,
        )
        phases = segment.final_phases

        spins = phases_to_spins(phases, self.num_colors)
        coloring = Coloring.from_array(self.graph, spins, self.num_colors)
        accuracy = coloring_accuracy(self.graph, coloring)
        return IterationResult(
            iteration_index=iteration_index,
            seed=int(seed) if seed is not None else -1,
            coloring=coloring,
            accuracy=accuracy,
            stage_results=[],
            run_time=self.run_time,
        )

    def solve(self, iterations: int = 40, seed: Optional[int] = None) -> SolveResult:
        """Run ``iterations`` independent single-stage runs."""
        if iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        seeds = iteration_seeds(seed, iterations)
        results = [
            self.run_iteration(iteration_index=i, seed=seeds[i]) for i in range(iterations)
        ]
        return SolveResult(graph=self.graph, num_colors=self.num_colors, iterations=results)
