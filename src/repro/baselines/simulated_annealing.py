"""Simulated-annealing baselines for Potts coloring and max-cut.

Simulated annealing (SA) is the standard software baseline for Ising/Potts
machines (the RTWO Ising machine the paper compares against uses SA as its
reference).  Two annealers are provided: a Potts/coloring annealer that moves
single-node colors, and a max-cut annealer that flips single-node sides.  Both
use a geometric temperature schedule and track the best configuration seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph, Node
from repro.graphs.partition import Bipartition
from repro.ising.maxcut import MaxCutProblem
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class AnnealingSchedule:
    """Geometric cooling schedule for the annealers."""

    initial_temperature: float = 2.0
    final_temperature: float = 0.01
    sweeps: int = 200

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0 or self.final_temperature <= 0:
            raise ConfigurationError("temperatures must be positive")
        if self.final_temperature > self.initial_temperature:
            raise ConfigurationError("final_temperature must not exceed initial_temperature")
        if self.sweeps < 1:
            raise ConfigurationError("sweeps must be at least 1")

    def temperature(self, sweep: int) -> float:
        """Temperature at sweep index ``sweep`` (0-based, geometric interpolation)."""
        if self.sweeps == 1:
            return self.final_temperature
        fraction = sweep / (self.sweeps - 1)
        ratio = self.final_temperature / self.initial_temperature
        return float(self.initial_temperature * ratio ** fraction)


def anneal_coloring(
    graph: Graph,
    num_colors: int,
    schedule: Optional[AnnealingSchedule] = None,
    seed: SeedLike = None,
    initial: Optional[Coloring] = None,
) -> Coloring:
    """Simulated annealing on the Potts (coloring) energy.

    The energy is the number of monochromatic edges; single-node recolorings
    are accepted with the Metropolis criterion.  Returns the best coloring seen.
    """
    if num_colors < 2:
        raise ConfigurationError(f"num_colors must be at least 2, got {num_colors}")
    schedule = schedule or AnnealingSchedule()
    rng = make_rng(seed)
    nodes = graph.nodes
    index = graph.node_index()
    neighbors = [np.array([index[m] for m in graph.neighbors(n)], dtype=int) for n in nodes]

    if initial is not None:
        colors = initial.as_array(graph).copy()
        if initial.num_colors > num_colors:
            raise ConfigurationError("initial coloring uses more colors than allowed")
    else:
        colors = rng.integers(0, num_colors, size=len(nodes))

    def conflicts_of(i: int, color: int) -> int:
        if neighbors[i].size == 0:
            return 0
        return int(np.sum(colors[neighbors[i]] == color))

    energy = sum(conflicts_of(i, colors[i]) for i in range(len(nodes))) // 2
    best_colors = colors.copy()
    best_energy = energy

    for sweep in range(schedule.sweeps):
        temperature = schedule.temperature(sweep)
        order = rng.permutation(len(nodes))
        for i in order:
            old_color = colors[i]
            new_color = int(rng.integers(0, num_colors))
            if new_color == old_color:
                continue
            delta = conflicts_of(i, new_color) - conflicts_of(i, old_color)
            if delta <= 0 or rng.random() < np.exp(-delta / temperature):
                colors[i] = new_color
                energy += delta
                if energy < best_energy:
                    best_energy = energy
                    best_colors = colors.copy()
        if best_energy == 0:
            break
    return Coloring.from_array(graph, best_colors, num_colors)


def anneal_maxcut(
    problem: MaxCutProblem,
    schedule: Optional[AnnealingSchedule] = None,
    seed: SeedLike = None,
) -> Bipartition:
    """Simulated annealing on the max-cut objective (maximize the cut weight)."""
    schedule = schedule or AnnealingSchedule()
    rng = make_rng(seed)
    graph = problem.graph
    nodes = graph.nodes
    index = graph.node_index()
    sides = rng.integers(0, 2, size=len(nodes))
    neighbor_data = []
    for node in nodes:
        neigh = list(graph.neighbors(node))
        neighbor_data.append(
            (
                np.array([index[m] for m in neigh], dtype=int),
                np.array([problem.weight(node, m) for m in neigh], dtype=float),
            )
        )

    def flip_gain(i: int) -> float:
        neigh, weights = neighbor_data[i]
        if neigh.size == 0:
            return 0.0
        same = sides[neigh] == sides[i]
        # Flipping i cuts currently-uncut (same-side) edges and un-cuts cut ones.
        return float(np.sum(weights[same]) - np.sum(weights[~same]))

    def total_cut() -> float:
        value = 0.0
        for u, v in graph.edges():
            if sides[index[u]] != sides[index[v]]:
                value += problem.weight(u, v)
        return value

    best_sides = sides.copy()
    best_cut = total_cut()
    current_cut = best_cut
    for sweep in range(schedule.sweeps):
        temperature = schedule.temperature(sweep)
        order = rng.permutation(len(nodes))
        for i in order:
            gain = flip_gain(i)
            if gain >= 0 or rng.random() < np.exp(gain / temperature):
                sides[i] = 1 - sides[i]
                current_cut += gain
                if current_cut > best_cut:
                    best_cut = current_cut
                    best_sides = sides.copy()
    labels = {node: int(best_sides[index[node]]) for node in nodes}
    return Bipartition.from_labels(labels)
