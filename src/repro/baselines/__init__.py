"""Software and prior-work baselines used in the paper's comparisons."""

from repro.baselines.simulated_annealing import (
    AnnealingSchedule,
    anneal_coloring,
    anneal_maxcut,
)
from repro.baselines.tabu import TabuParameters, tabucol
from repro.baselines.exact import (
    exact_coloring,
    exact_coloring_backtracking,
    exact_coloring_sat,
    exact_kings_coloring,
)
from repro.baselines.single_stage_ropm import SingleStageROPM
from repro.baselines.roim_maxcut import ROIMCutResult, ROIMMaxCut
from repro.baselines.onehot_ising import OneHotSolveResult, solve_onehot_coloring

__all__ = [
    "AnnealingSchedule",
    "anneal_coloring",
    "anneal_maxcut",
    "TabuParameters",
    "tabucol",
    "exact_coloring",
    "exact_coloring_backtracking",
    "exact_coloring_sat",
    "exact_kings_coloring",
    "SingleStageROPM",
    "ROIMMaxCut",
    "ROIMCutResult",
    "OneHotSolveResult",
    "solve_onehot_coloring",
]
