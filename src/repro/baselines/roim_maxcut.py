"""Ring-oscillator Ising machine (ROIM) max-cut baseline.

The coupled-ROSC Ising machines the paper compares against ([7], [8]) solve
max-cut: negatively coupled oscillators self-anneal and a 2nd-order SHIL
binarizes the phases into the two Ising spin values.  This is exactly one
stage of the MSROPM, so the baseline reuses the same dynamics substrate with a
single binary stage and returns cut values rather than colorings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.config import MSROPMConfig
from repro.core.stages import StageExecutor
from repro.dynamics.noise import random_initial_phases
from repro.graphs.graph import Graph
from repro.graphs.partition import Bipartition, cut_size
from repro.ising.maxcut import MaxCutProblem
from repro.rng import iteration_seeds, make_rng


@dataclass
class ROIMCutResult:
    """Result of one ROIM max-cut run."""

    partition: Bipartition
    cut_value: float
    accuracy: float
    run_time: float


@dataclass
class ROIMMaxCut:
    """A single-stage ring-oscillator Ising machine solving max-cut.

    Parameters
    ----------
    graph:
        Problem graph.
    config:
        Circuit/timing configuration shared with the MSROPM.
    reference_cut:
        Normalization for the reported accuracy; defaults to the total edge
        weight (exact for bipartite graphs, an upper bound otherwise).
    weights:
        Optional per-edge weights of the max-cut objective (default: unit
        weights).  The phase dynamics are weight-agnostic — like the real
        hardware, the fabric couples every edge identically — but cut values
        and accuracies are scored against the weighted objective.
    """

    graph: Graph
    config: Optional[MSROPMConfig] = None
    reference_cut: Optional[float] = None
    weights: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.graph.num_nodes == 0:
            raise ConfigurationError("cannot build a ROIM for an empty graph")
        self._config = self.config or MSROPMConfig(num_colors=4)
        self._problem = MaxCutProblem(self.graph, weights=self.weights)
        self._reference = (
            self.reference_cut if self.reference_cut is not None else self._problem.total_weight()
        )
        self._edge_index = self.graph.edge_index_array()

    @property
    def run_time(self) -> float:
        """Modeled single-run time (one binary stage)."""
        return self._config.timing.total_for_stages(1)

    def run_iteration(self, seed: Optional[int] = None) -> ROIMCutResult:
        """One annealing + SHIL binarization run; returns the resulting cut."""
        config = self._config
        rng = make_rng(seed)
        num = self.graph.num_nodes
        executor = StageExecutor(
            config=config, edge_index=self._edge_index, num_oscillators=num, collect_trajectory=False
        )
        phases = random_initial_phases(num, rng)
        _, bits, _ = executor.run_stage(1, phases, np.zeros(num, dtype=int), rng)
        labels = {node: int(bit) for node, bit in zip(self.graph.nodes, bits)}
        partition = Bipartition.from_labels(labels)
        cut_value = self._problem.cut_value(partition)
        # Raw ratio, deliberately unclipped: against a heuristic reference
        # (e.g. the King's striping cut) the machine can land above 1.0, and
        # hiding that would overstate the reference.  Display code clips via
        # repro.analysis.reporting.present_accuracy.
        accuracy = cut_value / self._reference if self._reference > 0 else 1.0
        return ROIMCutResult(
            partition=partition, cut_value=cut_value, accuracy=accuracy, run_time=self.run_time
        )

    def solve(self, iterations: int = 40, seed: Optional[int] = None) -> List[ROIMCutResult]:
        """Run ``iterations`` independent runs and return all results."""
        if iterations < 1:
            raise ConfigurationError("iterations must be at least 1")
        seeds = iteration_seeds(seed, iterations)
        return [self.run_iteration(seed=s) for s in seeds]

    def best_of(self, iterations: int = 40, seed: Optional[int] = None) -> ROIMCutResult:
        """Return the best-cut result among ``iterations`` runs."""
        results = self.solve(iterations=iterations, seed=seed)
        return max(results, key=lambda item: item.cut_value)
