"""65 nm CMOS technology constants used by the behavioural circuit models.

The paper implements the MSROPM in a 65 nm general-purpose (GP) process at
1 V.  Since no PDK is available here, the circuit layer uses representative
65 nm GP constants (gate capacitance per micron of width, effective drive
currents, leakage densities).  The values below are textbook-level estimates;
they are only used to produce power/delay numbers with the right order of
magnitude and the right scaling trends (Table 1's power column), not to
reproduce SPICE waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CircuitError
from repro.units import ff, ghz, ua


@dataclass(frozen=True)
class Technology:
    """A CMOS technology corner.

    Attributes
    ----------
    name:
        Human-readable label ("65nm-GP").
    supply_voltage:
        Nominal supply voltage in volts.
    gate_capacitance_per_um:
        Gate capacitance per micrometre of transistor width (farads).
    wire_capacitance_per_stage:
        Lumped local interconnect capacitance per inverter stage (farads).
    nmos_drive_current_per_um / pmos_drive_current_per_um:
        Effective saturation drive current per micrometre of width (amperes).
    leakage_current_per_um:
        Off-state leakage per micrometre of total width (amperes).
    min_width_um:
        Minimum transistor width in micrometres.
    """

    name: str = "65nm-GP"
    supply_voltage: float = 1.0
    gate_capacitance_per_um: float = ff(1.0)
    wire_capacitance_per_stage: float = ff(0.8)
    nmos_drive_current_per_um: float = ua(600.0)
    pmos_drive_current_per_um: float = ua(300.0)
    leakage_current_per_um: float = ua(0.2)
    min_width_um: float = 0.12

    def __post_init__(self) -> None:
        if self.supply_voltage <= 0:
            raise CircuitError(f"supply_voltage must be positive, got {self.supply_voltage}")
        if self.gate_capacitance_per_um <= 0:
            raise CircuitError("gate_capacitance_per_um must be positive")
        if self.nmos_drive_current_per_um <= 0 or self.pmos_drive_current_per_um <= 0:
            raise CircuitError("drive currents must be positive")
        if self.leakage_current_per_um < 0:
            raise CircuitError("leakage_current_per_um must be non-negative")
        if self.min_width_um <= 0:
            raise CircuitError("min_width_um must be positive")


#: Default technology used across the library — the paper's 65 nm GP, 1 V corner.
TECH_65NM_GP = Technology()

#: A low-power flavour (higher threshold → lower leakage, weaker drive), used in
#: the prior-work comparison to mimic the LP process of the 1,968-node ROIM.
TECH_65NM_LP = Technology(
    name="65nm-LP",
    supply_voltage=1.0,
    gate_capacitance_per_um=ff(1.1),
    wire_capacitance_per_stage=ff(0.8),
    nmos_drive_current_per_um=ua(420.0),
    pmos_drive_current_per_um=ua(210.0),
    leakage_current_per_um=ua(0.02),
    min_width_um=0.12,
)


def dynamic_power(capacitance: float, voltage: float, frequency: float, activity: float = 1.0) -> float:
    """Return the switching power ``alpha * C * V^2 * f`` in watts."""
    if capacitance < 0 or frequency < 0:
        raise CircuitError("capacitance and frequency must be non-negative")
    if not 0.0 <= activity <= 1.0:
        raise CircuitError(f"activity must be in [0, 1], got {activity}")
    return activity * capacitance * voltage * voltage * frequency


def leakage_power(total_width_um: float, technology: Technology = TECH_65NM_GP) -> float:
    """Return the static leakage power for ``total_width_um`` of transistor width."""
    if total_width_um < 0:
        raise CircuitError("total_width_um must be non-negative")
    return total_width_um * technology.leakage_current_per_um * technology.supply_voltage
