"""Behavioural circuit layer: 65 nm blocks of the MSROPM (Fig. 4 of the paper)."""

from repro.circuit.technology import (
    TECH_65NM_GP,
    TECH_65NM_LP,
    Technology,
    dynamic_power,
    leakage_power,
)
from repro.circuit.inverter import Inverter, ROSC_INVERTER
from repro.circuit.ring_oscillator import RingOscillator, paper_rosc
from repro.circuit.coupling import CouplingElement, b2b_coupling
from repro.circuit.shil import (
    SHIL1_FUNDAMENTAL_OFFSET,
    SHIL2_FUNDAMENTAL_OFFSET,
    ShilSource,
    n_shil,
    shil1,
    shil2,
)
from repro.circuit.dff import DFlipFlop, ReferenceSignal, reference_bank
from repro.circuit.mux import ShilMux
from repro.circuit.readout import PhaseReadout, binary_readout
from repro.circuit.control import (
    ControlSchedule,
    ControlState,
    StageInterval,
    StageKind,
    TimingPlan,
    msropm_schedule,
    multi_stage_schedule,
)
from repro.circuit.power import PAPER_POWER_MW, PowerModel, energy_per_solution
from repro.circuit.netlist import FabricNetlist

__all__ = [
    "Technology",
    "TECH_65NM_GP",
    "TECH_65NM_LP",
    "dynamic_power",
    "leakage_power",
    "Inverter",
    "ROSC_INVERTER",
    "RingOscillator",
    "paper_rosc",
    "CouplingElement",
    "b2b_coupling",
    "ShilSource",
    "shil1",
    "shil2",
    "n_shil",
    "SHIL1_FUNDAMENTAL_OFFSET",
    "SHIL2_FUNDAMENTAL_OFFSET",
    "DFlipFlop",
    "ReferenceSignal",
    "reference_bank",
    "ShilMux",
    "PhaseReadout",
    "binary_readout",
    "ControlSchedule",
    "ControlState",
    "StageInterval",
    "StageKind",
    "TimingPlan",
    "msropm_schedule",
    "multi_stage_schedule",
    "PowerModel",
    "PAPER_POWER_MW",
    "energy_per_solution",
    "FabricNetlist",
]
