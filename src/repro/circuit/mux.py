"""SHIL selection multiplexer and per-oscillator injection gating.

Each ROSC block receives both SHIL signals through a 2:1 MUX (Fig. 4(a)):
``SHIL_SEL`` picks which of the two phase-shifted SHILs is forwarded and
``SHIL_EN`` gates the injection entirely (the PMOS injector is off during the
free-running annealing intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exceptions import CircuitError
from repro.circuit.shil import ShilSource


@dataclass
class ShilMux:
    """A 2:1 SHIL multiplexer with an enable gate.

    Attributes
    ----------
    shil_a / shil_b:
        The two selectable SHIL sources (the paper's SHIL 1 and SHIL 2).
    select:
        ``0`` forwards ``shil_a``, ``1`` forwards ``shil_b`` (``SHIL_SEL``).
    enabled:
        ``SHIL_EN``; when ``False`` no injection reaches the oscillator.
    """

    shil_a: ShilSource
    shil_b: ShilSource
    select: int = 0
    enabled: bool = False

    def __post_init__(self) -> None:
        if self.select not in (0, 1):
            raise CircuitError(f"select must be 0 or 1, got {self.select}")

    # ------------------------------------------------------------------
    @property
    def active_source(self) -> Optional[ShilSource]:
        """The SHIL source currently reaching the oscillator, or ``None``."""
        if not self.enabled:
            return None
        return self.shil_a if self.select == 0 else self.shil_b

    def set_select(self, value: int) -> None:
        """Drive ``SHIL_SEL``."""
        if value not in (0, 1):
            raise CircuitError(f"select must be 0 or 1, got {value}")
        self.select = value

    def set_enabled(self, value: bool) -> None:
        """Drive ``SHIL_EN``."""
        self.enabled = bool(value)

    def injection_strength(self) -> float:
        """Effective injection strength delivered to the oscillator."""
        source = self.active_source
        return source.strength if source is not None else 0.0

    def fundamental_offset(self) -> float:
        """Fundamental lock-grid offset of the active source (0 when disabled)."""
        source = self.active_source
        return source.fundamental_offset if source is not None else 0.0
