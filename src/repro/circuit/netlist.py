"""Oscillator-fabric netlist: the structural view of a mapped problem.

A :class:`FabricNetlist` ties together one ROSC block per graph node, one
gated B2B coupling per graph edge, and the per-oscillator SHIL MUX / read-out
blocks.  It is the bridge between the problem graph and both the dynamics
simulation (which consumes the coupling matrix and SHIL routing) and the power
model (which consumes the block counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import MappingError
from repro.circuit.coupling import CouplingElement, b2b_coupling
from repro.circuit.mux import ShilMux
from repro.circuit.readout import PhaseReadout
from repro.circuit.ring_oscillator import RingOscillator, paper_rosc
from repro.circuit.shil import ShilSource, shil1, shil2
from repro.graphs.graph import Graph, Node


@dataclass
class FabricNetlist:
    """The structural netlist of an MSROPM instance.

    Parameters
    ----------
    graph:
        The mapped problem graph (one oscillator per node, one coupling per edge).
    oscillator:
        ROSC block model shared by all nodes.
    coupling_strength:
        Normalized strength programmed into every B2B coupling.
    shil_strength:
        Normalized injection strength of both SHIL sources.
    num_colors:
        Read-out resolution (4 for the paper's 4-coloring).
    """

    graph: Graph
    oscillator: RingOscillator = field(default_factory=paper_rosc)
    coupling_strength: float = 0.1
    shil_strength: float = 0.2
    num_colors: int = 4

    def __post_init__(self) -> None:
        if self.graph.num_nodes == 0:
            raise MappingError("cannot build a fabric for an empty graph")
        if self.coupling_strength < 0 or self.shil_strength < 0:
            raise MappingError("coupling_strength and shil_strength must be non-negative")
        if self.num_colors < 2:
            raise MappingError(f"num_colors must be at least 2, got {self.num_colors}")
        frequency = self.oscillator.natural_frequency
        self._shil_1 = shil1(frequency, strength=self.shil_strength)
        self._shil_2 = shil2(frequency, strength=self.shil_strength)
        self._couplings: Dict[Tuple[Node, Node], CouplingElement] = {
            edge: b2b_coupling(self.coupling_strength) for edge in self.graph.edges()
        }
        self._muxes: Dict[Node, ShilMux] = {
            node: ShilMux(shil_a=self._shil_1, shil_b=self._shil_2) for node in self.graph.nodes
        }
        self._readout = PhaseReadout(num_phases=self.num_colors, frequency=frequency)

    # ------------------------------------------------------------------
    @property
    def num_oscillators(self) -> int:
        """Number of ROSC blocks (graph nodes)."""
        return self.graph.num_nodes

    @property
    def num_couplings(self) -> int:
        """Number of B2B coupling blocks (graph edges)."""
        return self.graph.num_edges

    @property
    def shil_sources(self) -> Tuple[ShilSource, ShilSource]:
        """The two phase-shifted SHIL sources (SHIL 1, SHIL 2)."""
        return (self._shil_1, self._shil_2)

    @property
    def readout(self) -> PhaseReadout:
        """The shared phase read-out block model."""
        return self._readout

    def coupling_element(self, u: Node, v: Node) -> CouplingElement:
        """Return the coupling element on edge ``(u, v)``."""
        if (u, v) in self._couplings:
            return self._couplings[(u, v)]
        if (v, u) in self._couplings:
            return self._couplings[(v, u)]
        raise MappingError(f"({u!r}, {v!r}) is not an edge of the mapped graph")

    def mux(self, node: Node) -> ShilMux:
        """Return the SHIL MUX of ``node``'s oscillator block."""
        try:
            return self._muxes[node]
        except KeyError as exc:
            raise MappingError(f"node {node!r} is not mapped to an oscillator") from exc

    # ------------------------------------------------------------------
    def apply_partition_gating(self, partition_labels: Mapping[Node, int]) -> int:
        """Drive ``P_EN`` low on every coupling that crosses the partition.

        Returns the number of couplings gated off.  ``partition_labels`` maps
        every node to its stage-1 side (0 or 1); it also programs ``SHIL_SEL``
        so side-1 oscillators receive SHIL 2 in the final stage.
        """
        gated = 0
        for (u, v), element in self._couplings.items():
            label_u = partition_labels.get(u)
            label_v = partition_labels.get(v)
            if label_u is None or label_v is None:
                raise MappingError("partition labels must cover every mapped node")
            crosses = label_u != label_v
            element.set_partition_enable(not crosses)
            if crosses:
                gated += 1
        for node, mux in self._muxes.items():
            mux.set_select(int(partition_labels[node]))
        return gated

    def clear_partition_gating(self) -> None:
        """Re-enable every coupling and reset ``SHIL_SEL`` to SHIL 1."""
        for element in self._couplings.values():
            element.set_partition_enable(True)
        for mux in self._muxes.values():
            mux.set_select(0)

    def set_shil_enabled(self, value: bool) -> None:
        """Drive ``SHIL_EN`` on every oscillator block."""
        for mux in self._muxes.values():
            mux.set_enabled(value)

    # ------------------------------------------------------------------
    def coupling_matrix(self, respect_partition: bool = True) -> sparse.csr_matrix:
        """Return the effective (Kuramoto) coupling matrix in node-index order.

        Entries are the *positive* coupling strengths of conducting elements;
        the anti-phase (negative Ising) character of B2B couplings is applied
        by the dynamics layer, which uses this matrix with a repulsive sign.
        Couplings gated off by ``P_EN`` are included only when
        ``respect_partition`` is False.
        """
        index = self.graph.node_index()
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for (u, v), element in self._couplings.items():
            if not element.enabled:
                continue
            if respect_partition and not element.partition_enabled:
                continue
            i, j = index[u], index[v]
            rows.extend((i, j))
            cols.extend((j, i))
            vals.extend((element.strength, element.strength))
        n = self.graph.num_nodes
        return sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))

    def shil_offsets(self) -> np.ndarray:
        """Return the per-oscillator fundamental lock-grid offsets (radians).

        Oscillators whose MUX selects SHIL 1 get offset 0; those on SHIL 2 get
        pi/2 — together they realize the 4-phase discretization.
        """
        offsets = np.zeros(self.graph.num_nodes, dtype=float)
        index = self.graph.node_index()
        for node, mux in self._muxes.items():
            source = mux.shil_a if mux.select == 0 else mux.shil_b
            offsets[index[node]] = source.fundamental_offset
        return offsets

    def shil_selects(self) -> np.ndarray:
        """Return the per-oscillator ``SHIL_SEL`` values (0 or 1)."""
        selects = np.zeros(self.graph.num_nodes, dtype=int)
        index = self.graph.node_index()
        for node, mux in self._muxes.items():
            selects[index[node]] = mux.select
        return selects
