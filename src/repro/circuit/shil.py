"""Sub-harmonic injection locking (SHIL) signal sources.

A SHIL signal runs at twice the oscillator frequency and, when injected into a
2nd-order-susceptible ROSC, binarizes its phase to one of two values 180 deg
apart.  Which two values depends on the phase of the SHIL itself: the paper's
SHIL 1 locks oscillators at 0/180 deg and SHIL 2 — shifted by 180 deg of the
*SHIL* waveform, i.e. 90 deg of the fundamental — locks them at 90/270 deg.
Alternating the two across the two solution stages yields the four Potts
phases.

In the paper's simulations the SHIL (and the read-out references) are ideal
external square waves; :class:`ShilSource` mirrors that with an ideal square
(or sine) generator plus the injection-strength bookkeeping the dynamics layer
needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import CircuitError
from repro.units import ghz

#: Phase offset (of the fundamental) produced by the paper's SHIL 1.
SHIL1_FUNDAMENTAL_OFFSET = 0.0

#: Phase offset (of the fundamental) produced by the paper's SHIL 2: its
#: waveform is 180 deg out of phase at 2f, which corresponds to a 90 deg shift
#: of the locked fundamental phases (0/180 -> 90/270).
SHIL2_FUNDAMENTAL_OFFSET = math.pi / 2.0


@dataclass(frozen=True)
class ShilSource:
    """An ideal SHIL generator at ``order`` times the oscillator frequency.

    Attributes
    ----------
    oscillator_frequency:
        Fundamental frequency of the ROSCs being injected (hertz).
    order:
        Harmonic order of the injection; 2 gives two lock phases (Ising-style
        binarization), N gives N lock phases (the single-stage N-SHIL ROPM).
    fundamental_offset:
        Phase offset of the *locked fundamental* grid in radians.  0 locks at
        ``{0, pi}``; ``pi/2`` locks at ``{pi/2, 3*pi/2}`` (SHIL 2).
    strength:
        Normalized injection strength (relative to the oscillator drive); the
        dynamics layer uses it as the amplitude of the ``sin(order * theta)``
        restoring term.
    waveform:
        "square" (the paper's simplified external source) or "sine".
    """

    oscillator_frequency: float = ghz(1.3)
    order: int = 2
    fundamental_offset: float = SHIL1_FUNDAMENTAL_OFFSET
    strength: float = 0.2
    waveform: str = "square"

    def __post_init__(self) -> None:
        if self.oscillator_frequency <= 0:
            raise CircuitError("oscillator_frequency must be positive")
        if self.order < 2:
            raise CircuitError(f"SHIL order must be at least 2, got {self.order}")
        if self.strength < 0:
            raise CircuitError(f"SHIL strength must be non-negative, got {self.strength}")
        if self.waveform not in ("square", "sine"):
            raise CircuitError(f"waveform must be 'square' or 'sine', got {self.waveform!r}")

    # ------------------------------------------------------------------
    @property
    def frequency(self) -> float:
        """Injection frequency ``order * f_osc`` (hertz)."""
        return self.order * self.oscillator_frequency

    @property
    def num_lock_phases(self) -> int:
        """Number of stable fundamental phases the injection creates."""
        return self.order

    def lock_phases(self) -> np.ndarray:
        """Return the stable fundamental phases (radians, wrapped to [0, 2*pi))."""
        base = 2.0 * np.pi * np.arange(self.order) / self.order
        return np.mod(base + self.fundamental_offset, 2.0 * np.pi)

    # ------------------------------------------------------------------
    def value(self, time: float) -> float:
        """Instantaneous source value in [-1, 1] at ``time`` seconds.

        The source phase is chosen so that its restoring force is consistent
        with :meth:`lock_phases` (the dynamics layer uses the closed-form
        ``sin`` term rather than sampling this waveform; ``value`` exists for
        waveform plotting and for the voltage-level reconstruction).
        """
        angle = 2.0 * np.pi * self.frequency * time - self.order * self.fundamental_offset
        if self.waveform == "sine":
            return float(np.sin(angle))
        return float(np.sign(np.sin(angle))) if not np.isclose(np.sin(angle), 0.0) else 0.0

    def restoring_torque(self, phases: np.ndarray) -> np.ndarray:
        """Return the phase-domain restoring term ``-strength * sin(order*(theta - offset))``.

        The fixed points with negative slope (stable locks) are exactly
        :meth:`lock_phases`.
        """
        phases = np.asarray(phases, dtype=float)
        return -self.strength * np.sin(self.order * (phases - self.fundamental_offset))

    def with_strength(self, strength: float) -> "ShilSource":
        """Return a copy with a different injection strength."""
        from dataclasses import replace

        return replace(self, strength=strength)


def shil1(oscillator_frequency: float = ghz(1.3), strength: float = 0.2) -> ShilSource:
    """The paper's SHIL 1: locks fundamental phases at 0 and 180 degrees."""
    return ShilSource(
        oscillator_frequency=oscillator_frequency,
        order=2,
        fundamental_offset=SHIL1_FUNDAMENTAL_OFFSET,
        strength=strength,
    )


def shil2(oscillator_frequency: float = ghz(1.3), strength: float = 0.2) -> ShilSource:
    """The paper's SHIL 2: locks fundamental phases at 90 and 270 degrees."""
    return ShilSource(
        oscillator_frequency=oscillator_frequency,
        order=2,
        fundamental_offset=SHIL2_FUNDAMENTAL_OFFSET,
        strength=strength,
    )


def n_shil(order: int, oscillator_frequency: float = ghz(1.3), strength: float = 0.2) -> ShilSource:
    """A higher-order SHIL locking at ``order`` equally spaced phases.

    This is the mechanism of the single-stage ROPM prior work (3-SHIL for
    3-coloring) re-used here as a baseline.
    """
    return ShilSource(
        oscillator_frequency=oscillator_frequency,
        order=order,
        fundamental_offset=0.0,
        strength=strength,
    )
