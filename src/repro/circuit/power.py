"""Power model of the MSROPM fabric.

Table 1 of the paper reports the average power of the four benchmark
implementations: 9.4 mW (49 nodes), 60.3 mW (400), 146.1 mW (1024) and
283.4 mW (2116) — i.e. roughly linear in the number of oscillators with a
per-node cost that shrinks slightly with size (fixed control overhead
amortizes, boundary oscillators have fewer couplings).

The model below builds the estimate bottom-up from the circuit blocks:

* per-ROSC switching + leakage power (11 stages at 1.3 GHz),
* per-coupling B2B switching power (active only while couplings are enabled),
* per-ROSC SHIL injector and read-out (DFF + reference buffer) power,
* a fixed controller overhead (clock generation, I/O, global enables).

The duty factors account for the control timeline: couplings are on for
roughly 5/6 of the 60 ns run and the SHIL injectors for 1/6 of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import CircuitError
from repro.circuit.coupling import CouplingElement, b2b_coupling
from repro.circuit.ring_oscillator import RingOscillator, paper_rosc
from repro.circuit.technology import TECH_65NM_GP, Technology, dynamic_power
from repro.units import as_mw, ghz, mw, uw


@dataclass
class PowerModel:
    """Bottom-up average-power estimator for an MSROPM fabric.

    Attributes
    ----------
    oscillator:
        The ROSC block model (default: the paper's 11-stage, 1.3 GHz ring).
    coupling:
        The B2B coupling element model.
    oscillator_activity:
        Effective switching-activity factor of the ROSC stages; below 1.0 it
        accounts for the reduced swing of injection-locked operation and for
        the intervals where the ring is disabled.
    coupling_duty / shil_duty:
        Fraction of the run during which couplings / SHIL injection are active
        (from the 60 ns control timeline: ~5/6 and ~1/6 respectively).
    readout_power_per_node:
        Power of the 4-DFF read-out and reference buffering per oscillator.
    controller_power:
        Fixed power of the global controller, clock generation and I/O.
    """

    oscillator: RingOscillator = field(default_factory=paper_rosc)
    coupling: CouplingElement = field(default_factory=b2b_coupling)
    oscillator_activity: float = 0.48
    coupling_duty: float = 5.0 / 6.0
    shil_duty: float = 1.0 / 6.0
    shil_injector_power: float = uw(8.0)
    readout_power_per_node: float = uw(6.0)
    controller_power: float = mw(2.0)

    def __post_init__(self) -> None:
        for name in ("oscillator_activity", "coupling_duty", "shil_duty"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CircuitError(f"{name} must be in [0, 1], got {value}")
        for name in ("shil_injector_power", "readout_power_per_node", "controller_power"):
            if getattr(self, name) < 0:
                raise CircuitError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    def oscillator_power(self) -> float:
        """Average power of one ROSC block (watts)."""
        dynamic = self.oscillator.dynamic_power(activity=self.oscillator_activity)
        return dynamic + self.oscillator.leakage_power()

    def coupling_power(self) -> float:
        """Average power of one enabled coupling element (watts)."""
        switching = self.coupling.switching_power(self.oscillator.natural_frequency)
        return self.coupling_duty * switching + self.coupling.leakage_power()

    def per_node_overhead(self) -> float:
        """SHIL injector plus read-out power per oscillator (watts)."""
        return self.shil_duty * self.shil_injector_power + self.readout_power_per_node

    def total_power(self, num_nodes: int, num_edges: int) -> float:
        """Average power of a fabric with ``num_nodes`` ROSCs and ``num_edges`` couplings."""
        if num_nodes < 0 or num_edges < 0:
            raise CircuitError("num_nodes and num_edges must be non-negative")
        return (
            num_nodes * (self.oscillator_power() + self.per_node_overhead())
            + num_edges * self.coupling_power()
            + self.controller_power
        )

    def power_breakdown(self, num_nodes: int, num_edges: int) -> Dict[str, float]:
        """Return the per-component contributions in watts."""
        if num_nodes < 0 or num_edges < 0:
            raise CircuitError("num_nodes and num_edges must be non-negative")
        return {
            "oscillators": num_nodes * self.oscillator_power(),
            "couplings": num_edges * self.coupling_power(),
            "shil_and_readout": num_nodes * self.per_node_overhead(),
            "controller": self.controller_power,
        }

    def total_power_mw(self, num_nodes: int, num_edges: int) -> float:
        """Average power in milliwatts (the unit of Table 1)."""
        return as_mw(self.total_power(num_nodes, num_edges))


#: Power figures reported by the paper (Table 1), in milliwatts, keyed by node count.
PAPER_POWER_MW = {49: 9.4, 400: 60.3, 1024: 146.1, 2116: 283.4}


def energy_per_solution(power_watts: float, time_to_solution_seconds: float) -> float:
    """Return energy per run in joules."""
    if power_watts < 0 or time_to_solution_seconds < 0:
        raise CircuitError("power and time must be non-negative")
    return power_watts * time_to_solution_seconds
