"""Phase read-out block: reference signals + DFF bank per oscillator.

Under SHIL each oscillator's phase is pinned near one of the K lock phases,
so sampling the oscillator output with K references whose edges sit at those
phases produces a one-hot DFF pattern (Fig. 4(c)).  This module converts
continuous phases into sampled spin values the way the hardware would, with
an explicit model of what happens when a phase sits ambiguously between two
lock points (metastable sample → nearest-phase fallback).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.circuit.dff import DFlipFlop, ReferenceSignal, reference_bank
from repro.units import ghz


@dataclass
class PhaseReadout:
    """K-phase read-out circuit for one or many oscillators.

    Attributes
    ----------
    num_phases:
        Read-out resolution (number of reference signals / DFFs per ROSC).
    frequency:
        Oscillator fundamental frequency.
    ambiguity_window:
        Half-width (radians) of the region between two lock phases where the
        hardware sample is considered unreliable; phases inside the window are
        still resolved to the nearest lock phase, but the read-out reports them
        via :attr:`last_ambiguous_count` so experiments can track marginal locks.
    """

    num_phases: int = 4
    frequency: float = ghz(1.3)
    ambiguity_window: float = math.pi / 16.0
    last_ambiguous_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.num_phases < 2:
            raise CircuitError(f"num_phases must be at least 2, got {self.num_phases}")
        if self.frequency <= 0:
            raise CircuitError("frequency must be positive")
        if self.ambiguity_window < 0:
            raise CircuitError("ambiguity_window must be non-negative")
        self._references = reference_bank(self.num_phases, self.frequency)

    # ------------------------------------------------------------------
    @property
    def references(self) -> List[ReferenceSignal]:
        """The K reference signals (REF_1 .. REF_K)."""
        return list(self._references)

    def lock_phases(self) -> np.ndarray:
        """The K nominal lock phases in radians."""
        return 2.0 * np.pi * np.arange(self.num_phases) / self.num_phases

    # ------------------------------------------------------------------
    def sample_phase(self, phase: float) -> int:
        """Return the spin value (0..K-1) captured for a single oscillator phase."""
        spins = self.sample_phases(np.array([phase], dtype=float))
        return int(spins[0])

    def sample_phases(self, phases: np.ndarray, offset: float = 0.0) -> np.ndarray:
        """Sample an array of phases into spin values 0..K-1.

        ``offset`` is a common-mode reference offset (e.g. the phase of the
        reference clock distribution) subtracted before sampling.
        """
        phases = np.mod(np.asarray(phases, dtype=float) - offset, 2.0 * np.pi)
        step = 2.0 * np.pi / self.num_phases
        spins = np.rint(phases / step).astype(int) % self.num_phases
        # Distance from the chosen lock point, used for the ambiguity accounting.
        residual = np.abs(phases - spins * step)
        residual = np.minimum(residual, 2.0 * np.pi - residual)
        boundary_distance = step / 2.0 - residual
        self.last_ambiguous_count = int(np.sum(boundary_distance < self.ambiguity_window))
        return spins

    def one_hot(self, phase: float) -> np.ndarray:
        """Return the DFF capture pattern (one-hot K-vector) for ``phase``."""
        pattern = np.zeros(self.num_phases, dtype=int)
        pattern[self.sample_phase(phase)] = 1
        return pattern

    def dff_bank(self) -> List[DFlipFlop]:
        """Return a fresh bank of K DFFs (one per reference), for structural tests."""
        return [DFlipFlop() for _ in range(self.num_phases)]


def binary_readout(phases: np.ndarray, offset: float = 0.0, frequency: float = ghz(1.3)) -> np.ndarray:
    """Two-phase read-out helper: classify phases as 0 (near ``offset``) or 1 (near ``offset + pi``).

    Used after stage 1 to derive the partition (and hence ``P_EN`` /
    ``SHIL_SEL``) from the SHIL-1-locked phases.
    """
    readout = PhaseReadout(num_phases=2, frequency=frequency)
    return readout.sample_phases(np.asarray(phases, dtype=float), offset=offset)
