"""D flip-flop and reference-signal models for the phase read-out.

The MSROPM samples each oscillator's output with a bank of DFFs clocked by
reference signals whose rising edges sit at the phases corresponding to the
Potts spins (Fig. 4(c) of the paper).  Under SHIL the oscillator phases are
absolute with respect to those references, so a simple edge-sample suffices:
exactly one of the K DFFs captures a logic high.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.units import ghz


@dataclass
class DFlipFlop:
    """An edge-triggered D flip-flop with an ideal setup/hold window.

    Attributes
    ----------
    setup_time / hold_time:
        Timing window in seconds; a data transition inside the window makes
        the captured value metastable, which the model resolves pessimistically
        to ``False`` and flags via :attr:`last_sample_metastable`.
    """

    setup_time: float = 20e-12
    hold_time: float = 10e-12
    state: bool = False
    last_sample_metastable: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.setup_time < 0 or self.hold_time < 0:
            raise CircuitError("setup_time and hold_time must be non-negative")

    def sample(self, data: bool, data_transition_offset: Optional[float] = None) -> bool:
        """Capture ``data`` at a clock edge.

        ``data_transition_offset`` is the time (seconds) between the nearest
        data transition and the clock edge; if it falls inside the setup/hold
        window, the sample is flagged metastable and resolves to ``False``.
        """
        self.last_sample_metastable = False
        if data_transition_offset is not None:
            if -self.hold_time < data_transition_offset < self.setup_time:
                self.last_sample_metastable = True
                self.state = False
                return self.state
        self.state = bool(data)
        return self.state


@dataclass(frozen=True)
class ReferenceSignal:
    """A square reference waveform whose rising edge marks one Potts phase.

    Attributes
    ----------
    frequency:
        Reference frequency (equal to the oscillator fundamental).
    phase:
        Phase of the rising edge in radians relative to the global time origin.
    duty_cycle:
        High-time fraction; 0.5 for the paper's simplified external squares.
    """

    frequency: float = ghz(1.3)
    phase: float = 0.0
    duty_cycle: float = 0.5

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise CircuitError("frequency must be positive")
        if not 0.0 < self.duty_cycle < 1.0:
            raise CircuitError(f"duty_cycle must be in (0, 1), got {self.duty_cycle}")

    def value(self, time: float) -> bool:
        """Logic level of the reference at ``time`` seconds."""
        cycle_position = math.fmod(self.frequency * time - self.phase / (2.0 * math.pi), 1.0)
        if cycle_position < 0:
            cycle_position += 1.0
        return cycle_position < self.duty_cycle

    def rising_edge_times(self, start: float, stop: float) -> np.ndarray:
        """Return the rising-edge instants in ``[start, stop)``."""
        if stop < start:
            raise CircuitError("stop must be >= start")
        period = 1.0 / self.frequency
        offset = self.phase / (2.0 * math.pi) * period
        first_index = math.ceil((start - offset) / period)
        edges = []
        index = first_index
        while offset + index * period < stop:
            edge = offset + index * period
            if edge >= start:
                edges.append(edge)
            index += 1
        return np.array(edges, dtype=float)


def reference_bank(num_phases: int, frequency: float = ghz(1.3)) -> List[ReferenceSignal]:
    """Return ``num_phases`` references with edges at the Potts lock phases.

    For 4-coloring this yields REF_1..REF_4 with rising edges at 0, 90, 180 and
    270 degrees of the oscillator period.
    """
    if num_phases < 2:
        raise CircuitError(f"num_phases must be at least 2, got {num_phases}")
    return [
        ReferenceSignal(frequency=frequency, phase=2.0 * math.pi * k / num_phases)
        for k in range(num_phases)
    ]
