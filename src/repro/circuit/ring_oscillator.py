"""Ring oscillator (ROSC) behavioural model.

The paper's compute element is an 11-stage inverter ring targeted at
1.3 GHz.  This model derives the natural frequency from the inverter delays,
scales the inverter sizing so the target frequency is met exactly (standing in
for the transistor-level tuning a designer would do), and reports power,
phase-noise-induced jitter and injection-locking susceptibility parameters
consumed by the dynamics layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.exceptions import CircuitError
from repro.circuit.inverter import Inverter
from repro.circuit.technology import TECH_65NM_GP, Technology
from repro.units import ghz


@dataclass(frozen=True)
class RingOscillator:
    """An N-stage CMOS ring oscillator.

    Attributes
    ----------
    num_stages:
        Number of inverter stages (must be odd to oscillate; the paper uses 11).
    inverter:
        The per-stage inverter model.
    enable_gated:
        Whether the ROSC has a local enable (``L_EN``) gate transistor.  The
        gate adds a small series resistance (modelled as a delay penalty) and
        allows per-oscillator mapping of the problem.
    """

    num_stages: int = 11
    inverter: Inverter = field(default_factory=Inverter)
    enable_gated: bool = True

    #: Delay penalty factor of the enable gating footer/header (dimensionless).
    ENABLE_DELAY_PENALTY: float = 1.05

    def __post_init__(self) -> None:
        if self.num_stages < 3 or self.num_stages % 2 == 0:
            raise CircuitError(
                f"a ring oscillator needs an odd number of stages >= 3, got {self.num_stages}"
            )

    # ------------------------------------------------------------------
    @property
    def stage_delay(self) -> float:
        """Average per-stage delay (seconds), including the enable penalty."""
        delay = self.inverter.propagation_delay(fanout=1)
        if self.enable_gated:
            delay *= self.ENABLE_DELAY_PENALTY
        return delay

    @property
    def natural_frequency(self) -> float:
        """Free-running oscillation frequency ``1 / (2 * N * t_stage)`` in hertz."""
        return 1.0 / (2.0 * self.num_stages * self.stage_delay)

    @property
    def period(self) -> float:
        """Oscillation period in seconds."""
        return 1.0 / self.natural_frequency

    # ------------------------------------------------------------------
    def dynamic_power(self, activity: float = 1.0) -> float:
        """Switching power of the ring at its natural frequency (watts).

        Every stage toggles once per half-period, i.e. at the oscillation
        frequency; the total is ``N`` stages worth of ``C V^2 f``.
        """
        per_stage = self.inverter.switching_power(self.natural_frequency, activity=activity, fanout=1)
        return self.num_stages * per_stage

    def leakage_power(self) -> float:
        """Static leakage of the ring (watts)."""
        return self.num_stages * self.inverter.leakage()

    def total_power(self, activity: float = 1.0) -> float:
        """Dynamic plus leakage power (watts)."""
        return self.dynamic_power(activity) + self.leakage_power()

    # ------------------------------------------------------------------
    def period_jitter_rms(self, jitter_fraction: float = 0.01) -> float:
        """RMS cycle-to-cycle jitter in seconds (``jitter_fraction`` of the period).

        The paper relies on start-up jitter to decorrelate initial phases; a
        1 % cycle jitter is representative for an uncompensated 65 nm ring.
        """
        if jitter_fraction < 0:
            raise CircuitError(f"jitter_fraction must be non-negative, got {jitter_fraction}")
        return jitter_fraction * self.period

    def phase_noise_diffusion(self, jitter_fraction: float = 0.01) -> float:
        """Phase diffusion coefficient ``D`` (rad^2/s) of a white-noise phase walk.

        Derived from the cycle jitter: the phase variance accumulated per
        period is ``(2*pi * sigma_T / T)^2``, so ``D = variance / T``.
        """
        import math

        sigma = self.period_jitter_rms(jitter_fraction)
        variance_per_period = (2.0 * math.pi * sigma / self.period) ** 2
        return variance_per_period / self.period

    def scaled_to_frequency(self, target_frequency: float) -> "RingOscillator":
        """Return a copy re-sized so the natural frequency equals ``target_frequency``.

        Real designs hit a target frequency by sizing and loading tweaks; the
        model mimics that by scaling both transistor widths by the required
        ratio, keeping the 4:1 skew intact.  Scaling widths leaves the delay
        unchanged in this simple model (drive and load scale together), so the
        frequency adjustment is done through the wire capacitance instead.
        """
        if target_frequency <= 0:
            raise CircuitError(f"target_frequency must be positive, got {target_frequency}")
        ratio = self.natural_frequency / target_frequency
        new_wire_cap = self.inverter.technology.wire_capacitance_per_stage * ratio + \
            self.inverter.input_capacitance * (ratio - 1.0)
        if new_wire_cap < 0:
            # Target is faster than the unloaded ring: shrink the wire cap to (near) zero
            # and accept the residual mismatch rather than produce a negative capacitance.
            new_wire_cap = 0.0
        technology = replace(self.inverter.technology, wire_capacitance_per_stage=new_wire_cap)
        inverter = replace(self.inverter, technology=technology)
        return replace(self, inverter=inverter)


def paper_rosc(target_frequency: float = ghz(1.3)) -> RingOscillator:
    """Return the 11-stage, 4:1-skewed ROSC tuned to the paper's 1.3 GHz."""
    return RingOscillator().scaled_to_frequency(target_frequency)
