"""CMOS inverter behavioural model.

The ROSC of the paper is a chain of 11 inverters sized with a 4:1 PMOS:NMOS
width ratio — the skewed sizing creates the waveform asymmetry that makes the
oscillator susceptible to 2nd-order (sub-harmonic) injection locking.  The
model below captures the quantities the rest of the library needs:
propagation delay (to derive the oscillation frequency), switched capacitance
(for power) and total transistor width (for leakage).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CircuitError
from repro.circuit.technology import TECH_65NM_GP, Technology, dynamic_power, leakage_power


@dataclass(frozen=True)
class Inverter:
    """A static CMOS inverter.

    Attributes
    ----------
    nmos_width_um / pmos_width_um:
        Transistor widths in micrometres.  The paper's ROSC inverters use a
        4:1 PMOS:NMOS ratio for 2nd-order SHIL susceptibility.
    technology:
        The CMOS technology corner.
    """

    nmos_width_um: float = 0.3
    pmos_width_um: float = 1.2
    technology: Technology = TECH_65NM_GP

    def __post_init__(self) -> None:
        if self.nmos_width_um < self.technology.min_width_um:
            raise CircuitError(
                f"nmos_width_um {self.nmos_width_um} below minimum {self.technology.min_width_um}"
            )
        if self.pmos_width_um < self.technology.min_width_um:
            raise CircuitError(
                f"pmos_width_um {self.pmos_width_um} below minimum {self.technology.min_width_um}"
            )

    # ------------------------------------------------------------------
    @property
    def beta_ratio(self) -> float:
        """PMOS/NMOS width ratio (the paper uses 4.0)."""
        return self.pmos_width_um / self.nmos_width_um

    @property
    def input_capacitance(self) -> float:
        """Gate capacitance presented to the driving stage (farads)."""
        total_width = self.nmos_width_um + self.pmos_width_um
        return total_width * self.technology.gate_capacitance_per_um

    @property
    def total_width_um(self) -> float:
        """Total transistor width (for leakage estimates)."""
        return self.nmos_width_um + self.pmos_width_um

    def load_capacitance(self, fanout: int = 1) -> float:
        """Return the switched capacitance when driving ``fanout`` identical inverters."""
        if fanout < 0:
            raise CircuitError(f"fanout must be non-negative, got {fanout}")
        return fanout * self.input_capacitance + self.technology.wire_capacitance_per_stage

    def propagation_delay(self, fanout: int = 1) -> float:
        """Return the average propagation delay in seconds.

        The delay is the usual ``C * V / (2 * I_eff)`` estimate averaged over
        the pull-up and pull-down transitions; the 4:1 skew makes the rising
        and falling delays asymmetric, which the average hides but the
        dedicated rise/fall methods expose.
        """
        return (self.rise_delay(fanout) + self.fall_delay(fanout)) / 2.0

    def rise_delay(self, fanout: int = 1) -> float:
        """Delay of the output rising transition (PMOS pulling up), seconds."""
        load = self.load_capacitance(fanout)
        drive = self.pmos_width_um * self.technology.pmos_drive_current_per_um
        return load * self.technology.supply_voltage / (2.0 * drive)

    def fall_delay(self, fanout: int = 1) -> float:
        """Delay of the output falling transition (NMOS pulling down), seconds."""
        load = self.load_capacitance(fanout)
        drive = self.nmos_width_um * self.technology.nmos_drive_current_per_um
        return load * self.technology.supply_voltage / (2.0 * drive)

    def switching_power(self, frequency: float, activity: float = 1.0, fanout: int = 1) -> float:
        """Dynamic power when toggling at ``frequency`` (watts)."""
        return dynamic_power(
            self.load_capacitance(fanout), self.technology.supply_voltage, frequency, activity
        )

    def leakage(self) -> float:
        """Static leakage power (watts)."""
        return leakage_power(self.total_width_um, self.technology)


#: The inverter used in the paper's ROSC (4:1 PMOS:NMOS skew).
ROSC_INVERTER = Inverter()
