"""Control-signal timeline of the MSROPM (G_EN, L_EN, P_EN, SHIL_EN, SHIL_SEL).

The machine's operation is clocked by a fixed schedule of control events
(Fig. 3): random initialization, coupled self-annealing, SHIL-1 binarization
and read-out, partitioning, a second self-annealing interval, and the final
two-SHIL discretization and read-out.  This module defines the schedule as
data (a list of timed intervals with the control-signal values in force) so
the dynamics layer, the waveform reconstruction and the power model all agree
on a single timeline.

The default durations are the paper's: 5 ns initialization, 20 ns per
annealing stage, 5 ns per SHIL stabilization/read-out — 60 ns end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import StageError
from repro.units import ns


class StageKind(Enum):
    """The kinds of intervals in the MSROPM timeline."""

    INITIALIZE = "initialize"
    ANNEAL = "anneal"
    SHIL_LOCK = "shil_lock"
    READOUT = "readout"


@dataclass(frozen=True)
class ControlState:
    """The control-signal values in force during one interval.

    Attributes
    ----------
    couplings_on:
        Global coupling enable (``G_EN`` for the B2B blocks).
    oscillators_on:
        Global oscillator enable (``G_EN`` for the ROSC blocks).
    shil_enabled:
        ``SHIL_EN``: whether the injection MUX forwards a SHIL at all.
    respect_partition:
        Whether the ``P_EN`` gating (cross-partition couplings off) is active.
    dual_shil:
        ``False`` while every oscillator receives SHIL 1; ``True`` in the final
        stage where ``SHIL_SEL`` routes SHIL 2 to the 180-degree partition.
    """

    couplings_on: bool = False
    oscillators_on: bool = True
    shil_enabled: bool = False
    respect_partition: bool = False
    dual_shil: bool = False


@dataclass(frozen=True)
class StageInterval:
    """One interval of the timeline: a kind, a duration and a control state."""

    kind: StageKind
    duration: float
    control: ControlState
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise StageError(f"interval duration must be positive, got {self.duration}")


@dataclass(frozen=True)
class ControlSchedule:
    """An ordered list of :class:`StageInterval` making up one MSROPM run."""

    intervals: Tuple[StageInterval, ...]

    def __post_init__(self) -> None:
        if not self.intervals:
            raise StageError("a control schedule needs at least one interval")

    @property
    def total_duration(self) -> float:
        """End-to-end run time in seconds (the paper's 60 ns for 4-coloring)."""
        return sum(interval.duration for interval in self.intervals)

    def interval_at(self, time: float) -> StageInterval:
        """Return the interval in force at absolute ``time`` (seconds)."""
        if time < 0:
            raise StageError(f"time must be non-negative, got {time}")
        elapsed = 0.0
        for interval in self.intervals:
            elapsed += interval.duration
            if time < elapsed:
                return interval
        raise StageError(f"time {time} is beyond the schedule end {self.total_duration}")

    def boundaries(self) -> List[float]:
        """Return the cumulative interval end times."""
        times: List[float] = []
        elapsed = 0.0
        for interval in self.intervals:
            elapsed += interval.duration
            times.append(elapsed)
        return times

    def labelled(self, label: str) -> Optional[StageInterval]:
        """Return the first interval with the given label, or ``None``."""
        for interval in self.intervals:
            if interval.label == label:
                return interval
        return None


@dataclass(frozen=True)
class TimingPlan:
    """The paper's stage durations, in seconds.

    Defaults follow Section 4.1: 5 ns random initialization, 20 ns coupled
    annealing per stage, 5 ns SHIL stabilization + read-out per stage.
    """

    initialization: float = ns(5.0)
    annealing: float = ns(20.0)
    shil_settling: float = ns(5.0)

    def __post_init__(self) -> None:
        for name in ("initialization", "annealing", "shil_settling"):
            if getattr(self, name) <= 0:
                raise StageError(f"{name} must be positive")

    def total_for_stages(self, num_binary_stages: int) -> float:
        """Total run time for a ``num_binary_stages``-stage solve.

        Each binary (max-cut) stage contributes an initialization interval, an
        annealing interval and a SHIL settling/read-out interval; that matches
        the paper's 60 ns for the 2-stage 4-coloring run.
        """
        if num_binary_stages < 1:
            raise StageError(f"num_binary_stages must be at least 1, got {num_binary_stages}")
        return num_binary_stages * (self.initialization + self.annealing + self.shil_settling)


def msropm_schedule(timing: Optional[TimingPlan] = None) -> ControlSchedule:
    """Return the paper's two-stage (4-coloring) control schedule.

    The intervals correspond, in order, to Fig. 3(a) through Fig. 3(e):

    1. random initialization (oscillators free, couplings off)
    2. coupled self-annealing (couplings on, no SHIL)
    3. SHIL 1 lock + stage-1 read-out
    4. re-initialization interval with couplings and SHIL off
    5. partitioned self-annealing (couplings on within partitions only)
    6. dual-SHIL lock (SHIL 1 / SHIL 2 per partition) + final read-out
    """
    timing = timing or TimingPlan()
    intervals = (
        StageInterval(
            kind=StageKind.INITIALIZE,
            duration=timing.initialization,
            control=ControlState(couplings_on=False, shil_enabled=False),
            label="init-1",
        ),
        StageInterval(
            kind=StageKind.ANNEAL,
            duration=timing.annealing,
            control=ControlState(couplings_on=True, shil_enabled=False),
            label="anneal-1",
        ),
        StageInterval(
            kind=StageKind.SHIL_LOCK,
            duration=timing.shil_settling,
            control=ControlState(couplings_on=True, shil_enabled=True, dual_shil=False),
            label="shil-1",
        ),
        StageInterval(
            kind=StageKind.INITIALIZE,
            duration=timing.initialization,
            control=ControlState(couplings_on=False, shil_enabled=False, respect_partition=True),
            label="init-2",
        ),
        StageInterval(
            kind=StageKind.ANNEAL,
            duration=timing.annealing,
            control=ControlState(couplings_on=True, shil_enabled=False, respect_partition=True),
            label="anneal-2",
        ),
        StageInterval(
            kind=StageKind.SHIL_LOCK,
            duration=timing.shil_settling,
            control=ControlState(
                couplings_on=True, shil_enabled=True, respect_partition=True, dual_shil=True
            ),
            label="shil-2",
        ),
    )
    return ControlSchedule(intervals=intervals)


def multi_stage_schedule(num_binary_stages: int, timing: Optional[TimingPlan] = None) -> ControlSchedule:
    """Return a generalized schedule with ``num_binary_stages`` binary stages.

    Stage ``k`` (1-based) anneals with couplings restricted to the partitions
    produced by stages ``1..k-1`` and ends with a SHIL lock; the final stage
    uses the dual/multi SHIL configuration.  Two stages reproduce the paper's
    4-coloring flow; three stages extend it to 8 colors, as the paper suggests.
    """
    if num_binary_stages < 1:
        raise StageError(f"num_binary_stages must be at least 1, got {num_binary_stages}")
    timing = timing or TimingPlan()
    intervals: List[StageInterval] = []
    for stage in range(1, num_binary_stages + 1):
        partitioned = stage > 1
        final = stage == num_binary_stages
        intervals.append(
            StageInterval(
                kind=StageKind.INITIALIZE,
                duration=timing.initialization,
                control=ControlState(couplings_on=False, shil_enabled=False, respect_partition=partitioned),
                label=f"init-{stage}",
            )
        )
        intervals.append(
            StageInterval(
                kind=StageKind.ANNEAL,
                duration=timing.annealing,
                control=ControlState(couplings_on=True, shil_enabled=False, respect_partition=partitioned),
                label=f"anneal-{stage}",
            )
        )
        intervals.append(
            StageInterval(
                kind=StageKind.SHIL_LOCK,
                duration=timing.shil_settling,
                control=ControlState(
                    couplings_on=True,
                    shil_enabled=True,
                    respect_partition=partitioned,
                    dual_shil=final and num_binary_stages > 1,
                ),
                label=f"shil-{stage}",
            )
        )
    return ControlSchedule(intervals=tuple(intervals))
