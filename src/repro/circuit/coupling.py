"""Back-to-back (B2B) inverter coupling element.

Couplings between ROSCs are realized with a pair of anti-parallel inverters.
Because the medium is inverting, the coupling is *negative*: it pushes the two
coupled oscillators towards opposite phases, which is exactly the
antiferromagnetic interaction needed for max-cut / coloring.  Each coupling is
gated by a global enable (``G_EN``), a local enable (``L_EN``, used to map the
problem) and a partition enable (``P_EN``, used to cut the graph between the
two MSROPM stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import CircuitError
from repro.circuit.inverter import Inverter
from repro.circuit.technology import TECH_65NM_GP, Technology, dynamic_power


@dataclass
class CouplingElement:
    """A gated B2B-inverter coupling between two ring oscillators.

    Attributes
    ----------
    strength:
        Normalized coupling strength (relative to the oscillator's intrinsic
        drive); the dynamics layer uses this directly as the Kuramoto coupling
        coefficient.  Positive values denote the physical B2B element whose
        *effect* is anti-phase (the sign convention is handled by the
        dynamics/Ising mapping, see :meth:`ising_coupling`).
    inverting:
        ``True`` for B2B inverters (anti-phase / negative Ising coupling),
        ``False`` for a non-inverting medium such as a pass-gate chain.
    inverter:
        Inverter model used for the two coupling devices (power estimation).
    enabled / partition_enabled:
        Local (``L_EN``) and partition (``P_EN``) gate states.  The coupling
        conducts only when both are asserted (and the global enable, which is
        tracked by the fabric, is on).
    """

    strength: float = 0.1
    inverting: bool = True
    inverter: Inverter = field(default_factory=Inverter)
    enabled: bool = True
    partition_enabled: bool = True

    def __post_init__(self) -> None:
        if self.strength < 0:
            raise CircuitError(f"coupling strength must be non-negative, got {self.strength}")

    # ------------------------------------------------------------------
    @property
    def is_conducting(self) -> bool:
        """``True`` when both the local and the partition enables are asserted."""
        return self.enabled and self.partition_enabled

    @property
    def effective_strength(self) -> float:
        """Coupling strength seen by the dynamics (0 when gated off)."""
        return self.strength if self.is_conducting else 0.0

    def ising_coupling(self) -> float:
        """Return the Ising ``J`` this element realizes under Eq. (1)'s convention.

        An inverting (B2B) element favours anti-phase alignment; since Eq. (1)
        carries no leading minus sign, anti-alignment preference corresponds to
        a *positive* ``J``.  (Circuit diagrams label the inverting medium
        "J < 0" — that refers to the medium being inverting, not to the sign of
        ``J`` in Eq. (1).)  A non-inverting element returns ``-strength``.
        """
        if not self.is_conducting:
            return 0.0
        return self.strength if self.inverting else -self.strength

    # ------------------------------------------------------------------
    def set_local_enable(self, value: bool) -> None:
        """Drive the ``L_EN`` gate (problem mapping)."""
        self.enabled = bool(value)

    def set_partition_enable(self, value: bool) -> None:
        """Drive the ``P_EN`` gate (stage-1 → stage-2 partitioning)."""
        self.partition_enabled = bool(value)

    # ------------------------------------------------------------------
    def switching_power(self, frequency: float, activity: float = 0.5) -> float:
        """Dynamic power of the two coupling inverters when conducting (watts)."""
        if not self.is_conducting:
            return 0.0
        load = self.inverter.load_capacitance(fanout=1)
        per_inverter = dynamic_power(load, self.inverter.technology.supply_voltage, frequency, activity)
        return 2.0 * per_inverter

    def leakage_power(self) -> float:
        """Static leakage of the two coupling inverters (watts)."""
        return 2.0 * self.inverter.leakage()


def b2b_coupling(strength: float = 0.1, technology: Technology = TECH_65NM_GP) -> CouplingElement:
    """Return the paper's gated B2B coupling element with minimum-size devices."""
    inverter = Inverter(
        nmos_width_um=technology.min_width_um * 2,
        pmos_width_um=technology.min_width_um * 4,
        technology=technology,
    )
    return CouplingElement(strength=strength, inverting=True, inverter=inverter)
