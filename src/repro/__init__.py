"""repro — reproduction of "A Multi-Stage Potts Machine Based on Coupled CMOS Ring Oscillators".

The package implements, from scratch, the MSROPM solver of the DATE 2025 paper
together with every substrate it needs: benchmark graph generators, the
Ising/Potts model layer, a SAT baseline, a behavioural 65 nm circuit layer, the
coupled-oscillator phase dynamics, software baselines and the experiment
harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import kings_graph, MSROPM, MSROPMConfig

    graph = kings_graph(7, 7)                       # the paper's 49-node benchmark
    machine = MSROPM(graph, MSROPMConfig(num_colors=4, seed=1))
    result = machine.solve(iterations=10)
    print(result.best_accuracy, result.best.coloring.is_proper(graph))
"""

from repro.core import (
    MSROPM,
    MSROPMConfig,
    IterationResult,
    SolveResult,
    StageResult,
    BatchedEngine,
    SequentialEngine,
    SolverEngine,
    divide_and_color,
    solve_coloring,
)
from repro.graphs import (
    Coloring,
    Graph,
    kings_graph,
    paper_kings_graph,
    PAPER_PROBLEM_SIZES,
)
from repro.circuit import PowerModel, TimingPlan
from repro.exceptions import ReproError
from repro.runtime import (
    BaselineJob,
    ExperimentRunner,
    GraphSpec,
    Job,
    JobScheduler,
    KingsGraphSpec,
    ResultCache,
    SolveJob,
    SolveRequest,
)
from repro.campaigns import (
    CampaignSpec,
    CampaignStage,
    RunLedger,
    StageMachine,
    StageState,
    resume_campaign,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "MSROPM",
    "MSROPMConfig",
    "IterationResult",
    "SolveResult",
    "StageResult",
    "solve_coloring",
    "divide_and_color",
    "SolverEngine",
    "SequentialEngine",
    "BatchedEngine",
    "Graph",
    "Coloring",
    "kings_graph",
    "paper_kings_graph",
    "PAPER_PROBLEM_SIZES",
    "PowerModel",
    "TimingPlan",
    "ReproError",
    "BaselineJob",
    "ExperimentRunner",
    "GraphSpec",
    "Job",
    "JobScheduler",
    "KingsGraphSpec",
    "ResultCache",
    "SolveJob",
    "SolveRequest",
    "CampaignSpec",
    "CampaignStage",
    "RunLedger",
    "StageMachine",
    "StageState",
    "resume_campaign",
    "run_campaign",
    "__version__",
]
