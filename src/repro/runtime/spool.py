"""Filesystem job spool: a crash-tolerant work-stealing queue for fleet runs.

The spool turns any shared directory (local disk for N processes, NFS or a
shared volume for N hosts) into a job queue that independent ``msropm fleet
worker`` processes drain cooperatively.  It is built entirely on two POSIX
primitives — atomic ``rename`` within one filesystem and write-to-temp +
``rename`` publication — so there is no broker, no locks, and no state that
a ``kill -9`` can corrupt:

``pending/<hash>.job``
    One pickled :class:`~repro.runtime.jobs.Job` per file, named by the job's
    content hash.  Enqueueing is idempotent: a hash that is already pending,
    claimed, or answered is never written twice.
``active/<hash>.job``
    A *claim*: workers claim a job by renaming it out of ``pending/`` —
    ``rename`` is atomic, so exactly one worker wins and the losers simply
    move on.  The claim file's mtime is the lease timestamp: a claim older
    than the lease timeout belongs to a dead (or wedged) worker and any
    scanning worker may *reclaim* it by renaming it back to ``pending/``.
    Jobs are idempotent pure functions of their content, so the rare double
    execution a reclaim race allows is safe — both executions produce the
    same payload and result publication is last-writer-wins with identical
    bytes.
``results/<hash[:2]>/<hash>.json``
    The job's JSON payload (the same persisted form the result cache and the
    process pool use), published atomically.  A result's existence is the
    *only* completion signal; claims and pending files are just scheduling
    state and can be regenerated from scratch.

Workers execute jobs with the same environment as local pool workers
(:mod:`repro.runtime.worker_env`: BLAS thread caps + solver pre-import), so a
payload is byte-identical no matter which topology produced it — the property
the cross-topology bit-identity tests and the ``fleet-smoke`` CI job pin.

Security note: job files are pickles; a spool directory must only be shared
between mutually trusting processes (the same trust boundary as the result
cache it feeds).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, ReproError
from repro.obs.metrics import get_metrics
from repro.runtime.atomic import write_atomic_bytes
from repro.runtime.jobs import Job
from repro.runtime.worker_env import WORKER_THREAD_CAPS, _execute_job, _worker_init

#: Version of the spool directory layout and envelope formats.
SPOOL_SCHEMA_VERSION = 1

#: Default seconds before an unrefreshed claim counts as abandoned.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Default seconds between idle scans of the spool.
DEFAULT_POLL_INTERVAL = 0.05


class SpoolError(ReproError):
    """A spool operation failed (corrupt envelope, failed job, stalled drain)."""


class JobFailedError(SpoolError):
    """A spooled job raised in whichever worker executed it."""


def _write_atomic_bytes(path: Path, data: bytes) -> None:
    """Publish ``data`` at ``path`` via write-to-temp + atomic rename."""
    write_atomic_bytes(path, data)


class JobSpool:
    """One spool directory: enqueue, claim, reclaim, and publish results.

    All methods are safe to call concurrently from any number of processes
    sharing the directory; every cross-process handoff is a single atomic
    rename.

    Parameters
    ----------
    root:
        The spool directory (created on :meth:`ensure`).
    lease_timeout:
        Seconds before a claim with an unrefreshed lease is considered
        abandoned and eligible for reclaim.
    """

    def __init__(
        self, root: Union[str, Path], lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    ) -> None:
        if lease_timeout <= 0:
            raise ConfigurationError(f"lease_timeout must be > 0, got {lease_timeout}")
        self.root = Path(root)
        self.lease_timeout = float(lease_timeout)
        self.pending_dir = self.root / "pending"
        self.active_dir = self.root / "active"
        self.results_dir = self.root / "results"
        self.meta_path = self.root / "spool.json"
        self.stop_path = self.root / "stop"

    # ------------------------------------------------------------------
    def ensure(self) -> None:
        """Create the spool layout (idempotent, safe under contention)."""
        for directory in (self.pending_dir, self.active_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            _write_atomic_bytes(
                self.meta_path,
                json.dumps({"spool_schema": SPOOL_SCHEMA_VERSION}).encode("utf-8"),
            )

    @property
    def exists(self) -> bool:
        """Whether the directory has been initialized as a spool."""
        return self.meta_path.is_file()

    # ------------------------------------------------------------------
    # Enqueue / results
    # ------------------------------------------------------------------
    def result_path(self, job_hash: str) -> Path:
        """The published-result path for a job hash (hash-sharded)."""
        return self.results_dir / job_hash[:2] / f"{job_hash}.json"

    def has_result(self, job_hash: str) -> bool:
        """Whether a result (success or recorded failure) was published."""
        return self.result_path(job_hash).is_file()

    def enqueue(self, job: Job) -> bool:
        """Queue one cacheable job; returns whether a new file was written.

        Idempotent by content hash: a job that is already pending, claimed,
        or answered is skipped.  (A benign race where two submitters both
        write the same hash resolves to identical pending files.)  A recorded
        *failure* result is cleared and the job queued again: resubmission is
        the retry, and without this a transient failure would poison the hash
        for the spool's lifetime.
        """
        job_hash = job.job_hash  # raises for uncacheable jobs, by design
        try:
            answered = self.has_result(job_hash)
        except OSError:  # pragma: no cover - transient filesystem error
            answered = False
        if answered:
            try:
                self.load_result(job_hash)
            except JobFailedError:
                self.result_path(job_hash).unlink(missing_ok=True)
                answered = False
            except SpoolError:
                self.result_path(job_hash).unlink(missing_ok=True)
                answered = False
        if (
            answered
            or (self.pending_dir / f"{job_hash}.job").exists()
            or (self.active_dir / f"{job_hash}.job").exists()
        ):
            return False
        _write_atomic_bytes(self.pending_dir / f"{job_hash}.job", pickle.dumps(job))
        get_metrics().inc("spool.enqueued")
        return True

    def store_result(self, job_hash: str, payload: Dict) -> None:
        """Publish a job's payload (atomic; last writer wins, bytes identical)."""
        envelope = {
            "spool_schema": SPOOL_SCHEMA_VERSION,
            "job_hash": job_hash,
            "payload": payload,
        }
        _write_atomic_bytes(
            self.result_path(job_hash), json.dumps(envelope).encode("utf-8")
        )

    def store_failure(self, job_hash: str, error: str) -> None:
        """Publish a job *failure* so the batch fails loudly instead of
        retrying a deterministically-raising job forever across the fleet."""
        envelope = {
            "spool_schema": SPOOL_SCHEMA_VERSION,
            "job_hash": job_hash,
            "error": error,
        }
        _write_atomic_bytes(
            self.result_path(job_hash), json.dumps(envelope).encode("utf-8")
        )

    def load_result(self, job_hash: str) -> Optional[Dict]:
        """Return a published payload, ``None`` if not yet published.

        Raises :class:`JobFailedError` for a published failure and
        :class:`SpoolError` for an unreadable envelope (results are written
        atomically, so corruption means external interference, not a crash).
        """
        path = self.result_path(job_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            envelope = json.loads(text)
            if not isinstance(envelope, dict) or envelope.get("job_hash") != job_hash:
                raise ValueError("envelope mismatch")
        except ValueError as exc:
            raise SpoolError(f"corrupt spool result {path}: {exc}") from None
        if "error" in envelope:
            raise JobFailedError(
                f"spooled job {job_hash[:12]} failed in a worker: {envelope['error']}"
            )
        return envelope.get("payload")

    # ------------------------------------------------------------------
    # Claims and leases
    # ------------------------------------------------------------------
    def claim_next(self) -> Optional[Tuple[str, Path]]:
        """Claim one pending job by atomic rename; ``None`` if nothing pending.

        Exactly one contender wins each file; losers skip to the next.  A
        pending file whose result was already published (a reclaim raced a
        slow-but-alive worker) is discarded rather than claimed.
        """
        try:
            names = sorted(os.listdir(self.pending_dir))
        except OSError:
            return None
        for name in names:
            if not name.endswith(".job"):
                continue
            job_hash = name[: -len(".job")]
            source = self.pending_dir / name
            target = self.active_dir / name
            if self.has_result(job_hash):
                source.unlink(missing_ok=True)
                continue
            try:
                os.rename(source, target)
            except OSError:
                continue  # another worker won this file
            now = time.time()
            try:
                os.utime(target, (now, now))  # the claim's lease timestamp
            except OSError:
                pass
            get_metrics().inc("spool.claims")
            return job_hash, target
        return None

    def release(self, job_hash: str) -> None:
        """Drop a claim (after publishing its result, or on discard)."""
        (self.active_dir / f"{job_hash}.job").unlink(missing_ok=True)

    def reclaim_expired(self) -> int:
        """Return expired claims to ``pending/``; returns how many moved.

        A claim whose lease timestamp is older than the lease timeout belongs
        to a worker that died (or wedged) mid-job.  Renaming it back to
        ``pending/`` is atomic, so when several workers scan at once exactly
        one performs each reclaim.  Claims whose results were published while
        the claim lingered are simply dropped.
        """
        try:
            names = os.listdir(self.active_dir)
        except OSError:
            return 0
        deadline = time.time() - self.lease_timeout
        reclaimed = 0
        for name in names:
            if not name.endswith(".job"):
                continue
            job_hash = name[: -len(".job")]
            path = self.active_dir / name
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # released or reclaimed by someone else meanwhile
            if mtime > deadline:
                continue
            if self.has_result(job_hash):
                path.unlink(missing_ok=True)
                continue
            try:
                os.rename(path, self.pending_dir / name)
            except OSError:
                continue
            reclaimed += 1
        if reclaimed:
            get_metrics().inc("spool.reclaims", reclaimed)
        return reclaimed

    def load_job(self, path: Path) -> Job:
        """Unpickle a claimed job file."""
        try:
            with open(path, "rb") as handle:
                job = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, AttributeError, ImportError) as exc:
            raise SpoolError(f"unreadable spool job {path}: {exc}") from exc
        if not isinstance(job, Job):
            raise SpoolError(f"spool file {path} does not contain a Job")
        return job

    # ------------------------------------------------------------------
    # Coordination
    # ------------------------------------------------------------------
    @property
    def stop_requested(self) -> bool:
        """Whether a ``fleet stop`` marker asks waiting workers to exit."""
        return self.stop_path.exists()

    def request_stop(self) -> None:
        """Ask all waiting workers on this spool to exit after their job."""
        self.ensure()
        _write_atomic_bytes(self.stop_path, b"stop\n")

    def clear_stop(self) -> None:
        """Remove the stop marker so new workers keep waiting."""
        self.stop_path.unlink(missing_ok=True)

    def counts(self) -> Dict[str, int]:
        """Pending/active/result file counts (the ``fleet status`` view)."""

        def _count(directory: Path, suffix: str) -> int:
            try:
                return sum(
                    1
                    for _, _, files in os.walk(directory)
                    for name in files
                    if name.endswith(suffix)
                )
            except OSError:
                return 0

        return {
            "pending": _count(self.pending_dir, ".job"),
            "active": _count(self.active_dir, ".job"),
            "results": _count(self.results_dir, ".json"),
        }


class SpoolWorker:
    """One drain loop over a :class:`JobSpool`: claim, execute, publish.

    This is both the body of the ``msropm fleet worker`` CLI process and the
    in-process participant the :class:`~repro.runtime.executors.SpoolExecutorBackend`
    submitter runs while it waits — the two are literally the same code, so a
    batch finishes identically whether the submitter drained it alone or a
    fleet helped.

    Parameters
    ----------
    spool:
        The spool to drain.
    wait:
        ``False`` (drain mode): exit once the spool holds no pending *and* no
        active work.  ``True`` (fleet mode): keep polling for new work until a
        stop marker appears (or ``idle_timeout`` elapses, if set).
    idle_timeout:
        Optional seconds of continuous idleness after which the loop exits
        regardless of mode.
    max_jobs:
        Optional cap on executed jobs (test hook).
    poll_interval:
        Sleep between idle scans.
    log:
        Optional per-event line sink (the CLI passes ``print``).
    """

    def __init__(
        self,
        spool: JobSpool,
        wait: bool = False,
        idle_timeout: Optional[float] = None,
        max_jobs: Optional[int] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.spool = spool
        self.wait = wait
        self.idle_timeout = idle_timeout
        self.max_jobs = max_jobs
        self.poll_interval = poll_interval
        self.log = log or (lambda message: None)
        self.executed = 0
        self.failed = 0
        self.reclaimed = 0

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Claim and execute at most one job; returns whether one ran.

        A job that raises publishes a *failure* result (so every consumer of
        the spool fails loudly instead of the fleet retrying a deterministic
        error forever) and still counts as progress.
        """
        claimed = self.spool.claim_next()
        if claimed is None:
            return False
        job_hash, path = claimed
        try:
            job = self.spool.load_job(path)
            payload = _execute_job(job)
        except Exception as exc:  # noqa: BLE001 — publish, don't crash the loop
            self.spool.store_failure(job_hash, f"{type(exc).__name__}: {exc}")
            self.failed += 1
            self.log(f"job {job_hash[:12]} failed: {exc}")
        else:
            self.spool.store_result(job_hash, payload)
            self.executed += 1
            self.log(f"job {job_hash[:12]} done ({job.label})")
        finally:
            self.spool.release(job_hash)
        return True

    def run(self) -> Dict[str, int]:
        """Drain the spool per the worker's mode; returns execution counters."""
        self.spool.ensure()
        idle_since = time.monotonic()
        while True:
            if self.max_jobs is not None and self.executed + self.failed >= self.max_jobs:
                break
            if self.spool.stop_requested:
                self.log("stop requested")
                break
            if self.step():
                idle_since = time.monotonic()
                continue
            reclaimed = self.spool.reclaim_expired()
            if reclaimed:
                self.reclaimed += reclaimed
                self.log(f"reclaimed {reclaimed} expired claim(s)")
                idle_since = time.monotonic()
                continue
            counts = self.spool.counts()
            drained = counts["pending"] == 0 and counts["active"] == 0
            if not self.wait and drained:
                break
            if (
                self.idle_timeout is not None
                and time.monotonic() - idle_since >= self.idle_timeout
            ):
                self.log("idle timeout")
                break
            time.sleep(self.poll_interval)
        return {
            "executed": self.executed,
            "failed": self.failed,
            "reclaimed": self.reclaimed,
        }


def run_fleet_worker(
    spool_dir: Union[str, Path],
    wait: bool = False,
    idle_timeout: Optional[float] = None,
    max_jobs: Optional[int] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    thread_caps: Optional[Dict[str, str]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, int]:
    """Entry point of ``msropm fleet worker``: prepare the environment and drain.

    The worker process is prepared exactly like a local pool worker
    (:func:`repro.runtime.worker_env._worker_init`): BLAS/OpenMP capped to one
    thread (pass ``thread_caps={}`` to opt out) and the solver stack
    pre-imported, so per-job behavior — and therefore every payload byte — is
    topology-independent.
    """
    caps = WORKER_THREAD_CAPS if thread_caps is None else thread_caps
    _worker_init(dict(caps))
    worker = SpoolWorker(
        JobSpool(spool_dir, lease_timeout=lease_timeout),
        wait=wait,
        idle_timeout=idle_timeout,
        max_jobs=max_jobs,
        poll_interval=poll_interval,
        log=log,
    )
    return worker.run()
