"""Baseline jobs: SA/tabu/ROIM/single-stage runs as first-class scheduler work.

Before the polymorphic job protocol, the scenario matrix ran its baseline
column serially in the parent process while the MSROPM column sharded across
the worker pool.  :class:`BaselineJob` closes that gap: one baseline solver's
best-of-N run on one workload instance, content-hashed like a solve job, so
baselines cache, deduplicate and shard exactly like MSROPM solves — and a
campaign stage can schedule them alongside solve jobs in the same batch.

A job carries the :class:`~repro.workloads.registry.WorkloadInstance` (a small
declarative value object — the graph itself is rebuilt in the worker from the
content-addressed spec) plus the baseline name, budget, derived seed and the
reference cut its accuracy normalizes against.  Results are raw accuracy
ratios with the same conventions as the parent-process path they replace:
``None`` when the baseline does not apply to the workload kind, unclipped
ratios that may exceed 1.0 against heuristic references.

Weighted workloads (families with a ``weights_provider``) are scored against
their weighted cut: the worker re-derives the per-edge weights from the
instance recipe, so weights never travel on the wire yet every process scores
identically.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.config import MSROPMConfig
from repro.runtime.jobs import JOB_SCHEMA_VERSION, Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (registry imports jobs)
    from repro.workloads.registry import WorkloadInstance

#: Baselines a job can run, in the scenario matrix's display order.
BASELINE_NAMES = ("sa", "tabu", "roim", "single_stage")

#: Which baselines apply to which workload kind: ROIM only cuts, TabuCol
#: only colors.
_APPLICABLE = {
    "coloring": ("sa", "tabu", "single_stage"),
    "maxcut": ("sa", "roim", "single_stage"),
}


def baseline_applies(baseline: str, kind: str) -> bool:
    """Whether ``baseline`` can solve workloads of ``kind``."""
    return baseline in _APPLICABLE.get(kind, ())


def cut_ratio(edge_fraction: float, num_edges: int, reference_cut: Optional[float]) -> float:
    """Rescale a properly-cut-edge fraction to the raw ``cut / reference`` ratio.

    A 2-coloring's accuracy is the fraction of bichromatic (= cut) edges, so
    ``fraction * num_edges`` is the cut value on unit-weight graphs.
    """
    if reference_cut is None or reference_cut <= 0:
        return float(edge_fraction)
    return float(edge_fraction * num_edges / reference_cut)


def coloring_cut_ratio(problem, graph, coloring, reference_cut: Optional[float]) -> float:
    """Raw cut ratio of a 2-coloring's induced bipartition on ``problem``.

    The one place the weighted-max-cut scoring convention lives: the
    coloring's 0/1 labels split the graph, the (possibly weighted)
    :class:`~repro.ising.maxcut.MaxCutProblem` scores the cut, and a missing
    or non-positive reference falls back to the raw cut value.  Both the
    scenario matrix's MSROPM column and the single-stage baseline score
    weighted workloads through here, so the columns can never drift apart.
    """
    from repro.graphs.partition import Bipartition

    partition = Bipartition.from_labels(
        {node: coloring.color_of(node) for node in graph.nodes}
    )
    cut = problem.cut_value(partition)
    if reference_cut is None or reference_cut <= 0:
        return float(cut)
    return float(cut / reference_cut)


def run_baseline(
    instance: WorkloadInstance,
    baseline: str,
    config: MSROPMConfig,
    iterations: int,
    seed: int,
    reference_cut: Optional[float] = None,
) -> Optional[float]:
    """Run one baseline on one instance; ``None`` when it does not apply.

    Every baseline gets the same ``iterations`` budget as the MSROPM and
    reports its best run, so the matrix compares best-of-N against best-of-N.
    ``seed`` is the fully derived per-(baseline, instance) seed — the caller
    decorrelates it from the MSROPM solve seed — which makes the result a
    pure function of the job's content.
    """
    from repro.rng import iteration_seeds

    if not baseline_applies(baseline, instance.kind):
        # Checked before building the graph: the planner keeps the
        # (instance x baseline) matrix rectangular, so a quarter of the batch
        # is non-applicable pairs that must stay build-free no-ops.
        return None
    graph = instance.build()
    run_seeds = iteration_seeds(seed, iterations)
    if instance.kind == "coloring":
        if baseline == "sa":
            from repro.baselines.simulated_annealing import anneal_coloring

            return max(
                anneal_coloring(graph, instance.num_colors, seed=s).accuracy(graph)
                for s in run_seeds
            )
        if baseline == "tabu":
            from repro.baselines.tabu import tabucol

            return max(
                tabucol(graph, instance.num_colors, seed=s).accuracy(graph)
                for s in run_seeds
            )
        if baseline == "single_stage":
            from repro.baselines.single_stage_ropm import SingleStageROPM

            machine = SingleStageROPM(graph, num_colors=instance.num_colors, config=config)
            return float(machine.solve(iterations=iterations, seed=seed).best_accuracy)
        return None  # ROIM solves max-cut, not coloring
    # ------------------------------------------------------------ max-cut kind
    weights = instance.edge_weights(graph)
    if baseline == "sa":
        from repro.baselines.simulated_annealing import anneal_maxcut
        from repro.ising.maxcut import MaxCutProblem

        problem = MaxCutProblem(graph, weights=weights)
        return max(
            problem.accuracy(anneal_maxcut(problem, seed=s), reference_cut=reference_cut)
            for s in run_seeds
        )
    if baseline == "roim":
        from repro.baselines.roim_maxcut import ROIMMaxCut

        roim = ROIMMaxCut(graph, config=config, reference_cut=reference_cut, weights=weights)
        return float(roim.best_of(iterations=iterations, seed=seed).accuracy)
    if baseline == "single_stage":
        from repro.baselines.single_stage_ropm import SingleStageROPM

        machine = SingleStageROPM(graph, num_colors=instance.num_colors, config=config)
        result = machine.solve(iterations=iterations, seed=seed)
        if weights is None:
            return cut_ratio(float(result.best_accuracy), graph.num_edges, reference_cut)
        from repro.ising.maxcut import MaxCutProblem

        problem = MaxCutProblem(graph, weights=weights)
        return max(
            coloring_cut_ratio(problem, graph, item.coloring, reference_cut)
            for item in result.iterations
        )
    return None  # TabuCol colors, it does not cut


@dataclass(frozen=True)
class BaselineJob(Job):
    """One baseline solver's best-of-N run on one workload instance.

    ``seed`` is the derived per-(baseline, instance) seed; ``reference_cut``
    is the normalization of max-cut accuracies (part of the content hash —
    change the reference and the job legitimately recomputes).
    """

    instance: WorkloadInstance
    baseline: str
    config: MSROPMConfig
    iterations: int
    seed: int
    reference_cut: Optional[float] = None

    job_kind = "baseline"

    # ------------------------------------------------------------------
    @property
    def cacheable(self) -> bool:
        """Deterministic when the run seed is fixed and the graph spec is."""
        return self.seed is not None and self.instance.spec.deterministic

    def describe(self) -> Dict:
        return {
            "job_kind": self.job_kind,
            "job_schema": JOB_SCHEMA_VERSION,
            "baseline": self.baseline,
            "graph": self.instance.spec.fingerprint(),
            "family": self.instance.family,
            "workload_kind": self.instance.kind,
            "num_colors": self.instance.num_colors,
            "config": asdict(self.config),
            "iterations": self.iterations,
            "seed": self.seed,
            "reference_cut": self.reference_cut,
        }

    @property
    def label(self) -> str:
        return f"{self.baseline}:{self.instance.label}/i{self.iterations}/s{self.seed}"

    # ------------------------------------------------------------------
    def run(self) -> Optional[float]:
        """Execute the baseline in-process and return its raw accuracy ratio."""
        return run_baseline(
            self.instance,
            self.baseline,
            self.config,
            self.iterations,
            self.seed,
            self.reference_cut,
        )

    def execute(self) -> Dict:
        value = self.run()
        # Coerce to a plain float: the payload must serialize as JSON (cache
        # entries) no matter what numeric type the baseline solver returned.
        return {"baseline": self.baseline, "accuracy": None if value is None else float(value)}

    def decode(self, payload: Dict) -> Dict:
        return payload

    def validate(self, result: Dict) -> bool:
        """A cached entry must be this baseline's payload shape."""
        return (
            isinstance(result, dict)
            and result.get("baseline") == self.baseline
            and "accuracy" in result
        )
