"""Executor backends: pluggable strategies for running batches of jobs.

The :class:`~repro.runtime.scheduler.JobScheduler` used to *be* a process
pool; it is now a thin facade over an :class:`ExecutorBackend`, the interface
this module defines.  A backend receives a batch of
:class:`~repro.runtime.jobs.Job` values and returns their JSON payloads in
submission order — nothing else.  Because every job is a pure function of its
content (seeds included) and payloads are the persisted form shared with the
result cache, *where* the jobs ran is unobservable in the results: the
invariant the backends are tested against is bit-identity across topologies
(serial ≡ local pool ≡ N fleet processes draining one spool).

Two backends ship:

:class:`LocalPoolExecutorBackend`
    The default — the warm :class:`~concurrent.futures.ProcessPoolExecutor`
    with thread-capped, pre-imported workers.  New here: a batch that dies to
    :class:`BrokenProcessPool` (one OOM-killed or crashed worker poisons the
    whole executor) is retried once on a fresh pool before the error
    propagates, which jobs' idempotence makes safe.

:class:`SpoolExecutorBackend`
    Fleet execution over a shared filesystem spool
    (:mod:`repro.runtime.spool`).  The submitter enqueues the batch, then
    *participates* in draining it while it waits, so a batch always completes
    even if no external worker ever attaches and even if every helper is
    killed mid-drain (expired claims are reclaimed).  ``workers=N`` spawns
    ``N-1`` local ``msropm fleet worker`` child processes so one host matches
    the local pool's parallelism; any number of additional workers — other
    processes, other hosts on a shared mount — can join the same spool via
    the CLI.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.obs.metrics import get_metrics
from repro.runtime.jobs import Job
from repro.runtime.spool import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_POLL_INTERVAL,
    JobSpool,
    SpoolError,
    SpoolWorker,
)
from repro.runtime.worker_env import WORKER_THREAD_CAPS, _execute_job, _worker_init

#: Registered executor backend names (the CLI's ``--executor`` choices).
EXECUTOR_NAMES = ("local", "spool")

#: Per-job completion callback: invoked once per job as its payload becomes
#: available, in whatever order the backend observes completions.  Callbacks
#: are observability hooks — they must not raise, and backends may re-invoke
#: them for the same job after an internal retry (consumers deduplicate by
#: job hash).
ProgressCallback = Callable[[Job], None]


class ExecutorBackend(ABC):
    """Strategy interface: execute a batch of jobs, return payloads in order.

    Implementations may keep warm state between batches (a process pool, a
    set of spawned fleet workers); :meth:`close` releases it.  Backends always
    traffic in *payloads* (each job's JSON wire form) — decoding back to rich
    results is the scheduler's (single, shared) responsibility, which is what
    keeps a result identical no matter which backend produced it.
    """

    #: Registry name of the backend (shows up in stats and benchmarks).
    name: str = "backend"

    #: Worker parallelism the backend was configured for.
    workers: int = 1

    @abstractmethod
    def run_payloads(
        self, jobs: Sequence[Job], progress: Optional[ProgressCallback] = None
    ) -> List[Dict]:
        """Execute ``jobs``, returning one payload per job in submission order.

        ``progress`` (optional) is invoked once per job as its payload lands,
        giving callers per-job granularity without waiting for the batch.
        """

    def close(self) -> None:
        """Release any warm execution state (idempotent)."""

    def abort(self) -> None:
        """Release state without blocking (garbage-collection path).

        Defaults to :meth:`close`; backends whose close waits on workers
        override this with a non-blocking teardown.
        """
        self.close()


class LocalPoolExecutorBackend(ExecutorBackend):
    """The default backend: a warm local process pool (plus serial fast path).

    Behavior is identical to the pre-refactor ``JobScheduler`` with one
    addition: a :class:`BrokenProcessPool` batch is retried once on a fresh
    pool.  A single dead worker (OOM kill, segfaulting BLAS, an ``os._exit``
    in job code) poisons the entire executor mid-``map``; since jobs are
    idempotent and content-hashed, rerunning the whole batch is safe and turns
    a one-off worker death from a run-killing error into a logged hiccup.
    A batch that breaks the *fresh* pool too propagates the error — that is a
    systematic failure, not a hiccup.
    """

    name = "local"

    def __init__(self, workers: int = 1, thread_caps: Optional[Dict[str, str]] = None) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.thread_caps = dict(WORKER_THREAD_CAPS) if thread_caps is None else dict(thread_caps)
        self._pool: Optional[ProcessPoolExecutor] = None
        self.pools_started = 0
        #: Batches rerun on a fresh pool after a BrokenProcessPool.
        self.broken_pool_retries = 0

    # ------------------------------------------------------------------
    @property
    def pool_active(self) -> bool:
        """Whether a warm worker pool is currently alive."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The backend's persistent pool (created on first use)."""
        if self._pool is None:
            # Default the caps in the parent too: children inherit the
            # environment before importing numpy under spawn/forkserver, which
            # is the only reliable moment to cap OpenBLAS/MKL threads.
            for name, value in self.thread_caps.items():
                os.environ.setdefault(name, value)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self.thread_caps,),
            )
            self.pools_started += 1
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly poisoned) pool without waiting on its workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    abort = _discard_pool

    def close(self) -> None:
        """Shut the warm pool down (idempotent); a later batch restarts it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _map_batch(
        self, jobs: Sequence[Job], progress: Optional[ProgressCallback] = None
    ) -> List[Dict]:
        # Without an explicit chunksize, pool.map ships jobs one at a time and
        # a scenario matrix of many small jobs serializes on IPC round-trips.
        # Target ~4 chunks per worker: big enough to amortize pickling, small
        # enough to balance uneven job costs.  map() returns results in
        # submission order regardless of chunking, preserving determinism.
        chunksize = max(1, len(jobs) // (self.workers * 4))
        pool = self._ensure_pool()
        # Consume the map iterator lazily: payloads surface (in submission
        # order) as their chunks complete, so progress fires per job during
        # the batch rather than all at once after it.
        payloads: List[Dict] = []
        for job, payload in zip(jobs, pool.map(_execute_job, jobs, chunksize=chunksize)):
            payloads.append(payload)
            if progress is not None:
                progress(job)
        return payloads

    def run_payloads(
        self, jobs: Sequence[Job], progress: Optional[ProgressCallback] = None
    ) -> List[Dict]:
        if self.workers == 1 or len(jobs) == 1:
            payloads = []
            for job in jobs:
                payloads.append(_execute_job(job))
                if progress is not None:
                    progress(job)
            return payloads
        try:
            return self._map_batch(jobs, progress)
        except BrokenProcessPool:
            # One dead worker poisons the whole executor and loses the entire
            # batch's in-flight results.  Jobs are idempotent, so retry the
            # batch once on a fresh pool before giving up.  A retried batch
            # may re-report progress for jobs the first attempt already
            # announced; progress consumers deduplicate by job hash.
            self._discard_pool()
            self.broken_pool_retries += 1
            get_metrics().inc("executor.broken_pool_retries")
            try:
                return self._map_batch(jobs, progress)
            except BrokenProcessPool:
                # Workers died again on a clean pool: systematic, propagate —
                # and drop the poisoned pool so a later batch starts fresh.
                self._discard_pool()
                raise


class SpoolExecutorBackend(ExecutorBackend):
    """Fleet backend: drain batches through a shared filesystem spool.

    ``workers`` is the *local* drain parallelism: the submitting process
    itself (which claims and executes jobs while it waits for results) plus
    ``workers - 1`` spawned ``msropm fleet worker`` child processes.  The
    children are warm — spawned on the first batch, reused by later batches,
    terminated by :meth:`close` — mirroring the local pool's lifecycle.
    External workers started independently (``msropm fleet worker <dir>``,
    possibly on other hosts sharing the mount) steal from the same spool.

    Completion needs no cooperation: the submitter keeps draining and
    reclaiming expired claims itself, so a batch finishes (with bit-identical
    results) even if every helper process is killed mid-drain.

    Only content-hashed (cacheable) jobs travel through the spool; the rare
    uncacheable job (e.g. a seedless ensemble draw) runs inline in the
    submitter, preserving submission order either way.
    """

    name = "spool"

    def __init__(
        self,
        spool_dir: Union[str, Path],
        workers: int = 1,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        spawn_workers: Optional[int] = None,
        participate: bool = True,
        drain_timeout: Optional[float] = None,
        thread_caps: Optional[Dict[str, str]] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if not participate and spawn_workers == 0 and drain_timeout is None:
            raise ConfigurationError(
                "a non-participating spool backend with no spawned workers "
                "needs a drain_timeout (otherwise a batch with no external "
                "workers would wait forever)"
            )
        self.spool = JobSpool(spool_dir, lease_timeout=lease_timeout)
        self.workers = workers
        self.poll_interval = poll_interval
        self.participate = participate
        self.drain_timeout = drain_timeout
        self.spawn_workers = workers - 1 if spawn_workers is None else spawn_workers
        self.thread_caps = dict(WORKER_THREAD_CAPS) if thread_caps is None else dict(thread_caps)
        self._children: List[subprocess.Popen] = []
        self._participant = SpoolWorker(self.spool, poll_interval=poll_interval)
        #: Jobs this process executed itself while waiting.
        self.jobs_executed_locally = 0
        #: Jobs whose payloads came back from other workers (or prior runs).
        self.jobs_stolen = 0
        self.children_spawned = 0

    # ------------------------------------------------------------------
    def _ensure_children(self) -> None:
        """Spawn (or respawn) the configured warm fleet worker children."""
        self._children = [child for child in self._children if child.poll() is None]
        missing = self.spawn_workers - len(self._children)
        if missing <= 0:
            return
        # Children must resolve `repro` exactly like this process does, no
        # matter the caller's cwd: ship the absolute import path explicitly.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(p).resolve()) for p in sys.path if p]
        )
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "fleet",
            "worker",
            str(self.spool.root),
            "--wait",
            "--lease-timeout",
            str(self.spool.lease_timeout),
            "--poll-interval",
            str(self.poll_interval),
        ]
        for _ in range(missing):
            # Silence the children: their progress lines must never interleave
            # with the submitter's report output (byte-identity contract).
            self._children.append(
                subprocess.Popen(
                    command,
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
            self.children_spawned += 1

    def close(self) -> None:
        """Terminate spawned fleet children (external workers are untouched)."""
        for child in self._children:
            if child.poll() is None:
                child.terminate()
        for child in self._children:
            try:
                child.wait(timeout=10)
            except subprocess.TimeoutExpired:
                child.kill()
                child.wait()
        self._children = []

    # ------------------------------------------------------------------
    def run_payloads(
        self, jobs: Sequence[Job], progress: Optional[ProgressCallback] = None
    ) -> List[Dict]:
        self.spool.ensure()
        payloads: Dict[int, Dict] = {}
        positions: Dict[str, List[int]] = {}
        inline: List[int] = []
        for index, job in enumerate(jobs):
            if job.cacheable:
                positions.setdefault(job.job_hash, []).append(index)
            else:
                inline.append(index)

        locally_before = self._participant.executed
        for index, job in enumerate(jobs):
            if job.cacheable and index == positions[job.job_hash][0]:
                self.spool.enqueue(job)
        if self.spawn_workers:
            self._ensure_children()

        missing = set(positions)
        deadline = (
            None if self.drain_timeout is None else time.monotonic() + self.drain_timeout
        )
        while missing:
            progressed = False
            for job_hash in sorted(missing):
                payload = self.spool.load_result(job_hash)
                if payload is not None:
                    for index in positions[job_hash]:
                        payloads[index] = payload
                        if progress is not None:
                            progress(jobs[index])
                    missing.discard(job_hash)
                    progressed = True
            if not missing:
                break
            if self.participate and self._participant.step():
                progressed = True
            if self.spool.reclaim_expired():
                progressed = True
            if progressed:
                if deadline is not None:
                    deadline = time.monotonic() + self.drain_timeout
                continue
            if deadline is not None and time.monotonic() >= deadline:
                raise SpoolError(
                    f"spool drain stalled: {len(missing)} job(s) still "
                    f"unanswered after {self.drain_timeout}s without progress"
                )
            time.sleep(self.poll_interval)

        executed = self._participant.executed - locally_before
        self.jobs_executed_locally += executed
        stolen = max(0, len(positions) - executed)
        self.jobs_stolen += stolen
        metrics = get_metrics()
        metrics.inc("spool.jobs_executed_locally", executed)
        metrics.inc("spool.jobs_stolen", stolen)

        # Uncacheable jobs have no content hash to key spool files by; they
        # run inline (matching the serial path bit for bit).
        for index in inline:
            payloads[index] = _execute_job(jobs[index])
            if progress is not None:
                progress(jobs[index])
        return [payloads[index] for index in range(len(jobs))]


def make_backend(
    executor: str,
    workers: int = 1,
    spool_dir: Optional[Union[str, Path]] = None,
    **options,
) -> ExecutorBackend:
    """Build a registered executor backend by name.

    ``options`` are forwarded to the backend constructor (e.g.
    ``lease_timeout`` for ``spool``); unknown executors and a ``spool``
    request without a spool directory are configuration errors.
    """
    if executor == "local":
        return LocalPoolExecutorBackend(workers=workers, **options)
    if executor == "spool":
        if spool_dir is None:
            raise ConfigurationError(
                "the spool executor needs a spool directory (--spool-dir)"
            )
        return SpoolExecutorBackend(spool_dir, workers=workers, **options)
    raise ConfigurationError(
        f"unknown executor {executor!r}; registered: {', '.join(EXECUTOR_NAMES)}"
    )
