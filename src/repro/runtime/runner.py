"""ExperimentRunner: the facade every experiment's solves route through.

The runner turns "solve these problems with these configs" into scheduled,
cached jobs:

1. each :class:`SolveRequest` becomes one :class:`~repro.runtime.jobs.SolveJob`
   (optionally split into replica chunks),
2. jobs already answered by the in-process memo or the on-disk
   :class:`~repro.runtime.cache.ResultCache` are skipped,
3. the remaining jobs are sharded across the
   :class:`~repro.runtime.scheduler.JobScheduler`'s worker processes,
4. chunk results are merged back per request, bit-identical to serial runs.

Identical jobs appearing in several requests (e.g. Table 1 and the suite both
solving the 49-node problem under the same seed) are deduplicated by content
hash and solved once.  A default-constructed runner (one worker, no cache
directory) reproduces today's serial behaviour exactly, which is what the
experiments use when no runner is passed.

Results returned by the runner are in *persisted form* (round-tripped through
:mod:`repro.analysis.results_io`): accuracies, colorings, seeds and stage
records are preserved exactly, while unserialized extras (final phase arrays,
trajectories) are dropped — the same form a cache hit or a worker process
returns, so the three sources are indistinguishable.

Beyond the blocking :meth:`ExperimentRunner.run_jobs` path, the runner exposes
an explicit **plan / submit / poll / fetch** API for long-lived callers (the
``msropm serve`` front door):

* :meth:`ExperimentRunner.submit_jobs` is non-blocking — each job becomes a
  :class:`Ticket` keyed by its content hash, answered immediately from the
  memo or disk cache when possible, and otherwise queued for a background
  drain thread that shards batches through the scheduler;
* identical in-flight submissions **coalesce**: N concurrent submissions of
  the same hash attach to one pending ticket and one pool slot, never N;
* resubmitting a hash after completion returns the same (finished) ticket —
  idempotent resubmission is a pure memo/cache fetch;
* :meth:`ExperimentRunner.poll` / :meth:`ExperimentRunner.wait` are the
  completion-watch path, and ``max_pending`` bounds the submit queue so a
  front door can push back (:class:`SubmitQueueFull`) instead of buffering
  without limit.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.exceptions import ReproError
from repro.core.config import MSROPMConfig
from repro.core.results import SolveResult
from repro.graphs.graph import Graph
from repro.obs.metrics import get_metrics
from repro.runtime.cache import ResultCache
from repro.runtime.executors import ProgressCallback, make_backend
from repro.runtime.jobs import GraphSpec, Job, SolveJob, as_graph_spec, merge_job_results
from repro.runtime.scheduler import JobScheduler

#: Ticket lifecycle states.  ``pending`` — queued, not yet handed to the
#: scheduler; ``running`` — part of the batch the drain thread is executing;
#: ``done`` — result available; ``failed`` — execution raised (the error is
#: recorded and a resubmission of the same hash re-enqueues a fresh attempt).
TICKET_PENDING = "pending"
TICKET_RUNNING = "running"
TICKET_DONE = "done"
TICKET_FAILED = "failed"

#: The states a ticket can still leave (the in-flight states).
TICKET_ACTIVE_STATES = (TICKET_PENDING, TICKET_RUNNING)

#: The terminal states.
TICKET_FINAL_STATES = (TICKET_DONE, TICKET_FAILED)


class SubmitQueueFull(ReproError):
    """Raised when a submission would exceed the runner's ``max_pending`` cap.

    Carries the observed queue depth and the cap so a front door can translate
    the rejection into backpressure (HTTP 429 + ``Retry-After``).
    """

    def __init__(self, depth: int, limit: int) -> None:
        super().__init__(
            f"submit queue is full ({depth} in-flight jobs >= limit {limit})"
        )
        self.depth = depth
        self.limit = limit


@dataclass
class Ticket:
    """One submitted job's handle: identity, lifecycle state, and result.

    For cacheable jobs the ticket id *is* the job content hash — which is what
    makes resubmission idempotent (same hash, same ticket) and lets a restarted
    server answer fetches straight from the content-addressed cache.
    Uncacheable jobs get a process-local ``anon-N`` id and never coalesce.

    ``source`` records where the result came from: ``computed`` (executed by
    this runner), ``memo`` (in-process dedup) or ``cache`` (disk hit).
    ``coalesced`` counts the *extra* submissions that attached to this ticket
    while it was in flight.
    """

    ticket_id: str
    job: Job
    state: str = TICKET_PENDING
    result: Any = None
    error: Optional[str] = None
    source: str = "computed"
    coalesced: int = 0
    sequence: int = 0

    @property
    def finished(self) -> bool:
        """Whether the ticket reached a terminal state (done or failed)."""
        return self.state in TICKET_FINAL_STATES


@dataclass(frozen=True)
class SolveRequest:
    """One experiment-level solve: a problem, a config, and an iteration budget."""

    spec: GraphSpec
    config: MSROPMConfig
    iterations: int
    seed: Optional[int]


class ExperimentRunner:
    """Unified execution facade: scheduling + caching for experiment solves.

    Parameters
    ----------
    workers:
        Worker processes for the scheduler (1 = run inline, the default).
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables disk
        caching (an in-process memo still deduplicates within the runner's
        lifetime).
    replica_chunk:
        If set, solves are split into jobs of at most this many replicas, so
        a single large solve can shard across workers.  Chunk boundaries
        depend only on this value — never on ``workers`` — keeping cache
        hashes identical across worker counts.
    executor:
        Executor backend name: ``"local"`` (the default warm process pool) or
        ``"spool"`` (fleet execution over a shared filesystem spool;
        requires ``spool_dir``).  Results are bit-identical across backends.
    spool_dir:
        The shared spool directory for ``executor="spool"``.
    executor_options:
        Extra keyword options forwarded to the backend constructor (e.g.
        ``lease_timeout`` for the spool backend).
    max_pending:
        Upper bound on in-flight (pending + running) *submitted* jobs; a
        submission past the cap raises :class:`SubmitQueueFull`.  ``None``
        (default) means unbounded.  Only the submit path is capped — the
        blocking :meth:`run_jobs` path is already self-limiting.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        replica_chunk: Optional[int] = None,
        executor: str = "local",
        spool_dir: Optional[Union[str, Path]] = None,
        executor_options: Optional[Dict[str, Any]] = None,
        max_pending: Optional[int] = None,
    ) -> None:
        backend = make_backend(
            executor, workers=workers, spool_dir=spool_dir, **(executor_options or {})
        )
        self.scheduler = JobScheduler(backend=backend)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.replica_chunk = replica_chunk
        self.max_pending = max_pending
        self._memo: Dict[str, Any] = {}
        self.jobs_run = 0
        # --- submit/poll/fetch state (all guarded by _cond's lock) ---
        self._cond = threading.Condition()
        self._tickets: Dict[str, Ticket] = {}
        self._queue: List[Ticket] = []
        self._in_flight = 0
        self._drain_thread: Optional[threading.Thread] = None
        self._stop_drain = False
        self._anon_seq: Iterator[int] = itertools.count()
        self._ticket_seq: Iterator[int] = itertools.count()
        self.tickets_issued = 0
        self.tickets_coalesced = 0
        self.tickets_cache_served = 0

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of scheduler worker processes."""
        return self.scheduler.workers

    @property
    def executor(self) -> str:
        """Registry name of the scheduler's executor backend."""
        return self.scheduler.executor

    def close(self) -> None:
        """Release the drain thread and the scheduler's warm pool (idempotent).

        The pool is kept alive between :meth:`solve_many` calls so multi-batch
        commands (``msropm suite``, ``msropm scenarios``) pay process spin-up
        once; closing the runner — or using it as a context manager — returns
        the workers.  A closed runner can keep solving: the next parallel
        batch (or submission) simply restarts the drain thread and pool.

        The drain thread finishes the batch it is currently executing, then
        exits; tickets still *queued* at that point are marked failed (their
        hashes can simply be resubmitted later).
        """
        thread: Optional[threading.Thread] = None
        with self._cond:
            if self._drain_thread is not None and self._drain_thread.is_alive():
                self._stop_drain = True
                self._cond.notify_all()
                thread = self._drain_thread
        if thread is not None:
            thread.join()
        with self._cond:
            self._drain_thread = None
            self._stop_drain = False
        self.scheduler.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        """Execution counters: jobs run, cache hits/misses/stores, memo size,
        and the submit path's ticket/coalescing/queue accounting.
        ``drain_alive`` reports whether the background drain thread is
        currently running (liveness for the service's ``/stats``)."""
        with self._cond:
            counters = {
                "jobs_run": self.jobs_run,
                "memo_entries": len(self._memo),
                "cache_hits": 0,
                "cache_misses": 0,
                "cache_stale_misses": 0,
                "cache_stores": 0,
                "tickets_issued": self.tickets_issued,
                "tickets_coalesced": self.tickets_coalesced,
                "tickets_cache_served": self.tickets_cache_served,
                "queue_depth": self._in_flight,
                "drain_alive": int(
                    self._drain_thread is not None and self._drain_thread.is_alive()
                ),
            }
        if self.cache is not None:
            counters["cache_hits"] = self.cache.hits
            counters["cache_misses"] = self.cache.misses
            counters["cache_stale_misses"] = self.cache.stale_misses
            counters["cache_stores"] = self.cache.stores
        return counters

    # ------------------------------------------------------------------
    def solve(
        self,
        graph: Union[GraphSpec, Graph, str, Path],
        config: MSROPMConfig,
        iterations: int,
        seed: Optional[int] = None,
    ) -> SolveResult:
        """Solve one problem through the runtime (convenience wrapper)."""
        request = SolveRequest(
            spec=as_graph_spec(graph), config=config, iterations=iterations, seed=seed
        )
        return self.solve_many([request])[0]

    def run_jobs(
        self, jobs: Sequence[Job], progress: Optional[ProgressCallback] = None
    ) -> List[Any]:
        """Run a batch of jobs (any mix of types), returning decoded results
        in submission order.

        This is the generic execution path every batch goes through: jobs
        already answered by the in-process memo or the disk cache are skipped,
        identical jobs are deduplicated by content hash and computed once, and
        the remainder shards across the scheduler's worker pool.

        ``progress`` (optional) fires once per job as it resolves — immediately
        for memo/cache answers, per completion for scheduled jobs — giving
        callers (the campaign orchestrator's per-job ledger events) batch-free
        granularity.  It is observability only: it must not raise, may see
        duplicate job hashes (dedup is the consumer's job), and cannot affect
        results.
        """
        jobs = list(jobs)
        resolved: Dict[int, Any] = {}
        pending: List[Job] = []
        pending_keys: set = set()
        with self._cond:
            for position, job in enumerate(jobs):
                key = job.job_hash if job.cacheable else None
                if key is not None and key in self._memo:
                    resolved[position] = self._memo[key]
                    continue
                if key is not None and key in pending_keys:
                    continue  # identical job already queued; share its result
                if key is not None and self.cache is not None:
                    cached = self.cache.load(job)
                    if cached is not None:
                        self._memo[key] = cached
                        resolved[position] = cached
                        continue
                if key is not None:
                    pending_keys.add(key)
                pending.append(job)

        if progress is not None:
            # Announce the memo/cache-resolved jobs up front (outside the
            # lock); scheduled jobs announce themselves as they complete.
            for position in sorted(resolved):
                progress(jobs[position])

        fresh = self.scheduler.run(pending, progress)
        for job, result in zip(pending, fresh):
            if job.cacheable and self.cache is not None:
                self.cache.store(job, result)
        with self._cond:
            self.jobs_run += len(fresh)
            for job, result in zip(pending, fresh):
                if job.cacheable:
                    self._memo[job.job_hash] = result

        # Fill the remaining positions (freshly run or deduplicated jobs).
        next_uncacheable = iter(
            result for job, result in zip(pending, fresh) if not job.cacheable
        )
        for position, job in enumerate(jobs):
            if position in resolved:
                continue
            if job.cacheable:
                resolved[position] = self._memo[job.job_hash]
            else:
                resolved[position] = next(next_uncacheable)
        return [resolved[position] for position in range(len(jobs))]

    # ------------------------------------------------------------------
    # Non-blocking submit / poll / fetch path (the service front door).
    # ------------------------------------------------------------------
    def submit_jobs(self, jobs: Sequence[Job]) -> List[Ticket]:
        """Submit a batch of jobs without blocking, returning one ticket each.

        Cacheable jobs are keyed by content hash: a hash already answered by
        the memo or the disk cache comes back as an immediately-``done``
        ticket, a hash currently in flight **coalesces** onto the existing
        ticket (one execution, N watchers), and a previously ``failed`` hash
        is re-enqueued as a fresh attempt under the same id.  New work is
        queued for the background drain thread; when ``max_pending`` is set
        and the queue is full, :class:`SubmitQueueFull` is raised at the first
        job that would exceed the cap.  Jobs admitted before the rejection
        stay queued — hash-keyed idempotency makes a full-batch retry safe
        (retried jobs coalesce onto their already-queued tickets).
        """
        jobs = list(jobs)
        with self._cond:
            try:
                tickets = [self._submit_one_locked(job) for job in jobs]
            finally:
                # Wake the drain thread even if a later job hit the cap:
                # already-admitted tickets must still execute.
                if self._queue:
                    self._cond.notify_all()
                    self._ensure_drain_thread_locked()
        return tickets

    def submit(self, job: Job) -> Ticket:
        """Submit a single job (see :meth:`submit_jobs`)."""
        return self.submit_jobs([job])[0]

    def _submit_one_locked(self, job: Job) -> Ticket:
        """Resolve one submission to a ticket.  Caller holds ``_cond``."""
        key = job.job_hash if job.cacheable else None
        if key is not None:
            existing = self._tickets.get(key)
            if existing is not None:
                if existing.state in TICKET_ACTIVE_STATES:
                    existing.coalesced += 1
                    self.tickets_coalesced += 1
                    get_metrics().inc("runner.tickets_coalesced")
                    return existing
                if existing.state == TICKET_DONE:
                    self.tickets_cache_served += 1
                    get_metrics().inc("runner.tickets_cache_served")
                    return existing
                # failed → fall through and re-enqueue a fresh attempt
            if key in self._memo:
                ticket = Ticket(
                    ticket_id=key,
                    job=job,
                    state=TICKET_DONE,
                    result=self._memo[key],
                    source="memo",
                    sequence=next(self._ticket_seq),
                )
                self._tickets[key] = ticket
                self.tickets_issued += 1
                self.tickets_cache_served += 1
                get_metrics().inc("runner.tickets_issued")
                get_metrics().inc("runner.tickets_cache_served")
                return ticket
            if self.cache is not None:
                cached = self.cache.load(job)
                if cached is not None:
                    self._memo[key] = cached
                    ticket = Ticket(
                        ticket_id=key,
                        job=job,
                        state=TICKET_DONE,
                        result=cached,
                        source="cache",
                        sequence=next(self._ticket_seq),
                    )
                    self._tickets[key] = ticket
                    self.tickets_issued += 1
                    self.tickets_cache_served += 1
                    get_metrics().inc("runner.tickets_issued")
                    get_metrics().inc("runner.tickets_cache_served")
                    return ticket
        if self.max_pending is not None and self._in_flight >= self.max_pending:
            get_metrics().inc("runner.submit_rejections")
            raise SubmitQueueFull(self._in_flight, self.max_pending)
        ticket_id = key if key is not None else f"anon-{next(self._anon_seq)}"
        ticket = Ticket(
            ticket_id=ticket_id, job=job, sequence=next(self._ticket_seq)
        )
        self._tickets[ticket_id] = ticket
        self._queue.append(ticket)
        self._in_flight += 1
        self.tickets_issued += 1
        metrics = get_metrics()
        metrics.inc("runner.tickets_issued")
        metrics.set_gauge("runner.queue_depth", self._in_flight)
        return ticket

    def _ensure_drain_thread_locked(self) -> None:
        """Start the background drain thread if needed.  Caller holds ``_cond``."""
        if self._drain_thread is None or not self._drain_thread.is_alive():
            self._stop_drain = False
            self._drain_thread = threading.Thread(
                target=self._drain_worker, name="runner-drain", daemon=True
            )
            self._drain_thread.start()

    def _drain_worker(self) -> None:
        """Background loop: take the whole queue as one scheduler batch.

        Batching the full queue (rather than one job at a time) preserves the
        sharding behaviour of :meth:`run_jobs` — a burst of submissions
        spreads across the warm pool in a single dispatch.
        """
        while True:
            with self._cond:
                while not self._queue and not self._stop_drain:
                    self._cond.wait()
                if self._stop_drain:
                    for ticket in self._queue:
                        ticket.state = TICKET_FAILED
                        ticket.error = "runner closed before execution"
                        self._in_flight -= 1
                    self._queue.clear()
                    self._cond.notify_all()
                    return
                batch = list(self._queue)
                self._queue.clear()
                for ticket in batch:
                    ticket.state = TICKET_RUNNING
            metrics = get_metrics()
            try:
                with metrics.timer("runner.drain_batch_seconds"):
                    results = self.scheduler.run([ticket.job for ticket in batch])
            except Exception as exc:  # noqa: BLE001 - report, never kill the loop
                metrics.inc("runner.drain_batch_failures")
                with self._cond:
                    for ticket in batch:
                        ticket.state = TICKET_FAILED
                        ticket.error = f"{type(exc).__name__}: {exc}"
                        self._in_flight -= 1
                    metrics.set_gauge("runner.queue_depth", self._in_flight)
                    self._cond.notify_all()
                continue
            for ticket, result in zip(batch, results):
                if ticket.job.cacheable and self.cache is not None:
                    self.cache.store(ticket.job, result)
            with self._cond:
                for ticket, result in zip(batch, results):
                    if ticket.job.cacheable:
                        self._memo[ticket.job.job_hash] = result
                    ticket.result = result
                    ticket.state = TICKET_DONE
                    ticket.source = "computed"
                    self.jobs_run += 1
                    self._in_flight -= 1
                metrics.inc("runner.tickets_completed", len(batch))
                metrics.set_gauge("runner.queue_depth", self._in_flight)
                self._cond.notify_all()

    def poll(self, ticket_id: str) -> Optional[Ticket]:
        """Look up a ticket by id (``None`` if this runner never issued it)."""
        with self._cond:
            return self._tickets.get(ticket_id)

    def wait(
        self, tickets: Sequence[Ticket], timeout: Optional[float] = None
    ) -> bool:
        """Block until every ticket reaches a terminal state.

        Returns ``True`` when all finished, ``False`` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not all(ticket.finished for ticket in tickets):
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
        return True

    def queue_depth(self) -> int:
        """In-flight (pending + running) submitted jobs."""
        with self._cond:
            return self._in_flight

    def plan_jobs(self, requests: Sequence[SolveRequest]) -> List[List[SolveJob]]:
        """The per-request job lists ``solve_many`` would schedule.

        Chunk boundaries come from this runner's ``replica_chunk``, so the
        returned jobs carry exactly the hashes a ``solve_many`` call (or a
        campaign stage built on this planner) addresses in the cache.
        """
        per_request_jobs: List[List[SolveJob]] = []
        for request in requests:
            job = SolveJob(
                spec=request.spec,
                config=request.config,
                seed=request.seed,
                total_iterations=request.iterations,
            )
            per_request_jobs.append(job.split(self.replica_chunk))
        return per_request_jobs

    def solve_many(self, requests: Sequence[SolveRequest]) -> List[SolveResult]:
        """Solve a batch of requests, sharding all their jobs across the pool.

        Returns one merged :class:`SolveResult` per request, in request order.
        Submitting the whole batch at once (rather than request-by-request) is
        what lets the pool interleave problems, sweep points and replica
        chunks freely.
        """
        per_request_jobs = self.plan_jobs(requests)
        flat: List[SolveJob] = [job for jobs in per_request_jobs for job in jobs]
        resolved = self.run_jobs(flat)

        # Merge chunks back per request, in submission order.
        results: List[SolveResult] = []
        cursor = 0
        for jobs in per_request_jobs:
            chunk_results = resolved[cursor:cursor + len(jobs)]
            cursor += len(jobs)
            results.append(merge_job_results(jobs, chunk_results))
        return results
