"""ExperimentRunner: the facade every experiment's solves route through.

The runner turns "solve these problems with these configs" into scheduled,
cached jobs:

1. each :class:`SolveRequest` becomes one :class:`~repro.runtime.jobs.SolveJob`
   (optionally split into replica chunks),
2. jobs already answered by the in-process memo or the on-disk
   :class:`~repro.runtime.cache.ResultCache` are skipped,
3. the remaining jobs are sharded across the
   :class:`~repro.runtime.scheduler.JobScheduler`'s worker processes,
4. chunk results are merged back per request, bit-identical to serial runs.

Identical jobs appearing in several requests (e.g. Table 1 and the suite both
solving the 49-node problem under the same seed) are deduplicated by content
hash and solved once.  A default-constructed runner (one worker, no cache
directory) reproduces today's serial behaviour exactly, which is what the
experiments use when no runner is passed.

Results returned by the runner are in *persisted form* (round-tripped through
:mod:`repro.analysis.results_io`): accuracies, colorings, seeds and stage
records are preserved exactly, while unserialized extras (final phase arrays,
trajectories) are dropped — the same form a cache hit or a worker process
returns, so the three sources are indistinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.config import MSROPMConfig
from repro.core.results import SolveResult
from repro.graphs.graph import Graph
from repro.runtime.cache import ResultCache
from repro.runtime.executors import make_backend
from repro.runtime.jobs import GraphSpec, Job, SolveJob, as_graph_spec, merge_job_results
from repro.runtime.scheduler import JobScheduler


@dataclass(frozen=True)
class SolveRequest:
    """One experiment-level solve: a problem, a config, and an iteration budget."""

    spec: GraphSpec
    config: MSROPMConfig
    iterations: int
    seed: Optional[int]


class ExperimentRunner:
    """Unified execution facade: scheduling + caching for experiment solves.

    Parameters
    ----------
    workers:
        Worker processes for the scheduler (1 = run inline, the default).
    cache_dir:
        Directory for the on-disk result cache; ``None`` disables disk
        caching (an in-process memo still deduplicates within the runner's
        lifetime).
    replica_chunk:
        If set, solves are split into jobs of at most this many replicas, so
        a single large solve can shard across workers.  Chunk boundaries
        depend only on this value — never on ``workers`` — keeping cache
        hashes identical across worker counts.
    executor:
        Executor backend name: ``"local"`` (the default warm process pool) or
        ``"spool"`` (fleet execution over a shared filesystem spool;
        requires ``spool_dir``).  Results are bit-identical across backends.
    spool_dir:
        The shared spool directory for ``executor="spool"``.
    executor_options:
        Extra keyword options forwarded to the backend constructor (e.g.
        ``lease_timeout`` for the spool backend).
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        replica_chunk: Optional[int] = None,
        executor: str = "local",
        spool_dir: Optional[Union[str, Path]] = None,
        executor_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        backend = make_backend(
            executor, workers=workers, spool_dir=spool_dir, **(executor_options or {})
        )
        self.scheduler = JobScheduler(backend=backend)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.replica_chunk = replica_chunk
        self._memo: Dict[str, SolveResult] = {}
        self.jobs_run = 0

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Number of scheduler worker processes."""
        return self.scheduler.workers

    @property
    def executor(self) -> str:
        """Registry name of the scheduler's executor backend."""
        return self.scheduler.executor

    def close(self) -> None:
        """Release the scheduler's warm worker pool (idempotent).

        The pool is kept alive between :meth:`solve_many` calls so multi-batch
        commands (``msropm suite``, ``msropm scenarios``) pay process spin-up
        once; closing the runner — or using it as a context manager — returns
        the workers.  A closed runner can keep solving: the next parallel
        batch simply starts a fresh pool.
        """
        self.scheduler.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> Dict[str, int]:
        """Execution counters: jobs run, cache hits/misses/stores, memo size."""
        counters = {
            "jobs_run": self.jobs_run,
            "memo_entries": len(self._memo),
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_stale_misses": 0,
            "cache_stores": 0,
        }
        if self.cache is not None:
            counters["cache_hits"] = self.cache.hits
            counters["cache_misses"] = self.cache.misses
            counters["cache_stale_misses"] = self.cache.stale_misses
            counters["cache_stores"] = self.cache.stores
        return counters

    # ------------------------------------------------------------------
    def solve(
        self,
        graph: Union[GraphSpec, Graph, str, Path],
        config: MSROPMConfig,
        iterations: int,
        seed: Optional[int] = None,
    ) -> SolveResult:
        """Solve one problem through the runtime (convenience wrapper)."""
        request = SolveRequest(
            spec=as_graph_spec(graph), config=config, iterations=iterations, seed=seed
        )
        return self.solve_many([request])[0]

    def run_jobs(self, jobs: Sequence[Job]) -> List[Any]:
        """Run a batch of jobs (any mix of types), returning decoded results
        in submission order.

        This is the generic execution path every batch goes through: jobs
        already answered by the in-process memo or the disk cache are skipped,
        identical jobs are deduplicated by content hash and computed once, and
        the remainder shards across the scheduler's worker pool.
        """
        jobs = list(jobs)
        resolved: Dict[int, Any] = {}
        pending: List[Job] = []
        pending_keys: set = set()
        for position, job in enumerate(jobs):
            key = job.job_hash if job.cacheable else None
            if key is not None and key in self._memo:
                resolved[position] = self._memo[key]
                continue
            if key is not None and key in pending_keys:
                continue  # identical job already queued; share its result
            if key is not None and self.cache is not None:
                cached = self.cache.load(job)
                if cached is not None:
                    self._memo[key] = cached
                    resolved[position] = cached
                    continue
            if key is not None:
                pending_keys.add(key)
            pending.append(job)

        fresh = self.scheduler.run(pending)
        self.jobs_run += len(fresh)
        for job, result in zip(pending, fresh):
            if job.cacheable:
                self._memo[job.job_hash] = result
                if self.cache is not None:
                    self.cache.store(job, result)

        # Fill the remaining positions (freshly run or deduplicated jobs).
        next_uncacheable = iter(
            result for job, result in zip(pending, fresh) if not job.cacheable
        )
        for position, job in enumerate(jobs):
            if position in resolved:
                continue
            if job.cacheable:
                resolved[position] = self._memo[job.job_hash]
            else:
                resolved[position] = next(next_uncacheable)
        return [resolved[position] for position in range(len(jobs))]

    def plan_jobs(self, requests: Sequence[SolveRequest]) -> List[List[SolveJob]]:
        """The per-request job lists ``solve_many`` would schedule.

        Chunk boundaries come from this runner's ``replica_chunk``, so the
        returned jobs carry exactly the hashes a ``solve_many`` call (or a
        campaign stage built on this planner) addresses in the cache.
        """
        per_request_jobs: List[List[SolveJob]] = []
        for request in requests:
            job = SolveJob(
                spec=request.spec,
                config=request.config,
                seed=request.seed,
                total_iterations=request.iterations,
            )
            per_request_jobs.append(job.split(self.replica_chunk))
        return per_request_jobs

    def solve_many(self, requests: Sequence[SolveRequest]) -> List[SolveResult]:
        """Solve a batch of requests, sharding all their jobs across the pool.

        Returns one merged :class:`SolveResult` per request, in request order.
        Submitting the whole batch at once (rather than request-by-request) is
        what lets the pool interleave problems, sweep points and replica
        chunks freely.
        """
        per_request_jobs = self.plan_jobs(requests)
        flat: List[SolveJob] = [job for jobs in per_request_jobs for job in jobs]
        resolved = self.run_jobs(flat)

        # Merge chunks back per request, in submission order.
        results: List[SolveResult] = []
        cursor = 0
        for jobs in per_request_jobs:
            chunk_results = resolved[cursor:cursor + len(jobs)]
            cursor += len(jobs)
            results.append(merge_job_results(jobs, chunk_results))
        return results
