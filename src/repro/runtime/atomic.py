"""The blessed atomic-publication helpers.

Every durable artifact this repo writes — cache envelopes, spool job files,
benchmark payloads, exported bundles — must become visible to concurrent
readers either whole or not at all.  The one portable way to get that on a
POSIX filesystem is write-to-temp-in-the-same-directory + ``os.replace``:
the rename is atomic within one filesystem, so no reader can ever observe a
torn file, and a crash mid-write leaves only a ``*.tmp`` orphan that the
next writer ignores.

This module is the single implementation of that pattern.  The
``atomic-write`` lint rule (``repro.devtools.checkers.atomicity``) flags any
truncating write in spool/cache/ledger/benchmark code that bypasses these
helpers, so new durability bugs fail CI instead of surfacing as corrupt
artifacts under a crashed fleet worker.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, Union


def write_atomic_bytes(path: Union[str, Path], data: bytes) -> None:
    """Publish ``data`` at ``path`` via write-to-temp + atomic rename.

    The temp file is created in ``path``'s own directory so the final
    ``os.replace`` never crosses a filesystem boundary (cross-device renames
    are copy + delete, which is not atomic).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "wb", dir=target.parent, suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(data)
        os.replace(handle.name, target)
    except OSError:
        Path(handle.name).unlink(missing_ok=True)
        raise


@contextlib.contextmanager
def atomic_output(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a same-directory temp path, published to ``path`` on success.

    For writers that need a real filesystem path (``tarfile``, ``sqlite``,
    external tools) rather than bytes in hand.  On a clean exit the temp file
    is atomically renamed over ``path``; on an exception it is deleted and
    the target is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    os.close(descriptor)
    temp_path = Path(name)
    try:
        yield temp_path
        os.replace(temp_path, target)
    except BaseException:
        temp_path.unlink(missing_ok=True)
        raise


def write_atomic_text(path: Union[str, Path], text: str) -> None:
    """Publish ``text`` (UTF-8) at ``path`` via write-to-temp + atomic rename."""
    write_atomic_bytes(path, text.encode("utf-8"))


def write_atomic_json(
    path: Union[str, Path], payload: Any, *, indent: Union[int, None] = None
) -> None:
    """Serialize ``payload`` as JSON and publish it atomically at ``path``.

    ``indent`` mirrors :func:`json.dumps`; indented payloads get a trailing
    newline so the published file is diff- and ``cat``-friendly.
    """
    text = json.dumps(payload, indent=indent)
    if indent is not None:
        text += "\n"
    write_atomic_text(path, text)
