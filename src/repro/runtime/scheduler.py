"""Process-pool scheduler: shard runtime jobs across a warm pool of workers.

The evaluation grid (problems x sweep points x replica chunks) is
embarrassingly parallel — jobs share no state, and every job is seeded — so
the scheduler is deliberately simple: a :class:`concurrent.futures.ProcessPoolExecutor`
fan-out with order-preserving collection.  Four properties matter:

* **Determinism.**  Results are collected by submission index, never by
  completion order, and each job's randomness is fully determined by its
  seeds, so a run with ``workers=N`` is bit-identical to ``workers=1``.
* **Serial fast path.**  With one worker (or one job) everything runs in the
  calling process — no pool, no pickling — which is also the reference
  behaviour the parallel path is tested against.
* **Warm pool.**  The process pool is created once, on the first parallel
  batch, and kept alive for the scheduler's lifetime: every later
  :meth:`JobScheduler.run` call (``msropm suite`` runs several, the scenario
  matrix one per family sweep) reuses the same worker processes, paying
  interpreter spin-up, module imports, and the per-worker machine memo warm-up
  exactly once.  A pool initializer pre-imports the solver stack and caps the
  BLAS/OpenMP thread pools (one numpy thread per worker process), so
  process-level parallelism is never oversubscribed by GEMM threads.  Close
  the scheduler (context manager, :meth:`close`) to release the workers.
* **Normalized payloads.**  Workers return results in each job's persisted
  JSON form (the same form the cache stores), so a result is identical
  whether it came from the serial path, a worker process, or a cache hit.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.runtime.jobs import Job

#: Thread-pool environment caps applied to worker processes (and defaulted in
#: the parent before the pool forks/spawns, so the libraries that read them at
#: import time see them).  One BLAS/OpenMP thread per worker process: the
#: runtime's parallelism is process-level, and letting every worker's GEMM
#: spawn `cpu_count` threads oversubscribes the machine.
WORKER_THREAD_CAPS: Dict[str, str] = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "NUMEXPR_NUM_THREADS": "1",
}


#: C-interface ``set_num_threads`` entry points of the math libraries
#: numpy/scipy may have loaded: plain and ILP64-suffixed OpenBLAS builds, the
#: scipy-openblas wheels, OpenMP runtimes, MKL.  Deliberately excludes the
#: Fortran-mangled variants (trailing ``_`` after the ILP64 suffix), which
#: take their argument by reference and crash when called by value.
_THREAD_SETTER_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "omp_set_num_threads",
    "MKL_Set_Num_Threads",
)

#: Basename prefixes of the runtime libraries worth probing.  The filter is
#: deliberately narrow: matching on substrings like ``omp`` would also catch
#: CPython extension modules (``_decomp_*.so``), which must not be re-opened
#: outside the import machinery.
_THREAD_LIBRARY_PREFIXES = (
    "libopenblas",
    "libscipy_openblas",
    "libblas",
    "libcblas",
    "libmkl_rt",
    "libgomp",
    "libiomp",
    "libomp",
)


def limit_math_threads(limit: int) -> bool:
    """Cap the thread pools of *already loaded* BLAS/OpenMP libraries.

    Environment variables only configure a math library at import time, so
    under the ``fork`` start method (the Linux default) a worker inherits the
    parent's fully initialized, ``cpu_count``-threaded OpenBLAS no matter what
    the initializer exports.  This applies the cap in-process instead: through
    ``threadpoolctl`` when it is installed, otherwise by calling the first
    recognized ``*_set_num_threads`` entry point of every BLAS/OpenMP runtime
    library the process has mapped (re-``dlopen``-ing a mapped library returns
    the live handle).  Returns whether any pool was actually capped
    (``False`` e.g. on non-Linux without threadpoolctl, where the environment
    route is the only one available).
    """
    try:
        from threadpoolctl import threadpool_limits

        threadpool_limits(limits=limit)
        return True
    except Exception:
        pass
    applied = False
    try:
        import ctypes

        paths = set()
        with open("/proc/self/maps", encoding="utf-8") as handle:
            for line in handle:
                tail = line.rsplit(None, 1)[-1]
                basename = tail.rsplit("/", 1)[-1].lower()
                if basename.startswith(_THREAD_LIBRARY_PREFIXES) and ".so" in basename:
                    paths.add(tail)
        for path in sorted(paths):
            try:
                library = ctypes.CDLL(path)
            except OSError:
                continue
            for symbol in _THREAD_SETTER_SYMBOLS:
                setter = getattr(library, symbol, None)
                if setter is None:
                    continue
                try:
                    setter.argtypes = [ctypes.c_int]
                    setter.restype = None
                    setter(ctypes.c_int(limit))
                    applied = True
                except Exception:
                    pass
                break  # one setter per library; the variants share one pool
    except Exception:
        return applied
    return applied


def _worker_init(thread_caps: Dict[str, str]) -> None:
    """Pool initializer: cap math-library threads and pre-import the solver.

    Runs once per worker process before any job.  The caps are applied twice
    over: via the environment (authoritative under ``spawn``/``forkserver``,
    where numpy is imported afterwards, and for any library not yet loaded)
    and via :func:`limit_math_threads` for the libraries a forked worker
    inherited already initialized.  Pre-importing the solver stack moves
    module import latency out of the first job's critical path.
    """
    os.environ.update(thread_caps)
    if thread_caps:
        limit = int(thread_caps.get("OMP_NUM_THREADS", "1"))
        limit_math_threads(limit)
    # Pre-import the heavy modules every job needs.
    import repro.analysis.results_io  # noqa: F401
    import repro.core.machine  # noqa: F401
    import repro.workloads.registry  # noqa: F401


def _execute_job(job: Job) -> Dict:
    """Worker entry point: run one job and return its persisted-form payload.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method; the dict payload keeps the parent<->worker wire format
    identical to the cache format for every job type.
    """
    return job.execute()


class JobScheduler:
    """Executes batches of :class:`~repro.runtime.jobs.Job` across a warm
    process pool.  Any mix of job types can share one batch: each job ships
    its own ``execute`` body and decodes its own payload.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (default) runs jobs inline in the
        calling process.
    thread_caps:
        Environment caps applied to worker math libraries;
        defaults to :data:`WORKER_THREAD_CAPS` (single-threaded BLAS/OpenMP).
        Pass an empty dict to leave the environment untouched.

    The pool is created lazily on the first parallel batch and reused by
    every subsequent :meth:`run` call until :meth:`close` (or context-manager
    exit, or garbage collection) shuts it down.
    """

    def __init__(self, workers: int = 1, thread_caps: Optional[Dict[str, str]] = None) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.thread_caps = dict(WORKER_THREAD_CAPS) if thread_caps is None else dict(thread_caps)
        self._pool: Optional[ProcessPoolExecutor] = None
        self.pools_started = 0

    # ------------------------------------------------------------------
    @property
    def start_method(self) -> str:
        """The multiprocessing start method worker processes are created with."""
        return multiprocessing.get_start_method()

    @property
    def pool_active(self) -> bool:
        """Whether a warm worker pool is currently alive."""
        return self._pool is not None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The scheduler's persistent pool (created on first use)."""
        if self._pool is None:
            # Default the caps in the parent too: children inherit the
            # environment before importing numpy under spawn/forkserver, which
            # is the only reliable moment to cap OpenBLAS/MKL threads.
            for name, value in self.thread_caps.items():
                os.environ.setdefault(name, value)
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self.thread_caps,),
            )
            self.pools_started += 1
        return self._pool

    def close(self) -> None:
        """Shut the warm pool down (idempotent); a later run() restarts it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown timing
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
        except Exception:
            pass

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> List[Any]:
        """Run ``jobs`` and return their decoded results in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers == 1 or len(jobs) == 1:
            return [job.decode(_execute_job(job)) for job in jobs]
        # Without an explicit chunksize, pool.map ships jobs one at a time and
        # a scenario matrix of many small jobs serializes on IPC round-trips.
        # Target ~4 chunks per worker: big enough to amortize pickling, small
        # enough to balance uneven job costs.  map() returns results in
        # submission order regardless of chunking, preserving determinism.
        chunksize = max(1, len(jobs) // (self.workers * 4))
        pool = self._ensure_pool()
        try:
            payloads = pool.map(_execute_job, jobs, chunksize=chunksize)
            return [job.decode(payload) for job, payload in zip(jobs, payloads)]
        except BrokenProcessPool:
            # A dead worker poisons the whole executor; drop it so the next
            # batch starts a fresh pool instead of failing forever.
            pool.shutdown(wait=False)
            self._pool = None
            raise
