"""Process-pool scheduler: shard solve jobs across worker processes.

The evaluation grid (problems x sweep points x replica chunks) is
embarrassingly parallel — jobs share no state, and every job is seeded — so
the scheduler is deliberately simple: a :class:`concurrent.futures.ProcessPoolExecutor`
fan-out with order-preserving collection.  Three properties matter:

* **Determinism.**  Results are collected by submission index, never by
  completion order, and each job's randomness is fully determined by its
  seeds, so a run with ``workers=N`` is bit-identical to ``workers=1``.
* **Serial fast path.**  With one worker (or one job) everything runs in the
  calling process — no pool, no pickling — which is also the reference
  behaviour the parallel path is tested against.
* **Normalized payloads.**  Workers return results in the persisted form of
  :mod:`repro.analysis.results_io` (the same form the cache stores), so a
  result is identical whether it came from the serial path, a worker process,
  or a cache hit.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.analysis.results_io import solve_result_from_dict, solve_result_to_dict
from repro.core.results import SolveResult
from repro.runtime.jobs import SolveJob


def _execute_job(job: SolveJob) -> Dict:
    """Worker entry point: run one job and return its persisted-form payload.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method; the dict payload keeps the parent<->worker wire format
    identical to the cache format.
    """
    return solve_result_to_dict(job.run())


class JobScheduler:
    """Executes batches of :class:`SolveJob` across a process pool.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (default) runs jobs inline in the
        calling process.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def run(self, jobs: Sequence[SolveJob]) -> List[SolveResult]:
        """Run ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        if not jobs:
            return []
        if self.workers == 1 or len(jobs) == 1:
            return [solve_result_from_dict(_execute_job(job)) for job in jobs]
        workers = min(self.workers, len(jobs))
        # Without an explicit chunksize, pool.map ships jobs one at a time and
        # a scenario matrix of many small jobs serializes on IPC round-trips.
        # Target ~4 chunks per worker: big enough to amortize pickling, small
        # enough to balance uneven job costs.  map() returns results in
        # submission order regardless of chunking, preserving determinism.
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = pool.map(_execute_job, jobs, chunksize=chunksize)
            return [solve_result_from_dict(payload) for payload in payloads]
