"""JobScheduler: batch execution facade over pluggable executor backends.

The scheduler used to be hard-wired to one local
:class:`~concurrent.futures.ProcessPoolExecutor`; it is now a thin,
backend-agnostic facade.  A backend (:mod:`repro.runtime.executors`) turns a
batch of :class:`~repro.runtime.jobs.Job` values into JSON payloads in
submission order; the scheduler's own job is everything that must be
*identical across backends*:

* **Determinism.**  Payloads are collected by submission index, never by
  completion order, and each job's randomness is fully determined by its
  seeds, so a run is bit-identical whether it executed serially, across a
  local pool, or on N fleet processes draining a shared spool.
* **Uniform decode.**  Workers and backends traffic in each job's persisted
  JSON form (the same form the cache stores); the scheduler decodes exactly
  once, so a result is indistinguishable whether it came from the serial
  path, a worker process, a fleet worker on another host, or a cache hit.
* **Lifecycle.**  Warm backend state (a process pool, spawned fleet workers)
  is released by :meth:`JobScheduler.close`, context-manager exit, or
  garbage collection.

The default backend is :class:`~repro.runtime.executors.LocalPoolExecutorBackend`
(current single-host behavior, serial fast path at ``workers=1``); pass any
other :class:`~repro.runtime.executors.ExecutorBackend` to scale differently.
Worker-environment utilities (thread caps, pool initializer) live in
:mod:`repro.runtime.worker_env` and are re-exported here for compatibility.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.executors import (
    ExecutorBackend,
    LocalPoolExecutorBackend,
    ProgressCallback,
)
from repro.runtime.jobs import Job

# Re-exported for compatibility: these lived here before the backend split.
from repro.runtime.worker_env import (  # noqa: F401
    WORKER_THREAD_CAPS,
    _execute_job,
    _worker_init,
    limit_math_threads,
)


class JobScheduler:
    """Executes batches of :class:`~repro.runtime.jobs.Job` through an
    executor backend.  Any mix of job types can share one batch: each job
    ships its own ``execute`` body and decodes its own payload.

    Parameters
    ----------
    workers:
        Number of worker processes; ``1`` (default) runs jobs inline in the
        calling process.  Ignored when ``backend`` is given.
    thread_caps:
        Environment caps applied to worker math libraries; defaults to
        :data:`~repro.runtime.worker_env.WORKER_THREAD_CAPS` (single-threaded
        BLAS/OpenMP).  Pass an empty dict to leave the environment untouched.
        Ignored when ``backend`` is given.
    backend:
        An explicit :class:`~repro.runtime.executors.ExecutorBackend`; when
        omitted, a local pool backend is built from ``workers``/``thread_caps``.
    """

    def __init__(
        self,
        workers: int = 1,
        thread_caps: Optional[Dict[str, str]] = None,
        backend: Optional[ExecutorBackend] = None,
    ) -> None:
        if backend is None:
            backend = LocalPoolExecutorBackend(workers=workers, thread_caps=thread_caps)
        self.backend = backend
        # Serializes cross-thread batches: the runner's blocking run_jobs path
        # and its background drain thread may both dispatch; backends are not
        # required to be re-entrant, so one batch owns the backend at a time.
        self._run_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """The backend's configured worker parallelism."""
        return self.backend.workers

    @property
    def executor(self) -> str:
        """Registry name of the active backend (``local``, ``spool``, ...)."""
        return self.backend.name

    @property
    def start_method(self) -> str:
        """The multiprocessing start method local worker processes use."""
        return multiprocessing.get_start_method()

    @property
    def thread_caps(self) -> Dict[str, str]:
        """Worker math-library thread caps (empty for cap-less backends)."""
        return dict(getattr(self.backend, "thread_caps", {}))

    @property
    def pool_active(self) -> bool:
        """Whether the backend holds a warm local worker pool."""
        return bool(getattr(self.backend, "pool_active", False))

    @property
    def pools_started(self) -> int:
        """How many local pools the backend has started (0 for non-pool backends)."""
        return int(getattr(self.backend, "pools_started", 0))

    def close(self) -> None:
        """Release the backend's warm state (idempotent); later runs restart it."""
        self.backend.close()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown timing
        try:
            self.backend.abort()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[Job], progress: Optional[ProgressCallback] = None
    ) -> List[Any]:
        """Run ``jobs`` and return their decoded results in submission order.

        ``progress`` is forwarded to the backend and invoked once per job as
        its payload becomes available (observability only — it must not
        raise and does not affect results).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        metrics = get_metrics()
        metrics.inc("scheduler.batches")
        metrics.inc("scheduler.jobs_dispatched", len(jobs))
        with self._run_lock:
            with metrics.timer("scheduler.batch_seconds"):
                payloads = self.backend.run_payloads(jobs, progress)
        return [job.decode(payload) for job, payload in zip(jobs, payloads)]
