"""Jobs: the schedulable units of work of the experiment runtime.

The runtime's primitive is the :class:`Job` protocol — a picklable value
object with a *stable content hash* and a worker-executable body — which is
what makes the rest of the runtime possible:

* the :mod:`repro.runtime.scheduler` ships jobs to worker processes (pickle)
  and collects their JSON payloads in submission order,
* the :mod:`repro.runtime.cache` keys its on-disk entries by the job hash,
* the :class:`~repro.runtime.runner.ExperimentRunner` deduplicates identical
  jobs across experiments by that same hash.

:class:`SolveJob` is the MSROPM instantiation: "run the machine on graph G
with configuration C, seeded from S, for iterations [a, b) of an R-iteration
solve".  Replica-range chunking (``SolveJob.split``) shards one large solve
into several jobs whose merged results are bit-identical to the unchunked
run, because per-iteration seeds are derived from the *full* solve up front
and every replica consumes only its own RNG stream.
:class:`repro.runtime.baselines.BaselineJob` wraps the SA/tabu/ROIM/
single-stage baseline solvers in the same protocol, so the scenario matrix's
baseline column shards across the warm process pool exactly like the MSROPM
column does.

Graphs are carried as :class:`GraphSpec` descriptions rather than instances so
a job stays small on the wire and content-addressable: a King's board by its
shape, a DIMACS ``.col`` file by the SHA-256 of its text, a generated ensemble
member by its recipe (workload family + parameters + seed), an explicit graph
by the SHA-256 of its canonical JSON form.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import asdict, dataclass
from functools import cached_property
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.exceptions import ConfigurationError
from repro.core.config import MSROPMConfig
from repro.core.results import SolveResult
from repro.graphs.graph import Graph

#: Version of the job-hash recipe.  Bump whenever the hashed payload or the
#: solver semantics change in a result-affecting way; every cache entry keyed
#: under the old recipe then misses and is recomputed cleanly.
#:
#: History: 1 — MSROPM-only SolveJobs.  2 — polymorphic job protocol
#: (``job_kind`` in the hashed identity) and the raw (unclipped) stage-1
#: accuracy added to persisted results; cached v1 entries would deserialize
#: without the raw field, so they are invalidated wholesale.  3 — the
#: precision tier rides in the hashed config (``MSROPMConfig.precision``) and
#: results carry execution metadata; exact and throughput runs of the same
#: workload therefore hash differently and can never share a cache entry.
JOB_SCHEMA_VERSION = 3


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_json(payload: Dict) -> str:
    """Serialize ``payload`` to the canonical JSON form used for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


# ----------------------------------------------------------------------
# Graph specifications
# ----------------------------------------------------------------------
class GraphSpec(ABC):
    """A declarative, content-addressable description of a problem graph."""

    @abstractmethod
    def build(self) -> Graph:
        """Materialize the graph (called in the worker process)."""

    @abstractmethod
    def fingerprint(self) -> Dict:
        """JSON-able content identity of the graph (goes into the job hash)."""

    @property
    @abstractmethod
    def label(self) -> str:
        """Short human-readable name for logs and reports."""

    @property
    def deterministic(self) -> bool:
        """Whether :meth:`build` always materializes the same graph.

        ``True`` for every content-addressed spec; a generated-ensemble spec
        without a fixed seed overrides this, which makes its jobs uncacheable
        (see :attr:`SolveJob.cacheable`).
        """
        return True


@dataclass(frozen=True)
class KingsGraphSpec(GraphSpec):
    """A ``rows x cols`` King's graph (the paper's benchmark topology)."""

    rows: int
    cols: int

    def build(self) -> Graph:
        from repro.graphs.generators import kings_graph

        return kings_graph(self.rows, self.cols)

    def fingerprint(self) -> Dict:
        return {"kind": "kings", "rows": self.rows, "cols": self.cols}

    @property
    def label(self) -> str:
        return f"kings-{self.rows}x{self.cols}"


@dataclass(frozen=True)
class GeneratedGraphSpec(GraphSpec):
    """A graph drawn from a registered generator family, addressed by recipe.

    The content identity is the *recipe* — family name, sorted parameters and
    generator seed — never the materialized adjacency, so the hash is stable
    across processes and independent of in-memory node order or generator
    implementation details like insertion order.  :meth:`build` dispatches
    through the workload registry (:mod:`repro.workloads`), which is also what
    makes the spec picklable at a few dozen bytes regardless of graph size.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so the spec stays
    hashable; use :meth:`create` to build one from keyword arguments.
    """

    family: str
    params: tuple
    seed: Optional[int] = None

    @classmethod
    def create(cls, family: str, seed: Optional[int] = None, **params) -> "GeneratedGraphSpec":
        """Build a spec from keyword parameters (sorted canonically)."""
        return cls(family=family, params=tuple(sorted(params.items())), seed=seed)

    def build(self) -> Graph:
        from repro.workloads.registry import build_family_graph

        return build_family_graph(self.family, dict(self.params), self.seed)

    def fingerprint(self) -> Dict:
        return {
            "kind": "generated",
            "family": self.family,
            "params": dict(self.params),
            "seed": self.seed,
        }

    @property
    def label(self) -> str:
        parts = "-".join(f"{name}{value}" for name, value in self.params)
        suffix = "" if self.seed is None else f"-s{self.seed}"
        return f"{self.family}-{parts}{suffix}" if parts else f"{self.family}{suffix}"

    @property
    def deterministic(self) -> bool:
        """A generated ensemble member is reproducible only under a fixed seed."""
        return self.seed is not None


class DimacsGraphSpec(GraphSpec):
    """A graph loaded from a DIMACS ``.col`` file, addressed by file content.

    The fingerprint hashes the file *text*, not the path: moving an instance
    does not invalidate cached results, editing it does.  The text is
    snapshotted on first access and carried with the spec (including across
    pickling to worker processes), so one spec always hashes and builds the
    same content even if the file changes mid-run, and the file is read at
    most once per spec.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._snapshot: Optional[str] = None
        self._digest: Optional[str] = None
        self._graph: Optional[Graph] = None

    def __eq__(self, other) -> bool:
        return isinstance(other, DimacsGraphSpec) and other.path == self.path

    def __hash__(self) -> int:
        return hash((DimacsGraphSpec, self.path))

    def __getstate__(self):
        # Snapshot the text *before* crossing a process boundary so every
        # worker builds exactly this content even for uncacheable jobs (whose
        # hash never forced a read); ship the snapshot but not the parsed
        # graph, keeping the pickled job small.
        self._text()
        state = dict(self.__dict__)
        state["_graph"] = None
        return state

    def _text(self) -> str:
        if self._snapshot is None:
            self._snapshot = Path(self.path).read_text(encoding="utf-8")
        return self._snapshot

    def build(self) -> Graph:
        from repro.graphs.io import from_dimacs

        if self._graph is None:
            self._graph = from_dimacs(self._text(), name=Path(self.path).stem)
        return self._graph

    def fingerprint(self) -> Dict:
        if self._digest is None:
            self._digest = _sha256_text(self._text())
        return {"kind": "dimacs", "sha256": self._digest}

    @property
    def label(self) -> str:
        return Path(self.path).stem or "dimacs"


class ExplicitGraphSpec(GraphSpec):
    """An in-memory graph, addressed by the SHA-256 of its canonical JSON.

    Used by the sweep harness and library callers that already hold a
    :class:`Graph`.  The JSON form (and therefore the hash) is computed once
    and reused across the many jobs of a sweep.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._digest: Optional[str] = None

    def build(self) -> Graph:
        return self.graph

    def fingerprint(self) -> Dict:
        if self._digest is None:
            from repro.graphs.io import to_json

            self._digest = _sha256_text(to_json(self.graph))
        return {"kind": "explicit", "sha256": self._digest}

    @property
    def label(self) -> str:
        return self.graph.name or f"graph-{self.graph.num_nodes}n"


def as_graph_spec(source: Union[GraphSpec, Graph, str, Path]) -> GraphSpec:
    """Coerce a graph, spec, or ``.col``/``.json`` path into a :class:`GraphSpec`.

    Paths dispatch on their suffix like :func:`repro.graphs.io.read_graph`:
    ``.json`` loads the label-preserving JSON codec (content-addressed via the
    loaded graph), everything else is treated as DIMACS.
    """
    if isinstance(source, GraphSpec):
        return source
    if isinstance(source, Graph):
        return ExplicitGraphSpec(source)
    if isinstance(source, (str, Path)):
        path = Path(source)
        if path.suffix.lower() == ".json":
            from repro.graphs.io import read_json

            return ExplicitGraphSpec(read_json(path))
        return DimacsGraphSpec(str(source))
    raise ConfigurationError(f"cannot build a graph spec from {type(source)!r}")


# ----------------------------------------------------------------------
# The job protocol
# ----------------------------------------------------------------------
class Job(ABC):
    """A schedulable, content-addressable unit of work.

    Every job type the runtime can shard — MSROPM solves, baseline runs,
    campaign stage work — implements this protocol.  The contract:

    * the job is a small picklable value object (it crosses process
      boundaries whole),
    * :meth:`execute` runs the work and returns a *JSON-serializable payload*
      — the wire format between worker and parent and the on-disk cache
      format, so a result is identical whether it was computed inline, in a
      worker process, or read back from the cache,
    * :meth:`decode` turns a payload back into the rich result the caller
      consumes; :meth:`encode` is its inverse (used when storing a decoded
      result),
    * :meth:`describe` is the job's full hashed identity; two jobs with equal
      descriptions are interchangeable and share one cache entry.

    ``job_kind`` namespaces the hash so two different job types can never
    collide on one cache entry, even if their remaining payloads matched.
    """

    #: Short tag naming the job type; folded into the content hash.
    job_kind: str = "job"

    @property
    @abstractmethod
    def cacheable(self) -> bool:
        """Whether the job is deterministic (safe to content-hash and cache)."""

    @abstractmethod
    def describe(self) -> Dict:
        """The hashed identity of the job as a JSON-able dictionary."""

    @property
    @abstractmethod
    def label(self) -> str:
        """Short human-readable name for progress output."""

    @abstractmethod
    def execute(self) -> Dict:
        """Run the job (in the worker process) and return its JSON payload."""

    @abstractmethod
    def decode(self, payload: Dict) -> Any:
        """Rebuild the rich result from a payload (parent side)."""

    def encode(self, result: Any) -> Dict:
        """Serialize a decoded result back to the payload form.

        The default assumes the decoded result *is* the payload (true for
        jobs whose results are plain dictionaries); jobs with rich result
        objects override this with their serializer.
        """
        return result

    def validate(self, result: Any) -> bool:
        """Whether a decoded (possibly cached) result is complete for this job.

        The cache calls this on loaded entries; returning ``False`` turns a
        partial or foreign entry under our key into a miss.
        """
        return True

    @cached_property
    def job_hash(self) -> str:
        """Stable SHA-256 content hash of the job (cache key, dedup key)."""
        if not self.cacheable:
            raise ConfigurationError(
                "jobs without a fixed seed are nondeterministic and have no content hash"
            )
        return _sha256_text(canonical_json(self.describe()))


# ----------------------------------------------------------------------
# MSROPM solve jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SolveJob(Job):
    """One schedulable solve: graph + config + seed + replica range.

    ``replica_start``/``replica_stop`` select iterations ``[start, stop)`` of
    a ``total_iterations``-iteration solve whose per-iteration seeds derive
    from ``seed``.  A full solve is the range ``[0, total_iterations)``; any
    partition of that range into jobs merges back (in range order) to results
    bit-identical to the unchunked solve, because each replica owns an
    independent seeded stream.
    """

    spec: GraphSpec
    config: MSROPMConfig
    seed: int
    total_iterations: int
    replica_start: int = 0
    replica_stop: Optional[int] = None

    job_kind = "solve"

    def __post_init__(self) -> None:
        if self.total_iterations < 1:
            raise ConfigurationError(
                f"total_iterations must be at least 1, got {self.total_iterations}"
            )
        stop = self.stop
        if not 0 <= self.replica_start < stop <= self.total_iterations:
            raise ConfigurationError(
                f"invalid replica range [{self.replica_start}, {stop}) "
                f"for a {self.total_iterations}-iteration solve"
            )

    # ------------------------------------------------------------------
    @property
    def stop(self) -> int:
        """The exclusive end of the replica range (``None`` means the full solve)."""
        return self.total_iterations if self.replica_stop is None else self.replica_stop

    @property
    def num_replicas(self) -> int:
        """Number of iterations this job executes."""
        return self.stop - self.replica_start

    @property
    def cacheable(self) -> bool:
        """Whether this job's results are deterministic (safe to cache).

        A job is reproducible only when the solve seed is fixed, the graph
        spec builds deterministically (generated ensembles need their own
        seed), and, if the machine draws static frequency detuning, the config
        seed is fixed too.
        """
        if self.seed is None:
            return False
        if not self.spec.deterministic:
            return False
        if self.config.frequency_detuning_std > 0 and self.config.seed is None:
            return False
        return True

    # ------------------------------------------------------------------
    def describe(self) -> Dict:
        """The hashed identity of the job as a JSON-able dictionary."""
        from repro.analysis.results_io import FORMAT_VERSION

        return {
            "job_kind": self.job_kind,
            "job_schema": JOB_SCHEMA_VERSION,
            "results_format": FORMAT_VERSION,
            "graph": self.spec.fingerprint(),
            "config": asdict(self.config),
            "seed": self.seed,
            "total_iterations": self.total_iterations,
            "replica_start": self.replica_start,
            "replica_stop": self.stop,
        }

    @property
    def label(self) -> str:
        """Short name for progress output."""
        suffix = (
            ""
            if self.num_replicas == self.total_iterations
            else f"[{self.replica_start}:{self.stop}]"
        )
        return f"{self.spec.label}/i{self.total_iterations}{suffix}/s{self.seed}"

    # ------------------------------------------------------------------
    def split(self, replica_chunk: Optional[int]) -> List["SolveJob"]:
        """Split this job into chunks of at most ``replica_chunk`` replicas.

        Chunk boundaries depend only on the chunk size — never on the worker
        count — so the set of job hashes (and therefore the cache layout) is
        identical no matter how many processes execute them.
        """
        if replica_chunk is None or replica_chunk >= self.num_replicas:
            return [self]
        if replica_chunk < 1:
            raise ConfigurationError(f"replica_chunk must be >= 1, got {replica_chunk}")
        chunks = []
        for start in range(self.replica_start, self.stop, replica_chunk):
            chunks.append(
                SolveJob(
                    spec=self.spec,
                    config=self.config,
                    seed=self.seed,
                    total_iterations=self.total_iterations,
                    replica_start=start,
                    replica_stop=min(start + replica_chunk, self.stop),
                )
            )
        return chunks

    @property
    def memoizable(self) -> bool:
        """Whether the job's graph+machine construction is reusable.

        Construction is deterministic — and therefore shareable between jobs —
        when the graph spec builds deterministically and any static frequency
        detuning is drawn from a fixed config seed.  (Unlike
        :attr:`cacheable`, the *solve* seed is irrelevant: the memo only
        caches the constructed machine, never results.)
        """
        if not self.spec.deterministic:
            return False
        if self.config.frequency_detuning_std > 0 and self.config.seed is None:
            return False
        return True

    def run(self) -> SolveResult:
        """Execute the job in-process and return its range's results.

        Iteration indices in the returned result are *global* (relative to the
        full solve), which is what makes range merging order-preserving.
        Graph and machine construction goes through the process-local machine
        memo, so repeat jobs on the same (problem, config) — replica chunks of
        one solve, sweep reruns, warm scenario matrices — skip the rebuild and
        reuse the machine's precompiled stage executors.
        """
        graph, machine = build_machine(self.spec, self.config, memoize=self.memoizable)
        iterations = machine.solve_range(
            total_iterations=self.total_iterations,
            start=self.replica_start,
            stop=self.stop,
            seed=self.seed,
        )
        return SolveResult(
            graph=graph,
            num_colors=self.config.num_colors,
            iterations=iterations,
            metadata=machine.result_metadata(),
        )

    # ------------------------------------------------------------------
    # Job protocol
    # ------------------------------------------------------------------
    def execute(self) -> Dict:
        """Run the solve and return its persisted-form payload."""
        from repro.analysis.results_io import solve_result_to_dict

        return solve_result_to_dict(self.run())

    def decode(self, payload: Dict) -> SolveResult:
        from repro.analysis.results_io import solve_result_from_dict

        return solve_result_from_dict(payload)

    def encode(self, result: SolveResult) -> Dict:
        from repro.analysis.results_io import solve_result_to_dict

        return solve_result_to_dict(result)

    def validate(self, result: SolveResult) -> bool:
        """A cached entry must carry exactly this job's replica range."""
        return len(result.iterations) == self.num_replicas


# ----------------------------------------------------------------------
# Process-local machine memo
# ----------------------------------------------------------------------
#: Constructed (graph, machine) pairs keyed by spec/config content hash, one
#: memo per process (each scheduler worker keeps its own).  Small and bounded:
#: entries are a Graph plus an MSROPM with its cached stage executors.
_MACHINE_MEMO: "OrderedDict[str, tuple]" = OrderedDict()

#: Maximum number of memoized machines per process.
MACHINE_MEMO_MAX = 64

#: Process-local counters (inspected by tests and the hot-path benchmark).
MACHINE_MEMO_STATS = {"hits": 0, "builds": 0}


def machine_memo_key(spec: GraphSpec, config: MSROPMConfig) -> str:
    """Content hash identifying one (graph spec, config) construction."""
    return _sha256_text(
        canonical_json({"graph": spec.fingerprint(), "config": asdict(config)})
    )


def clear_machine_memo() -> None:
    """Drop every memoized machine (test isolation hook)."""
    _MACHINE_MEMO.clear()
    MACHINE_MEMO_STATS["hits"] = 0
    MACHINE_MEMO_STATS["builds"] = 0


def build_machine(spec: GraphSpec, config: MSROPMConfig, memoize: bool = True):
    """Build (or reuse) the graph and MSROPM for a job's spec/config pair.

    With ``memoize=True`` (deterministic constructions only — see
    :attr:`SolveJob.memoizable`) the pair is served from the process-local
    memo: repeat jobs on the same problem skip graph generation, netlist
    construction, detuning draws, and — because the machine carries its cached
    stage executors and coupling plans — operator precompilation.  Solves
    draw no state from the machine besides these immutable structures, so
    sharing is bit-neutral.
    """
    from repro.core.machine import MSROPM

    if not memoize:
        graph = spec.build()
        return graph, MSROPM(graph, config)
    key = machine_memo_key(spec, config)
    entry = _MACHINE_MEMO.get(key)
    if entry is not None:
        _MACHINE_MEMO.move_to_end(key)
        MACHINE_MEMO_STATS["hits"] += 1
        return entry
    graph = spec.build()
    machine = MSROPM(graph, config)
    _MACHINE_MEMO[key] = (graph, machine)
    MACHINE_MEMO_STATS["builds"] += 1
    while len(_MACHINE_MEMO) > MACHINE_MEMO_MAX:
        _MACHINE_MEMO.popitem(last=False)
    return graph, machine


def merge_job_results(jobs: List[SolveJob], results: List[SolveResult]) -> SolveResult:
    """Merge per-chunk results back into one solve, in replica order.

    The chunks must tile one solve's replica range; iterations are concatenated
    in ascending ``replica_start`` order, reproducing exactly the iteration
    list the unchunked solve would have produced.
    """
    if not jobs or len(jobs) != len(results):
        raise ConfigurationError("merge needs one result per job")
    ordered = sorted(zip(jobs, results), key=lambda pair: pair[0].replica_start)
    iterations = [item for _, result in ordered for item in result.iterations]
    first = ordered[0][1]
    return SolveResult(
        graph=first.graph,
        num_colors=first.num_colors,
        iterations=iterations,
        metadata=dict(first.metadata),
    )
