"""Worker-process environment: thread caps, pre-imports, and the job entry point.

Every execution backend that runs jobs in a separate process — the local
process pool (:class:`~repro.runtime.executors.LocalPoolExecutorBackend`) and
the filesystem-spool fleet workers (:mod:`repro.runtime.spool`, ``msropm
fleet worker``) — prepares its workers the same way:

* cap the BLAS/OpenMP thread pools to one thread per worker process (the
  runtime's parallelism is process-level; letting every worker's GEMM spawn
  ``cpu_count`` threads oversubscribes the machine),
* pre-import the solver stack so module import latency is paid once, outside
  any job's critical path.

Centralizing that here keeps a fleet worker's per-job environment identical
to a pool worker's, which is one ingredient of the cross-topology bit-identity
invariant (the other being that jobs are pure functions of their seeds).
"""

from __future__ import annotations

import os
from typing import Dict

from repro.runtime.jobs import Job

#: Thread-pool environment caps applied to worker processes (and defaulted in
#: the parent before a pool forks/spawns, so the libraries that read them at
#: import time see them).  One BLAS/OpenMP thread per worker process.
WORKER_THREAD_CAPS: Dict[str, str] = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
    "NUMEXPR_NUM_THREADS": "1",
}


#: C-interface ``set_num_threads`` entry points of the math libraries
#: numpy/scipy may have loaded: plain and ILP64-suffixed OpenBLAS builds, the
#: scipy-openblas wheels, OpenMP runtimes, MKL.  Deliberately excludes the
#: Fortran-mangled variants (trailing ``_`` after the ILP64 suffix), which
#: take their argument by reference and crash when called by value.
_THREAD_SETTER_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "omp_set_num_threads",
    "MKL_Set_Num_Threads",
)

#: Basename prefixes of the runtime libraries worth probing.  The filter is
#: deliberately narrow: matching on substrings like ``omp`` would also catch
#: CPython extension modules (``_decomp_*.so``), which must not be re-opened
#: outside the import machinery.
_THREAD_LIBRARY_PREFIXES = (
    "libopenblas",
    "libscipy_openblas",
    "libblas",
    "libcblas",
    "libmkl_rt",
    "libgomp",
    "libiomp",
    "libomp",
)


def limit_math_threads(limit: int) -> bool:
    """Cap the thread pools of *already loaded* BLAS/OpenMP libraries.

    Environment variables only configure a math library at import time, so
    under the ``fork`` start method (the Linux default) a worker inherits the
    parent's fully initialized, ``cpu_count``-threaded OpenBLAS no matter what
    the initializer exports.  This applies the cap in-process instead: through
    ``threadpoolctl`` when it is installed, otherwise by calling the first
    recognized ``*_set_num_threads`` entry point of every BLAS/OpenMP runtime
    library the process has mapped (re-``dlopen``-ing a mapped library returns
    the live handle).  Returns whether any pool was actually capped
    (``False`` e.g. on non-Linux without threadpoolctl, where the environment
    route is the only one available).
    """
    try:
        from threadpoolctl import threadpool_limits

        threadpool_limits(limits=limit)
        return True
    except Exception:
        pass
    applied = False
    try:
        import ctypes

        paths = set()
        with open("/proc/self/maps", encoding="utf-8") as handle:
            for line in handle:
                tail = line.rsplit(None, 1)[-1]
                basename = tail.rsplit("/", 1)[-1].lower()
                if basename.startswith(_THREAD_LIBRARY_PREFIXES) and ".so" in basename:
                    paths.add(tail)
        for path in sorted(paths):
            try:
                library = ctypes.CDLL(path)
            except OSError:
                continue
            for symbol in _THREAD_SETTER_SYMBOLS:
                setter = getattr(library, symbol, None)
                if setter is None:
                    continue
                try:
                    setter.argtypes = [ctypes.c_int]
                    setter.restype = None
                    setter(ctypes.c_int(limit))
                    applied = True
                except Exception:
                    pass
                break  # one setter per library; the variants share one pool
    except Exception:
        return applied
    return applied


def _worker_init(thread_caps: Dict[str, str]) -> None:
    """Worker initializer: cap math-library threads and pre-import the solver.

    Runs once per worker process before any job.  The caps are applied twice
    over: via the environment (authoritative under ``spawn``/``forkserver``,
    where numpy is imported afterwards, and for any library not yet loaded)
    and via :func:`limit_math_threads` for the libraries a forked worker
    inherited already initialized.  Pre-importing the solver stack moves
    module import latency out of the first job's critical path.
    """
    os.environ.update(thread_caps)
    if thread_caps:
        limit = int(thread_caps.get("OMP_NUM_THREADS", "1"))
        limit_math_threads(limit)
    # Pre-import the heavy modules every job needs.
    import repro.analysis.results_io  # noqa: F401
    import repro.core.machine  # noqa: F401
    import repro.workloads.registry  # noqa: F401


def _execute_job(job: Job) -> Dict:
    """Worker entry point: run one job and return its persisted-form payload.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method; the dict payload keeps the parent<->worker wire format
    identical to the cache format for every job type.
    """
    return job.execute()
