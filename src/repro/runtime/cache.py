"""Content-addressed on-disk result cache for runtime jobs.

The evaluation grid is highly redundant across invocations: rerunning Table 1
after a code-free change, rendering Fig. 5 for the sizes Table 1 already
solved, or re-entering a sweep with an extended grid all repeat jobs that were
already computed.  The cache stores each job's results under its content hash
(:attr:`repro.runtime.jobs.SolveJob.job_hash`) so those repeats are disk reads
instead of simulations.

Layout: ``<root>/<hash[:2]>/<hash>.json`` — two-level sharding keeps
directories small on large sweeps.  Entries are JSON envelopes carrying the
cache schema version, the job description, and the solve results serialized
via :mod:`repro.analysis.results_io`.  *Any* failure to read an entry —
missing file, corrupt JSON, an envelope or results schema mismatch — is
treated as a miss and the entry is rewritten after recomputation, so format
evolution invalidates old entries cleanly instead of erroring.

Besides solve results the cache stores arbitrary small JSON *payloads* under
``<root>/<kind>/<hash[:2]>/<hash>.json`` (:meth:`ResultCache.load_payload` /
:meth:`ResultCache.store_payload`) with the same atomicity and
miss-on-any-failure semantics.  The workload zoo keeps its reference
solutions there (``kind="reference"``, keyed by the graph-spec content hash),
so exact backtracking colorability checks and max-cut reference cuts are
computed once per problem rather than once per scenario-matrix invocation.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.exceptions import ReproError
from repro.runtime.jobs import Job

#: Version of the cache envelope.  Bump on envelope layout changes; old
#: entries then read as misses and are recomputed.
#:
#: History: 1 — SolveJob-only entries.  2 — polymorphic job entries (the
#: envelope's ``job`` description carries ``job_kind``, and the payload is
#: whatever the job type serializes).
CACHE_SCHEMA_VERSION = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "MSROPM_CACHE_DIR"


def default_cache_dir() -> Path:
    """The default on-disk cache location (``$MSROPM_CACHE_DIR`` overrides)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "msropm"


class ResultCache:
    """Content-addressed store of job result payloads, one entry per job.

    Entries are keyed by :attr:`repro.runtime.jobs.Job.job_hash` and store the
    job's own serialized payload form (``job.encode``), so every job type —
    MSROPM solves, baseline runs — shares one store with uniform atomicity,
    invalidation and miss semantics.

    Parameters
    ----------
    root:
        Directory holding the cache (created on first store).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Misses where an entry *existed* on disk but was rejected — corrupt
        #: JSON, an envelope or results schema mismatch, failed validation.
        #: These are the entries a format bump (or a tier change folded into
        #: the job hash) silently invalidates; runners surface the count so
        #: users understand why a warm cache recomputed.
        self.stale_misses = 0
        self.stores = 0
        self.payload_hits = 0
        self.payload_misses = 0
        self.payload_stores = 0

    # ------------------------------------------------------------------
    def path_for(self, job_hash: str) -> Path:
        """The entry path for a job hash (two-level hash sharding)."""
        return self.root / job_hash[:2] / f"{job_hash}.json"

    def load(self, job: Job) -> Optional[Any]:
        """Return the cached, decoded result for ``job``, or ``None`` on miss.

        Unreadable and schema-mismatched entries count as misses by design:
        they will be overwritten by the recomputed result.  The job itself
        decodes and validates the stored payload, so a partial or foreign
        entry under our key (``job.validate`` fails) also reads as a miss.
        """
        if not job.cacheable:
            return None
        path = self.path_for(job.job_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            # No entry on disk: the ordinary cold miss.
            self.misses += 1
            return None
        try:
            envelope = json.loads(text)
            if (
                not isinstance(envelope, dict)
                or envelope.get("cache_schema") != CACHE_SCHEMA_VERSION
                or envelope.get("job_hash") != job.job_hash
            ):
                raise ReproError("cache envelope mismatch")
            result = job.decode(envelope["result"])
            if not job.validate(result):
                raise ReproError("cache entry fails job validation")
        except (OSError, ValueError, KeyError, TypeError, IndexError, ReproError):
            # An entry existed but could not be used: a *stale* miss.  It will
            # be overwritten by the recomputed result.
            self.misses += 1
            self.stale_misses += 1
            return None
        self.hits += 1
        return result

    def store(self, job: Job, result: Any) -> None:
        """Persist a decoded ``result`` for ``job`` (atomic write, last writer
        wins).  The job serializes its own payload via ``job.encode``."""
        if not job.cacheable:
            return
        envelope = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "job_hash": job.job_hash,
            "job": job.describe(),
            "result": job.encode(result),
        }
        self._write_atomic(self.path_for(job.job_hash), envelope)
        self.stores += 1

    # ------------------------------------------------------------------
    # Generic JSON payloads (reference solutions and similar derived data)
    # ------------------------------------------------------------------
    def payload_path(self, kind: str, key_hash: str) -> Path:
        """The entry path of a ``kind`` payload (own namespace, hash-sharded)."""
        return self.root / kind / key_hash[:2] / f"{key_hash}.json"

    def load_payload(self, kind: str, key_hash: str) -> Optional[Dict]:
        """Return the cached ``kind`` payload for ``key_hash``, or ``None``.

        Same semantics as :meth:`load`: any unreadable or schema-mismatched
        entry counts as a miss and is overwritten on the next store.
        """
        path = self.payload_path(kind, key_hash)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if (
                not isinstance(envelope, dict)
                or envelope.get("cache_schema") != CACHE_SCHEMA_VERSION
                or envelope.get("kind") != kind
                or envelope.get("key") != key_hash
                or not isinstance(envelope.get("payload"), dict)
            ):
                raise ReproError("payload envelope mismatch")
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            self.payload_misses += 1
            return None
        self.payload_hits += 1
        return envelope["payload"]

    def store_payload(self, kind: str, key_hash: str, payload: Dict) -> None:
        """Persist a ``kind`` payload under ``key_hash`` (atomic write)."""
        envelope = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "key": key_hash,
            "payload": payload,
        }
        self._write_atomic(self.payload_path(kind, key_hash), envelope)
        self.payload_stores += 1

    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, envelope: Dict) -> None:
        """Write-to-temp + rename so concurrent runners never observe a torn
        entry; os.replace is atomic within one filesystem."""
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False, encoding="utf-8"
        )
        try:
            with handle:
                json.dump(envelope, handle)
            os.replace(handle.name, path)
        except OSError:
            Path(handle.name).unlink(missing_ok=True)
            raise
