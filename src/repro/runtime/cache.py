"""Content-addressed artifact store for runtime job results.

The evaluation grid is highly redundant across invocations: rerunning Table 1
after a code-free change, rendering Fig. 5 for the sizes Table 1 already
solved, or re-entering a sweep with an extended grid all repeat jobs that were
already computed.  The cache stores each job's results under its content hash
(:attr:`repro.runtime.jobs.SolveJob.job_hash`) so those repeats are disk reads
instead of simulations.

Layout: ``<root>/<hash[:2]>/<hash>.json`` — two-level sharding keeps
directories small on large sweeps.  Entries are JSON envelopes carrying the
cache schema version, the job description, an **integrity hash** (SHA-256 of
the canonical payload JSON) and the results serialized via
:mod:`repro.analysis.results_io`.  *Any* failure to read an entry — missing
file, corrupt JSON, an envelope/results schema mismatch, an integrity
mismatch — is treated as a miss and the entry is rewritten after
recomputation, so format evolution and on-disk corruption both invalidate
entries cleanly instead of erroring.

Beyond load/store, the store is a first-class *artifact store* for fleet
execution:

* :meth:`ResultCache.stats` / :meth:`ResultCache.verify` /
  :meth:`ResultCache.gc` — inventory, an integrity sweep that reports (and
  optionally prunes) corrupt entries, and garbage collection of
  schema-stale/corrupt/unreferenced entries (``msropm cache stats|verify|gc``).
* :meth:`ResultCache.export_bundle` / :meth:`ResultCache.import_bundle` —
  portable tar bundles (envelopes + manifest) so fleet members merge caches:
  a worker exports what it computed, any other host imports it, and every
  imported envelope is integrity-verified before installation.

Besides job results the store keeps arbitrary small JSON *payloads* under
``<root>/<kind>/<hash[:2]>/<hash>.json`` (:meth:`ResultCache.load_payload` /
:meth:`ResultCache.store_payload`) with the same atomicity, integrity and
miss-on-any-failure semantics.  The workload zoo keeps its reference
solutions there (``kind="reference"``, keyed by the graph-spec content hash).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import tarfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Union

from repro.exceptions import ReproError
from repro.obs.metrics import get_metrics
from repro.runtime.atomic import atomic_output, write_atomic_json
from repro.runtime.jobs import Job, canonical_json

#: Version of the cache envelope.  Bump on envelope layout changes; old
#: entries then read as misses and are recomputed.
#:
#: History: 1 — SolveJob-only entries.  2 — polymorphic job entries (the
#: envelope's ``job`` description carries ``job_kind``, and the payload is
#: whatever the job type serializes).  3 — artifact-store envelopes: every
#: entry carries an ``integrity`` SHA-256 of its canonical payload JSON, so
#: corruption is detected on load, verified by ``msropm cache verify``, and
#: checked again when importing bundles from other hosts.
CACHE_SCHEMA_VERSION = 3

#: Version of the export-bundle manifest layout.
BUNDLE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "MSROPM_CACHE_DIR"

#: Two lowercase hex characters: the shard directories of job entries.
_SHARD_RE = re.compile(r"^[0-9a-f]{2}$")

#: A full SHA-256 hex digest: the stem of every entry file.
_HASH_RE = re.compile(r"^[0-9a-f]{64}$")


def default_cache_dir() -> Path:
    """The default on-disk cache location (``$MSROPM_CACHE_DIR`` overrides)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "msropm"


def integrity_hash(payload: Any) -> str:
    """SHA-256 of a payload's canonical JSON form (the envelope checksum)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntryInfo:
    """One scanned entry: where it lives, what it is, and whether it is sound.

    ``status`` is one of ``ok`` (schema-current, integrity verified),
    ``stale`` (readable but written under an older schema — a format bump
    already invalidates these as misses) or ``corrupt`` (unreadable JSON,
    a key/filename mismatch, or an integrity-hash mismatch).
    """

    path: Path
    kind: str  # "result" for job entries, else the payload namespace
    key: str  # the content hash the entry claims to store
    size: int
    status: str
    detail: str = ""


class ResultCache:
    """Content-addressed artifact store of job result payloads.

    Entries are keyed by :attr:`repro.runtime.jobs.Job.job_hash` and store the
    job's own serialized payload form (``job.encode``), so every job type —
    MSROPM solves, baseline runs — shares one store with uniform atomicity,
    integrity, invalidation and miss semantics.

    Parameters
    ----------
    root:
        Directory holding the cache (created on first store).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Misses where an entry *existed* on disk but was rejected — corrupt
        #: JSON, an envelope or results schema mismatch, a failed integrity
        #: check, failed validation.  These are the entries a format bump (or
        #: a tier change folded into the job hash) silently invalidates;
        #: runners surface the count so users understand why a warm cache
        #: recomputed.
        self.stale_misses = 0
        self.stores = 0
        self.payload_hits = 0
        self.payload_misses = 0
        self.payload_stores = 0

    # ------------------------------------------------------------------
    def path_for(self, job_hash: str) -> Path:
        """The entry path for a job hash (two-level hash sharding)."""
        return self.root / job_hash[:2] / f"{job_hash}.json"

    def load(self, job: Job) -> Optional[Any]:
        """Return the cached, decoded result for ``job``, or ``None`` on miss.

        Unreadable, schema-mismatched and integrity-failed entries count as
        misses by design: they will be overwritten by the recomputed result.
        The job itself decodes and validates the stored payload, so a partial
        or foreign entry under our key (``job.validate`` fails) also reads as
        a miss.
        """
        if not job.cacheable:
            return None
        path = self.path_for(job.job_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            # No entry on disk: the ordinary cold miss.
            self.misses += 1
            get_metrics().inc("cache.misses")
            return None
        try:
            envelope = json.loads(text)
            if (
                not isinstance(envelope, dict)
                or envelope.get("cache_schema") != CACHE_SCHEMA_VERSION
                or envelope.get("job_hash") != job.job_hash
                or envelope.get("integrity") != integrity_hash(envelope.get("result"))
            ):
                raise ReproError("cache envelope mismatch")
            result = job.decode(envelope["result"])
            if not job.validate(result):
                raise ReproError("cache entry fails job validation")
        except (OSError, ValueError, KeyError, TypeError, IndexError, ReproError):
            # An entry existed but could not be used: a *stale* miss.  It will
            # be overwritten by the recomputed result.
            self.misses += 1
            self.stale_misses += 1
            metrics = get_metrics()
            metrics.inc("cache.misses")
            metrics.inc("cache.stale_misses")
            return None
        self.hits += 1
        get_metrics().inc("cache.hits")
        return result

    def load_envelope(self, job_hash: str) -> Optional[Dict]:
        """Return the raw, integrity-verified envelope stored under a hash.

        This is the fetch path for callers that hold only a content hash and
        no :class:`~repro.runtime.jobs.Job` object — a restarted service
        answering a fetch for a ticket issued by a previous process.  The
        envelope's ``result`` member is the job's persisted payload form,
        exactly what the job stored.  Hit/miss counters are *not* touched:
        this is an artifact read, not an execution-path cache probe.
        """
        if not _HASH_RE.match(job_hash):
            return None
        path = self.path_for(job_hash)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if (
                not isinstance(envelope, dict)
                or envelope.get("cache_schema") != CACHE_SCHEMA_VERSION
                or envelope.get("job_hash") != job_hash
                or envelope.get("integrity") != integrity_hash(envelope.get("result"))
            ):
                return None
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return envelope

    def store(self, job: Job, result: Any) -> None:
        """Persist a decoded ``result`` for ``job`` (atomic write, last writer
        wins).  The job serializes its own payload via ``job.encode``."""
        if not job.cacheable:
            return
        payload = job.encode(result)
        envelope = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "job_hash": job.job_hash,
            "job": job.describe(),
            "integrity": integrity_hash(payload),
            "result": payload,
        }
        self._write_atomic(self.path_for(job.job_hash), envelope)
        self.stores += 1
        get_metrics().inc("cache.stores")

    # ------------------------------------------------------------------
    # Generic JSON payloads (reference solutions and similar derived data)
    # ------------------------------------------------------------------
    def payload_path(self, kind: str, key_hash: str) -> Path:
        """The entry path of a ``kind`` payload (own namespace, hash-sharded)."""
        return self.root / kind / key_hash[:2] / f"{key_hash}.json"

    def load_payload(self, kind: str, key_hash: str) -> Optional[Dict]:
        """Return the cached ``kind`` payload for ``key_hash``, or ``None``.

        Same semantics as :meth:`load`: any unreadable, schema-mismatched or
        integrity-failed entry counts as a miss and is overwritten on the
        next store.
        """
        path = self.payload_path(kind, key_hash)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if (
                not isinstance(envelope, dict)
                or envelope.get("cache_schema") != CACHE_SCHEMA_VERSION
                or envelope.get("kind") != kind
                or envelope.get("key") != key_hash
                or not isinstance(envelope.get("payload"), dict)
                or envelope.get("integrity") != integrity_hash(envelope.get("payload"))
            ):
                raise ReproError("payload envelope mismatch")
        except (OSError, ValueError, KeyError, TypeError, ReproError):
            self.payload_misses += 1
            return None
        self.payload_hits += 1
        return envelope["payload"]

    def store_payload(self, kind: str, key_hash: str, payload: Dict) -> None:
        """Persist a ``kind`` payload under ``key_hash`` (atomic write)."""
        envelope = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "kind": kind,
            "key": key_hash,
            "integrity": integrity_hash(payload),
            "payload": payload,
        }
        self._write_atomic(self.payload_path(kind, key_hash), envelope)
        self.payload_stores += 1

    # ------------------------------------------------------------------
    # Artifact-store maintenance: scan, stats, verify, gc
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[CacheEntryInfo]:
        """Classify every entry file under the root (job results + payloads).

        Non-entry files (campaign ledgers, spool state, stray temp files) are
        skipped: only ``<2-hex>/<64-hex>.json`` job entries and
        ``<kind>/<2-hex>/<64-hex>.json`` payload entries are the store's.
        """
        if not self.root.is_dir():
            return
        for top in sorted(self.root.iterdir()):
            if not top.is_dir():
                continue
            if _SHARD_RE.match(top.name):
                yield from self._scan_shard(top, kind="result")
            else:
                for shard in sorted(top.iterdir()):
                    if shard.is_dir() and _SHARD_RE.match(shard.name):
                        yield from self._scan_shard(shard, kind=top.name)

    def _scan_shard(self, shard: Path, kind: str) -> Iterator[CacheEntryInfo]:
        for path in sorted(shard.glob("*.json")):
            if not _HASH_RE.match(path.stem) or path.stem[:2] != shard.name:
                continue
            yield self._inspect(path, kind)

    def _inspect(self, path: Path, kind: str) -> CacheEntryInfo:
        """Classify one entry file (the verify sweep's unit of work)."""
        key = path.stem
        try:
            size = path.stat().st_size
        except OSError:
            size = 0
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(envelope, dict):
                raise ValueError("envelope is not an object")
        except (OSError, ValueError):
            return CacheEntryInfo(path, kind, key, size, "corrupt", "unreadable JSON")
        schema = envelope.get("cache_schema")
        if kind == "result":
            claimed, body = envelope.get("job_hash"), envelope.get("result")
        else:
            claimed, body = envelope.get("key"), envelope.get("payload")
            if envelope.get("kind") != kind:
                return CacheEntryInfo(
                    path, kind, key, size, "corrupt", "payload kind mismatch"
                )
        if claimed != key:
            return CacheEntryInfo(path, kind, key, size, "corrupt", "key/filename mismatch")
        if not isinstance(schema, int) or schema > CACHE_SCHEMA_VERSION:
            return CacheEntryInfo(path, kind, key, size, "corrupt", "unknown schema")
        if schema < CACHE_SCHEMA_VERSION:
            return CacheEntryInfo(path, kind, key, size, "stale", f"schema {schema}")
        if envelope.get("integrity") != integrity_hash(body):
            return CacheEntryInfo(path, kind, key, size, "corrupt", "integrity mismatch")
        return CacheEntryInfo(path, kind, key, size, "ok")

    def stats(self) -> Dict[str, Any]:
        """Inventory: entry counts and bytes, total and per namespace."""
        by_kind: Dict[str, Dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        for info in self.scan():
            bucket = by_kind.setdefault(info.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += info.size
            total_entries += 1
            total_bytes += info.size
        return {
            "root": str(self.root),
            "cache_schema": CACHE_SCHEMA_VERSION,
            "entries": total_entries,
            "bytes": total_bytes,
            "kinds": by_kind,
        }

    def verify(self, prune: bool = False) -> Dict[str, Any]:
        """Integrity sweep: re-hash every envelope and report the unsound ones.

        Returns counters plus the paths of corrupt entries; with ``prune``
        the corrupt entries are deleted (stale ones are left for :meth:`gc` —
        they are already treated as misses and may still be wanted for
        forensics).
        """
        ok = stale = corrupt = pruned = 0
        corrupt_entries: List[Dict[str, str]] = []
        for info in self.scan():
            if info.status == "ok":
                ok += 1
            elif info.status == "stale":
                stale += 1
            else:
                corrupt += 1
                corrupt_entries.append(
                    {"path": str(info.path), "kind": info.kind, "detail": info.detail}
                )
                if prune:
                    info.path.unlink(missing_ok=True)
                    pruned += 1
        return {
            "ok": ok,
            "stale": stale,
            "corrupt": corrupt,
            "pruned": pruned,
            "corrupt_entries": corrupt_entries,
        }

    def gc(self, referenced: Optional[Iterable[str]] = None) -> Dict[str, int]:
        """Sweep unusable entries; optionally also everything unreferenced.

        Always removes schema-stale and corrupt entries (both already read as
        misses, so this only reclaims disk).  When ``referenced`` is given —
        e.g. the union of job hashes recorded by campaign ledgers — sound
        *job* entries whose hash is not in the set are removed too; payload
        namespaces (reference solutions) are never GC'd by reference, as
        nothing records references to them.  Emptied shard directories are
        pruned best-effort.
        """
        keep: Optional[Set[str]] = None if referenced is None else set(referenced)
        removed = {"stale": 0, "corrupt": 0, "unreferenced": 0, "kept": 0}
        for info in self.scan():
            if info.status == "stale":
                info.path.unlink(missing_ok=True)
                removed["stale"] += 1
            elif info.status == "corrupt":
                info.path.unlink(missing_ok=True)
                removed["corrupt"] += 1
            elif keep is not None and info.kind == "result" and info.key not in keep:
                info.path.unlink(missing_ok=True)
                removed["unreferenced"] += 1
            else:
                removed["kept"] += 1
        self._prune_empty_shards()
        return removed

    def _prune_empty_shards(self) -> None:
        """Drop emptied hash-shard directories (cosmetic, best-effort).

        Only directories matching the store's own layout are touched —
        foreign residents of the cache root (campaign ledgers, a job spool)
        are never candidates.
        """
        if not self.root.is_dir():
            return
        for top in list(self.root.iterdir()):
            if not top.is_dir():
                continue
            store_owned = bool(_SHARD_RE.match(top.name))
            if not store_owned:
                for shard in list(top.iterdir()):
                    if shard.is_dir() and _SHARD_RE.match(shard.name):
                        store_owned = True
                        try:
                            shard.rmdir()
                        except OSError:
                            pass
            if store_owned:
                try:
                    top.rmdir()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Bundles: export/import so fleet members merge caches
    # ------------------------------------------------------------------
    def export_bundle(
        self,
        bundle_path: Union[str, Path],
        job_hashes: Optional[Iterable[str]] = None,
        include_payloads: bool = True,
    ) -> Dict[str, Any]:
        """Write a portable result bundle (gzipped tar of envelopes + manifest).

        Only ``ok`` entries are exported — the bundle is a transport of
        *verified* artifacts, so stale and corrupt entries are skipped and
        counted.  ``job_hashes`` restricts the export to a subset (e.g. one
        campaign's jobs); payload namespaces ride along unless disabled.
        Returns the manifest.
        """
        wanted: Optional[Set[str]] = None if job_hashes is None else set(job_hashes)
        manifest: Dict[str, Any] = {
            "bundle_schema": BUNDLE_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "entries": [],
            "payloads": [],
            "skipped_unsound": 0,
        }
        bundle_path = Path(bundle_path)
        # The bundle is published atomically: an interrupted export leaves the
        # previous bundle (or nothing) in place, never a truncated tarball.
        with atomic_output(bundle_path) as temp_path:
            # repro-lint: disable=atomic-write -- the tar is written to
            # atomic_output's temp path and published by its rename.
            with tarfile.open(temp_path, "w:gz") as tar:
                for info in self.scan():
                    if info.kind == "result":
                        if wanted is not None and info.key not in wanted:
                            continue
                    elif not include_payloads:
                        continue
                    if info.status != "ok":
                        manifest["skipped_unsound"] += 1
                        continue
                    if info.kind == "result":
                        member = f"entries/{info.key[:2]}/{info.key}.json"
                        manifest["entries"].append(info.key)
                    else:
                        member = f"payloads/{info.kind}/{info.key[:2]}/{info.key}.json"
                        manifest["payloads"].append({"kind": info.kind, "key": info.key})
                    tar.add(info.path, arcname=member)
                manifest_bytes = json.dumps(manifest, indent=2).encode("utf-8")
                member_info = tarfile.TarInfo("manifest.json")
                member_info.size = len(manifest_bytes)
                tar.addfile(member_info, io.BytesIO(manifest_bytes))
        return manifest

    def import_bundle(self, bundle_path: Union[str, Path]) -> Dict[str, int]:
        """Merge a bundle exported elsewhere into this store.

        Every member is parsed and integrity-verified *before* installation —
        a tampered or truncated bundle contributes nothing — and installation
        paths are derived from the verified envelope contents, never from
        archive member names, so a malicious bundle cannot traverse outside
        the store.  Existing entries are kept (results are content-addressed;
        identical keys hold identical payloads).  Returns counters.
        """
        counters = {"imported": 0, "existing": 0, "rejected": 0}
        with tarfile.open(bundle_path, "r:*") as tar:
            for member in tar:
                if not member.isfile() or member.name == "manifest.json":
                    continue
                handle = tar.extractfile(member)
                if handle is None:
                    counters["rejected"] += 1
                    continue
                try:
                    envelope = json.loads(handle.read().decode("utf-8"))
                    if not isinstance(envelope, dict):
                        raise ValueError("not an object")
                except (OSError, ValueError):
                    counters["rejected"] += 1
                    continue
                target = self._install_target(envelope)
                if target is None:
                    counters["rejected"] += 1
                    continue
                if target.exists():
                    counters["existing"] += 1
                    continue
                self._write_atomic(target, envelope)
                counters["imported"] += 1
        return counters

    def _install_target(self, envelope: Dict) -> Optional[Path]:
        """Verified install path for an imported envelope (``None`` = reject)."""
        if envelope.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None
        if "job_hash" in envelope:
            key = envelope.get("job_hash")
            if (
                not isinstance(key, str)
                or not _HASH_RE.match(key)
                or envelope.get("integrity") != integrity_hash(envelope.get("result"))
            ):
                return None
            return self.path_for(key)
        kind, key = envelope.get("kind"), envelope.get("key")
        if (
            not isinstance(kind, str)
            or not isinstance(key, str)
            or not _HASH_RE.match(key)
            or _SHARD_RE.match(kind)  # a payload kind must not shadow a shard
            or not re.match(r"^[A-Za-z0-9_.-]+$", kind)
            or kind in (".", "..")
            or envelope.get("integrity") != integrity_hash(envelope.get("payload"))
        ):
            return None
        return self.payload_path(kind, key)

    # ------------------------------------------------------------------
    def _write_atomic(self, path: Path, envelope: Dict) -> None:
        """Write-to-temp + rename so concurrent runners never observe a torn
        entry; os.replace is atomic within one filesystem."""
        write_atomic_json(path, envelope)
