"""Parallel experiment runtime: jobs, scheduling, caching, and the runner facade.

This package is the execution layer between the experiments and the solver
core.  Experiments declare *what* to solve (:class:`SolveRequest` /
:class:`SolveJob`); the runtime decides *how*: sharding jobs across worker
processes (:class:`JobScheduler`), skipping jobs whose results are already in
the content-addressed on-disk cache (:class:`ResultCache`), and merging
replica-chunked solves back deterministically.  :class:`ExperimentRunner`
is the facade all of `repro.experiments`, `repro.analysis.sweep` and the CLI
route through.
"""

from repro.runtime.cache import (
    BUNDLE_SCHEMA_VERSION,
    CACHE_SCHEMA_VERSION,
    CacheEntryInfo,
    ResultCache,
    default_cache_dir,
    integrity_hash,
)
from repro.runtime.executors import (
    EXECUTOR_NAMES,
    ExecutorBackend,
    LocalPoolExecutorBackend,
    SpoolExecutorBackend,
    make_backend,
)
from repro.runtime.jobs import (
    JOB_SCHEMA_VERSION,
    DimacsGraphSpec,
    ExplicitGraphSpec,
    GeneratedGraphSpec,
    GraphSpec,
    Job,
    KingsGraphSpec,
    SolveJob,
    as_graph_spec,
    merge_job_results,
)
from repro.runtime.baselines import BASELINE_NAMES, BaselineJob, cut_ratio, run_baseline
from repro.runtime.runner import ExperimentRunner, SolveRequest
from repro.runtime.scheduler import JobScheduler
from repro.runtime.spool import (
    SPOOL_SCHEMA_VERSION,
    JobFailedError,
    JobSpool,
    SpoolError,
    SpoolWorker,
    run_fleet_worker,
)

__all__ = [
    "BASELINE_NAMES",
    "BUNDLE_SCHEMA_VERSION",
    "CACHE_SCHEMA_VERSION",
    "EXECUTOR_NAMES",
    "JOB_SCHEMA_VERSION",
    "SPOOL_SCHEMA_VERSION",
    "BaselineJob",
    "CacheEntryInfo",
    "DimacsGraphSpec",
    "ExecutorBackend",
    "ExplicitGraphSpec",
    "GeneratedGraphSpec",
    "GraphSpec",
    "Job",
    "JobFailedError",
    "JobSpool",
    "KingsGraphSpec",
    "LocalPoolExecutorBackend",
    "SolveJob",
    "SolveRequest",
    "SpoolError",
    "SpoolExecutorBackend",
    "SpoolWorker",
    "ExperimentRunner",
    "JobScheduler",
    "ResultCache",
    "as_graph_spec",
    "cut_ratio",
    "default_cache_dir",
    "integrity_hash",
    "make_backend",
    "merge_job_results",
    "run_baseline",
    "run_fleet_worker",
]
