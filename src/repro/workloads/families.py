"""Built-in workload families: the zoo's King's boards, random-graph
ensembles, bundled DIMACS benchmarks and max-cut scenarios.

Each family maps a small, CI-sized default parameter grid to content-addressed
runtime specs:

* ``kings`` — the paper's benchmark topology (deterministic, by board shape);
* ``er`` — Erdős–Rényi ``G(n, p)`` ensembles (seeded recipes);
* ``regular`` — random regular-like graphs (seeded recipes);
* ``planar`` — random Delaunay triangulations, 4-colorable by the four-colour
  theorem (seeded recipes);
* ``dimacs`` — bundled ``.col`` instances under ``workloads/data/``
  (deterministic, by file content hash);
* ``maxcut`` — max-cut scenarios on King's boards, solved with 2 colors and
  normalized against the reference striping cut;
* ``wmaxcut`` — *weighted* max-cut ensembles on King's boards: per-edge
  integer weights drawn from the instance seed (cross-process stable, folded
  into the recipe hash), normalized against the total-weight upper bound;
* ``kcolor8`` / ``kcolor16`` — dense random ensembles solved with 8 and 16
  colors, exercising multi-stage depths 3 and 4 (the paper stops at 2).

Reference solutions are computed per instance: closed-form for King's boards,
known chromatic numbers for the bundled DIMACS instances, the four-colour
theorem for planar triangulations, and an exact backtracking search for small
random instances (falling back to "unknown" when the search budget is hit).

The grids are deliberately small — they are what ``msropm scenarios`` and the
CI smoke job run; larger sweeps pass their own :class:`WorkloadSpec` grids.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ColoringError
from repro.graphs.generators import (
    erdos_renyi_graph,
    random_planar_triangulation,
    random_regular_like_graph,
)
from repro.graphs.graph import Graph
from repro.ising.maxcut import kings_graph_reference_cut
from repro.rng import make_rng
from repro.runtime.jobs import DimacsGraphSpec, GeneratedGraphSpec, KingsGraphSpec
from repro.workloads.registry import (
    ReferenceSolution,
    WorkloadFamily,
    WorkloadInstance,
    register_family,
)

#: Directory of the bundled DIMACS benchmark instances.
DATA_DIR = Path(__file__).resolve().parent / "data"

#: Chromatic numbers of the bundled instances (Mycielski and queens graphs).
BUNDLED_DIMACS_CHROMATIC = {
    "myciel3": 4,
    "myciel4": 5,
    "myciel5": 6,
    "queen5_5": 5,
    "queen6_6": 7,
    "queen7_7": 7,
    "queen8_8": 9,
}

#: Largest random instance the exact backtracking reference is attempted on.
_BACKTRACK_REFERENCE_NODES = 64


def bundled_dimacs_path(instance: str) -> Path:
    """Path of a bundled ``.col`` instance by stem name."""
    return DATA_DIR / f"{instance}.col"


# ----------------------------------------------------------------------
# Reference providers
# ----------------------------------------------------------------------
def _backtracking_reference(instance: WorkloadInstance, graph: Graph) -> ReferenceSolution:
    """Exact 4-colorability by backtracking, for small random instances."""
    if graph.num_nodes > _BACKTRACK_REFERENCE_NODES:
        return ReferenceSolution(kind=instance.kind, num_colors=instance.num_colors)
    try:
        from repro.baselines.exact import exact_coloring_backtracking

        coloring = exact_coloring_backtracking(graph, instance.num_colors)
    except ColoringError:  # search budget exceeded
        return ReferenceSolution(kind=instance.kind, num_colors=instance.num_colors)
    return ReferenceSolution(
        kind=instance.kind,
        num_colors=instance.num_colors,
        colorable=coloring is not None,
        provider="backtracking",
    )


def _kings_reference(instance: WorkloadInstance, graph: Graph) -> ReferenceSolution:
    # reference_cut is deliberately absent: it belongs to max-cut workloads
    # only, and the closed-form 4-coloring is this family's reference.
    return ReferenceSolution(
        kind="coloring",
        num_colors=4,
        colorable=True,
        provider="closed-form",
    )


def _planar_reference(instance: WorkloadInstance, graph: Graph) -> ReferenceSolution:
    return ReferenceSolution(
        kind="coloring", num_colors=4, colorable=True, provider="four-colour-theorem"
    )


def _dimacs_reference(instance: WorkloadInstance, graph: Graph) -> ReferenceSolution:
    chromatic = BUNDLED_DIMACS_CHROMATIC.get(str(instance.params_dict["instance"]))
    if chromatic is None:
        return ReferenceSolution(kind="coloring", num_colors=instance.num_colors)
    return ReferenceSolution(
        kind="coloring",
        num_colors=instance.num_colors,
        colorable=chromatic <= instance.num_colors,
        provider="known",
    )


def wmaxcut_edge_weights(
    params: Dict[str, Any], seed: Optional[int], graph: Graph
) -> Dict[Tuple, float]:
    """Per-edge weights of a weighted-max-cut instance, derived from its seed.

    Weights are small integers drawn from a PCG64 stream seeded with the
    instance seed, assigned in canonically sorted edge order — both choices
    for cross-process stability: the same recipe always weighs the same edge
    identically, independent of build order, platform, or Python hash
    randomization.  Integer weights also keep cut sums exact, so weighted
    accuracies never depend on floating-point summation order.
    """
    rng = make_rng(seed)
    return {
        (u, v): float(rng.integers(1, 10)) for u, v in sorted(graph.edges())
    }


def _wmaxcut_reference(instance: WorkloadInstance, graph: Graph) -> ReferenceSolution:
    # The total edge weight is an upper bound on any cut (tight only on
    # bipartite graphs); weighted accuracies therefore never exceed 1.0.
    weights = instance.edge_weights(graph)
    return ReferenceSolution(
        kind="maxcut",
        num_colors=2,
        reference_cut=float(sum(weights.values())),
        provider="upper-bound",
    )


def _maxcut_reference(instance: WorkloadInstance, graph: Graph) -> ReferenceSolution:
    # The striping cut is a *heuristic* reference (the canonical 4-coloring's
    # high bit): solvers can beat it, which is exactly why accuracies are
    # reported as raw ratios and only clipped at presentation time.
    rows = int(instance.params_dict["rows"])
    return ReferenceSolution(
        kind="maxcut",
        num_colors=2,
        reference_cut=float(kings_graph_reference_cut(rows, rows)),
        provider="reference-striping",
    )


# ----------------------------------------------------------------------
# Generated-family builders (GeneratedGraphSpec dispatches back here)
# ----------------------------------------------------------------------
def _build_er(params: Dict[str, Any], seed: Optional[int]) -> Graph:
    return erdos_renyi_graph(int(params["n"]), float(params["p"]), seed=seed)


def _build_regular(params: Dict[str, Any], seed: Optional[int]) -> Graph:
    return random_regular_like_graph(int(params["n"]), int(params["d"]), seed=seed)


def _build_planar(params: Dict[str, Any], seed: Optional[int]) -> Graph:
    return random_planar_triangulation(int(params["n"]), seed=seed)


def _build_wmaxcut(params: Dict[str, Any], seed: Optional[int]) -> Graph:
    # The topology is the deterministic King's board; the instance seed only
    # feeds the weight draw (wmaxcut_edge_weights), so it rides in the recipe
    # hash without perturbing the graph itself.
    rows = int(params["rows"])
    from repro.graphs.generators import kings_graph

    return kings_graph(rows, rows)


def _generated_spec(family: str):
    def factory(params: Dict[str, Any], seed: Optional[int]) -> GeneratedGraphSpec:
        return GeneratedGraphSpec.create(family, seed=seed, **params)

    return factory


def _kings_spec(params: Dict[str, Any], seed: Optional[int]) -> KingsGraphSpec:
    rows = int(params["rows"])
    return KingsGraphSpec(rows, rows)


def _dimacs_spec(params: Dict[str, Any], seed: Optional[int]) -> DimacsGraphSpec:
    return DimacsGraphSpec(str(bundled_dimacs_path(str(params["instance"]))))


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------
register_family(
    WorkloadFamily(
        name="kings",
        description="King's-graph 4-coloring boards (the paper's benchmark topology)",
        kind="coloring",
        seeded=False,
        default_grid=({"rows": 5}, {"rows": 7}),
        spec_factory=_kings_spec,
        reference_provider=_kings_reference,
    )
)

register_family(
    WorkloadFamily(
        name="er",
        description="Erdős–Rényi G(n, p) random-graph ensemble, 4-coloring",
        kind="coloring",
        seeded=True,
        default_grid=({"n": 24, "p": 0.15}, {"n": 24, "p": 0.3}),
        spec_factory=_generated_spec("er"),
        reference_provider=_backtracking_reference,
        builder=_build_er,
    )
)

register_family(
    WorkloadFamily(
        name="regular",
        description="random regular-like graph ensemble (configuration model), 4-coloring",
        kind="coloring",
        seeded=True,
        default_grid=({"n": 24, "d": 4}, {"n": 24, "d": 6}),
        spec_factory=_generated_spec("regular"),
        reference_provider=_backtracking_reference,
        builder=_build_regular,
    )
)

register_family(
    WorkloadFamily(
        name="planar",
        description="random planar Delaunay triangulations (4-colorable by the four-colour theorem)",
        kind="coloring",
        seeded=True,
        default_grid=({"n": 24},),
        spec_factory=_generated_spec("planar"),
        reference_provider=_planar_reference,
        builder=_build_planar,
    )
)

register_family(
    WorkloadFamily(
        name="dimacs",
        description="bundled DIMACS .col benchmark instances (Mycielski graphs)",
        kind="coloring",
        seeded=False,
        default_grid=(
            {"instance": "myciel3"},
            {"instance": "myciel4"},
            {"instance": "myciel5"},
        ),
        spec_factory=_dimacs_spec,
        reference_provider=_dimacs_reference,
    )
)

register_family(
    WorkloadFamily(
        name="queens",
        description="bundled DIMACS queens graphs (row/column/diagonal cliques), 8 colors",
        kind="coloring",
        seeded=False,
        default_grid=(
            {"instance": "queen5_5"},
            {"instance": "queen6_6"},
            {"instance": "queen7_7"},
            {"instance": "queen8_8"},
        ),
        spec_factory=_dimacs_spec,
        reference_provider=_dimacs_reference,
        num_colors=8,
    )
)

register_family(
    WorkloadFamily(
        name="maxcut",
        description="max-cut scenarios on King's boards (2 colors vs the striping reference cut)",
        kind="maxcut",
        seeded=False,
        default_grid=({"rows": 5}, {"rows": 6}),
        spec_factory=_kings_spec,
        reference_provider=_maxcut_reference,
        num_colors=2,
    )
)

register_family(
    WorkloadFamily(
        name="wmaxcut",
        description="weighted max-cut ensembles on King's boards (seeded integer edge weights)",
        kind="maxcut",
        seeded=True,
        default_grid=({"rows": 5}, {"rows": 6}),
        spec_factory=_generated_spec("wmaxcut"),
        reference_provider=_wmaxcut_reference,
        builder=_build_wmaxcut,
        num_colors=2,
        weights_provider=wmaxcut_edge_weights,
    )
)

register_family(
    WorkloadFamily(
        name="kcolor8",
        description="dense Erdős–Rényi ensembles solved with 8 colors (3 binary stages)",
        kind="coloring",
        seeded=True,
        default_grid=({"n": 18, "p": 0.45},),
        spec_factory=_generated_spec("kcolor8"),
        reference_provider=_backtracking_reference,
        builder=_build_er,
        num_colors=8,
    )
)

register_family(
    WorkloadFamily(
        name="kcolor16",
        description="dense Erdős–Rényi ensembles solved with 16 colors (4 binary stages)",
        kind="coloring",
        seeded=True,
        default_grid=({"n": 16, "p": 0.6},),
        spec_factory=_generated_spec("kcolor16"),
        reference_provider=_backtracking_reference,
        builder=_build_er,
        num_colors=16,
    )
)
