"""Workload zoo: declarative problem registry for the experiment runtime.

``repro.workloads`` unifies every problem source the repository knows —
King's boards, random-graph ensembles, bundled DIMACS benchmarks, max-cut
scenarios — behind one registry of :class:`WorkloadFamily` entries, each
expanding to content-addressed :class:`repro.runtime.jobs.GraphSpec` values
the runtime schedules and caches by.  ``msropm workloads list/show`` inspects
the zoo; ``msropm scenarios`` and
:func:`repro.experiments.scenario_matrix.run_scenario_matrix` run it.
"""

from repro.workloads.registry import (
    ReferenceSolution,
    WorkloadFamily,
    WorkloadInstance,
    WorkloadSpec,
    default_workload,
    derive_instance_seed,
    expand_workloads,
    family_names,
    get_family,
    iter_families,
    register_family,
)

__all__ = [
    "ReferenceSolution",
    "WorkloadFamily",
    "WorkloadInstance",
    "WorkloadSpec",
    "default_workload",
    "derive_instance_seed",
    "expand_workloads",
    "family_names",
    "get_family",
    "iter_families",
    "register_family",
]
