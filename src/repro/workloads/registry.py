"""Workload zoo: a declarative registry of benchmark problem families.

The paper evaluates the MSROPM only on King's graphs; the zoo is what turns
the runtime built in earlier iterations into *breadth* of evaluation.  A
:class:`WorkloadFamily` packages one problem family — how to build an
instance, which parameter grid to default to, how instance seeds derive from
a base seed, and where reference solutions come from.  A
:class:`WorkloadSpec` is one declarative instantiation of a family (family
name + parameter grid + seed policy) and expands to concrete
:class:`WorkloadInstance` values, each carrying the content-addressed
:class:`repro.runtime.jobs.GraphSpec` the experiment runtime schedules and
caches by.

Content addressing is the design center: a generated ensemble member is
identified by its *recipe* (family + parameters + seed, via
:class:`repro.runtime.jobs.GeneratedGraphSpec`), never by the materialized
adjacency, so cache keys are bit-stable across processes and invocations.
Deterministic families (King's boards, bundled DIMACS instances) use the
runtime's existing shape/file-hash specs.

Built-in families live in :mod:`repro.workloads.families` and are registered
lazily on first lookup, so importing the runtime never drags in generators.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.graphs.graph import Graph
from repro.runtime.jobs import GraphSpec, _sha256_text, canonical_json

#: Problem kinds a family can declare.
WORKLOAD_KINDS = ("coloring", "maxcut")


@dataclass(frozen=True)
class ReferenceSolution:
    """Reference-solution metadata for normalizing and judging accuracies.

    Attributes
    ----------
    kind:
        ``"coloring"`` or ``"maxcut"`` (copied from the family).
    num_colors:
        Colors the workload is solved with (4 for the paper's problems,
        2 for max-cut scenarios).
    colorable:
        Whether a proper ``num_colors``-coloring is known to exist
        (``None`` = unknown; meaningful for coloring workloads only).
    reference_cut:
        Cut value accuracies are normalized against (max-cut workloads only).
    provider:
        Where the reference came from (``"closed-form"``,
        ``"four-colour-theorem"``, ``"backtracking"``, ``"known"``,
        ``"upper-bound"`` or ``"unknown"``) — reported in ``workloads show``.
    """

    kind: str
    num_colors: int
    colorable: Optional[bool] = None
    reference_cut: Optional[float] = None
    provider: str = "unknown"


@dataclass(frozen=True)
class WorkloadInstance:
    """One concrete problem of the zoo: a family member with its runtime spec."""

    family: str
    label: str
    params: Tuple[Tuple[str, Any], ...]
    seed: Optional[int]
    spec: GraphSpec
    kind: str
    num_colors: int

    def build(self) -> Graph:
        """Materialize the instance's graph (delegates to the runtime spec)."""
        return self.spec.build()

    def reference(self, graph: Optional[Graph] = None) -> ReferenceSolution:
        """Compute the instance's reference solution via its family's provider.

        Pass the already-built ``graph`` when one is at hand — generated specs
        rebuild on every :meth:`build` call, and providers that inspect the
        graph (e.g. the backtracking 4-colorability check) should not force a
        second construction.
        """
        if graph is None:
            graph = self.build()
        return get_family(self.family).reference_provider(self, graph)

    def edge_weights(self, graph: Optional[Graph] = None) -> Optional[Dict]:
        """Per-edge weights of the instance, or ``None`` for unit weights.

        Only families with a ``weights_provider`` (e.g. weighted max-cut
        ensembles) carry weights; the provider derives them deterministically
        from the instance recipe (params + seed), so the same instance always
        weighs its edges identically in every process.
        """
        family = get_family(self.family)
        if family.weights_provider is None:
            return None
        if graph is None:
            graph = self.build()
        return family.weights_provider(dict(self.params), self.seed, graph)

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The instance parameters as a plain dictionary."""
        return dict(self.params)


@dataclass(frozen=True)
class WorkloadFamily:
    """One registered problem family of the workload zoo.

    ``spec_factory(params, seed)`` returns the content-addressed
    :class:`GraphSpec` of an instance; for seeded (ensemble) families it
    receives the derived instance seed, for deterministic families ``None``.
    ``reference_provider(instance, graph)`` receives the built graph so it
    never has to construct one itself.  ``builder`` is required for families
    whose instances are described by a
    :class:`repro.runtime.jobs.GeneratedGraphSpec` — it is the function that
    spec dispatches back to at build time.
    """

    name: str
    description: str
    kind: str
    seeded: bool
    default_grid: Tuple[Mapping[str, Any], ...]
    spec_factory: Callable[[Dict[str, Any], Optional[int]], GraphSpec]
    reference_provider: Callable[[WorkloadInstance, Graph], ReferenceSolution]
    builder: Optional[Callable[[Dict[str, Any], Optional[int]], Graph]] = None
    num_colors: int = 4
    replicates: int = 1
    #: Optional per-edge weight derivation ``(params, seed, graph) -> weights``
    #: for weighted problem families.  Must be deterministic in its recipe
    #: arguments (the weights ride implicitly in the instance's content hash,
    #: which covers family + params + seed).
    weights_provider: Optional[
        Callable[[Dict[str, Any], Optional[int], Graph], Dict]
    ] = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"workload kind must be one of {WORKLOAD_KINDS}, got {self.kind!r}"
            )
        if not self.default_grid:
            raise ConfigurationError(f"family {self.name!r} needs a non-empty default grid")
        if self.replicates < 1:
            raise ConfigurationError(f"replicates must be >= 1, got {self.replicates}")


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative workload: family + parameter grid + seed policy.

    ``grid=None`` uses the family's default grid; ``replicates=None`` its
    default replicate count.  Deterministic families ignore the seed policy
    (their instances carry no seed).  :meth:`expand` is pure and stable: the
    same spec always expands to the same instances, with the same derived
    seeds, in the same order — which is what makes the scenario matrix
    cache-hittable across invocations and identical across worker counts.
    """

    family: str
    grid: Optional[Tuple[Mapping[str, Any], ...]] = None
    base_seed: int = 2025
    replicates: Optional[int] = None

    def expand(self) -> List[WorkloadInstance]:
        """Expand to concrete instances (one per grid point and replicate)."""
        family = get_family(self.family)
        grid = self.grid if self.grid is not None else family.default_grid
        replicates = self.replicates if self.replicates is not None else family.replicates
        if replicates < 1:
            raise ConfigurationError(f"replicates must be >= 1, got {replicates}")
        if not family.seeded and self.replicates is not None and self.replicates > 1:
            raise ConfigurationError(
                f"family {family.name!r} is deterministic (unseeded); "
                f"replicates={self.replicates} would produce identical instances"
            )
        instances: List[WorkloadInstance] = []
        for point_index, params in enumerate(grid):
            params = dict(params)
            for replicate in range(replicates if family.seeded else 1):
                seed = (
                    derive_instance_seed(self.base_seed, family.name, point_index, replicate)
                    if family.seeded
                    else None
                )
                spec = family.spec_factory(params, seed)
                instances.append(
                    WorkloadInstance(
                        family=family.name,
                        label=spec.label,
                        params=tuple(sorted(params.items())),
                        seed=seed,
                        spec=spec,
                        kind=family.kind,
                        num_colors=family.num_colors,
                    )
                )
        return instances


def derive_instance_seed(base_seed: int, family: str, point_index: int, replicate: int) -> int:
    """Derive a stable instance seed from the spec's seed policy.

    The derivation hashes the *content* ``(base_seed, family, point, replicate)``
    with SHA-256, so it is identical across processes, platforms and Python
    hash randomization — a requirement for generated-ensemble cache keys.
    """
    payload = f"{base_seed}/{family}/{point_index}/{replicate}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "big")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, WorkloadFamily] = {}
_BUILTINS_LOADED = False
_BUILTINS_LOADING = False


def _ensure_builtins() -> None:
    """Load the built-in families exactly once (lazily, to avoid import cycles).

    The loading flag guards against re-entry (families.py itself calls
    :func:`register_family` at import time); the loaded flag is only set on
    a *successful* import, so a failed load is retried — loudly — rather than
    leaving a silently partial registry.
    """
    global _BUILTINS_LOADED, _BUILTINS_LOADING
    if _BUILTINS_LOADED or _BUILTINS_LOADING:
        return
    _BUILTINS_LOADING = True
    try:
        import repro.workloads.families  # noqa: F401  (registers on import)

        _BUILTINS_LOADED = True
    finally:
        _BUILTINS_LOADING = False


def register_family(family: WorkloadFamily) -> WorkloadFamily:
    """Register a family under its name (duplicate names are an error).

    Built-in families are loaded first, so a user family colliding with a
    built-in name fails here, immediately, instead of poisoning the lazy
    builtin import at the first later lookup.
    """
    _ensure_builtins()
    if family.name in _REGISTRY:
        raise ConfigurationError(f"workload family {family.name!r} is already registered")
    _REGISTRY[family.name] = family
    return family


def get_family(name: str) -> WorkloadFamily:
    """Look up a registered family by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload family {name!r}; available: {', '.join(family_names())}"
        ) from None


def family_names() -> List[str]:
    """Names of all registered families, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY)


def iter_families() -> List[WorkloadFamily]:
    """All registered families, in registration order."""
    _ensure_builtins()
    return list(_REGISTRY.values())


def build_family_graph(name: str, params: Dict[str, Any], seed: Optional[int]) -> Graph:
    """Build a generated-family graph from its recipe (GeneratedGraphSpec hook)."""
    family = get_family(name)
    if family.builder is None:
        raise ConfigurationError(f"workload family {name!r} has no generator builder")
    return family.builder(params, seed)


# ----------------------------------------------------------------------
# Reference-solution caching
# ----------------------------------------------------------------------
#: Version of the cached reference-solution payload.  Bump when providers
#: change in a result-affecting way; old entries then miss and recompute.
REFERENCE_SCHEMA_VERSION = 1

#: Payload namespace within the runtime's :class:`ResultCache`.
REFERENCE_CACHE_KIND = "reference"


def reference_cache_key(instance: WorkloadInstance) -> Optional[str]:
    """Content hash identifying ``instance``'s reference solution, or ``None``.

    The key derives from the graph spec's content fingerprint plus the
    workload kind and color budget — everything the reference providers
    consume — so it is stable across processes and invocations.  Instances
    whose spec does not build deterministically (seedless generated
    ensembles) have no stable identity and return ``None`` (uncacheable).
    """
    if not instance.spec.deterministic:
        return None
    # Same canonical-JSON + SHA-256 recipe as every other runtime content hash.
    payload = {
        "reference_schema": REFERENCE_SCHEMA_VERSION,
        "graph": instance.spec.fingerprint(),
        "family": instance.family,
        "kind": instance.kind,
        "num_colors": instance.num_colors,
    }
    return _sha256_text(canonical_json(payload))


def cached_reference(
    instance: WorkloadInstance,
    graph: Optional[Graph] = None,
    cache=None,
) -> ReferenceSolution:
    """The instance's reference solution, served from ``cache`` when possible.

    ``cache`` is a :class:`repro.runtime.cache.ResultCache` (or ``None`` for
    the uncached path).  References depend only on the content-addressed graph
    spec, so scenario-matrix reruns — and any experiment sharing the cache
    directory — skip the exact backtracking colorability searches and
    reference-cut computations after the first run.
    """
    key = reference_cache_key(instance) if cache is not None else None
    if key is not None:
        payload = cache.load_payload(REFERENCE_CACHE_KIND, key)
        if payload is not None:
            try:
                return ReferenceSolution(**payload)
            except TypeError:
                pass  # foreign/stale payload shape: recompute and overwrite
    reference = instance.reference(graph)
    if key is not None:
        cache.store_payload(REFERENCE_CACHE_KIND, key, asdict(reference))
    return reference


def default_workload(family: str, base_seed: int = 2025) -> WorkloadSpec:
    """The family's default workload spec (default grid and seed policy)."""
    get_family(family)  # validate the name early
    return WorkloadSpec(family=family, base_seed=base_seed)


def expand_workloads(
    families: Optional[Sequence[str]] = None, base_seed: int = 2025
) -> List[WorkloadInstance]:
    """Expand the default workloads of ``families`` (``None`` = the whole zoo)."""
    names = list(families) if families is not None else family_names()
    instances: List[WorkloadInstance] = []
    for name in names:
        instances.extend(default_workload(name, base_seed=base_seed).expand())
    return instances
