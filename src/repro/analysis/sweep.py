"""Parameter-sweep harness for design-space exploration and ablations.

Section 2.3 of the paper describes the design tensions (coupling strength vs
oscillation, SHIL strength vs waveform integrity) and Section 4.1 notes the
empirically chosen stage durations.  The sweep harness expands a grid of
configuration overrides into runtime solve jobs — one per valid grid point,
all sharing one content-addressed graph spec — and submits the whole batch
through :meth:`repro.runtime.runner.ExperimentRunner.solve_many`, so sweep
points shard across worker processes and re-entered (or overlapping) grids
resolve from the result cache.  It powers the ablation benchmarks and the
"how was the operating point chosen" analysis in EXPERIMENTS.md.

(The runner import is deferred to call time: :mod:`repro.runtime` serializes
results through :mod:`repro.analysis.results_io`, so a module-level import
here would close an import cycle.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import AnalysisError, ConfigurationError
from repro.analysis.statistics import IterationStatistics
from repro.core.config import MSROPMConfig
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.jobs import GraphSpec
    from repro.runtime.runner import ExperimentRunner

#: Anything the sweep harness can solve on (see repro.runtime.jobs.as_graph_spec).
GraphLike = Union[Graph, "GraphSpec", str, Path]


@dataclass
class SweepPoint:
    """One evaluated configuration of a sweep."""

    overrides: Dict[str, Any]
    statistics: IterationStatistics
    mean_stage1_accuracy: float

    @property
    def mean_accuracy(self) -> float:
        """Mean final accuracy at this sweep point."""
        return self.statistics.mean_accuracy

    @property
    def best_accuracy(self) -> float:
        """Best final accuracy at this sweep point."""
        return self.statistics.best_accuracy


@dataclass
class SweepResult:
    """All evaluated points of one sweep."""

    parameter_names: List[str]
    points: List[SweepPoint]

    def best_point(self) -> SweepPoint:
        """The point with the highest mean accuracy (ties: best accuracy)."""
        if not self.points:
            raise AnalysisError("sweep produced no points")
        return max(self.points, key=lambda p: (p.mean_accuracy, p.best_accuracy))

    def as_rows(self) -> List[List[object]]:
        """Rows suitable for :func:`repro.analysis.reporting.format_table`."""
        rows: List[List[object]] = []
        for point in self.points:
            row: List[object] = [point.overrides.get(name) for name in self.parameter_names]
            row.extend(
                [
                    f"{point.mean_accuracy:.3f}",
                    f"{point.best_accuracy:.3f}",
                    f"{point.mean_stage1_accuracy:.3f}",
                ]
            )
            rows.append(row)
        return rows


def expand_parameter_grid(
    base_config: MSROPMConfig, parameter_grid: Dict[str, Sequence[Any]]
) -> Tuple[List[str], List[Tuple[Dict[str, Any], MSROPMConfig]]]:
    """Expand a parameter grid into its valid ``(overrides, config)`` points.

    Configurations rejected by the config validation (e.g. a coupling strength
    beyond the oscillation-quenching cap) are skipped rather than aborting,
    since probing the edges of the valid region is exactly what a design-space
    exploration does.  Points are produced in the grid's cartesian-product
    order (last parameter fastest), which fixes the sweep's result ordering
    regardless of how the points are later scheduled.
    """
    if not parameter_grid:
        raise AnalysisError("parameter_grid must not be empty")
    names = list(parameter_grid.keys())
    points: List[Tuple[Dict[str, Any], MSROPMConfig]] = []

    def recurse(position: int, chosen: Dict[str, Any]) -> None:
        if position == len(names):
            try:
                config = base_config.with_updates(**chosen)
            except ConfigurationError:
                return
            points.append((dict(chosen), config))
            return
        name = names[position]
        for value in parameter_grid[name]:
            chosen[name] = value
            recurse(position + 1, chosen)
        # An empty value sequence leaves the key unset (and the sweep empty).
        chosen.pop(name, None)

    recurse(0, {})
    return names, points


def sweep_configuration(
    graph: GraphLike,
    base_config: MSROPMConfig,
    parameter_grid: Dict[str, Sequence[Any]],
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Evaluate the MSROPM over the cartesian product of ``parameter_grid``.

    ``graph`` is anything :func:`repro.runtime.jobs.as_graph_spec` accepts: a
    built :class:`~repro.graphs.graph.Graph`, a content-addressed
    :class:`~repro.runtime.jobs.GraphSpec` (e.g. a workload-zoo instance's
    ``spec`` — the graph is then built in the workers, not here), or a
    ``.col``/``.json`` path.  ``parameter_grid`` maps :class:`MSROPMConfig`
    field names to the values to try; invalid combinations are skipped (see
    :func:`expand_parameter_grid`).

    Every point becomes one runtime solve job and the whole grid is submitted
    as a single batch, so a multi-worker ``runner`` shards the sweep across
    processes and a cache-backed runner skips already-evaluated points
    (``None`` = serial, uncached).  ``engine`` selects the replica engine
    (``"sequential"``/``"batched"``); ``None`` keeps ``base_config.engine`` —
    the batched default makes wide ablation grids roughly an order of
    magnitude cheaper.
    """
    from repro.runtime.jobs import as_graph_spec
    from repro.runtime.runner import ExperimentRunner, SolveRequest

    if iterations < 1:
        raise AnalysisError("iterations must be at least 1")
    if engine is not None:
        # Applied (and validated) up front: a bad engine name is a caller
        # error and must raise, not silently skip every grid point.
        base_config = base_config.with_updates(engine=engine)
    runner = runner or ExperimentRunner()
    names, grid_points = expand_parameter_grid(base_config, parameter_grid)
    # One shared spec: the graph's content hash is computed once for the grid.
    spec = as_graph_spec(graph)
    requests = [
        SolveRequest(spec=spec, config=config, iterations=iterations, seed=seed)
        for _, config in grid_points
    ]
    results = runner.solve_many(requests)
    points = [
        SweepPoint(
            overrides=overrides,
            statistics=IterationStatistics.from_result(result),
            mean_stage1_accuracy=float(result.stage1_accuracies.mean()),
        )
        for (overrides, _), result in zip(grid_points, results)
    ]
    return SweepResult(parameter_names=names, points=points)


def coupling_strength_sweep(
    graph: GraphLike,
    strengths: Sequence[float],
    base_config: Optional[MSROPMConfig] = None,
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Ablation: solution quality versus B2B coupling strength."""
    base = base_config or MSROPMConfig()
    return sweep_configuration(
        graph,
        base,
        {"coupling_strength": list(strengths)},
        iterations=iterations,
        seed=seed,
        engine=engine,
        runner=runner,
    )


def shil_strength_sweep(
    graph: GraphLike,
    strengths: Sequence[float],
    base_config: Optional[MSROPMConfig] = None,
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Ablation: solution quality versus SHIL injection strength."""
    base = base_config or MSROPMConfig()
    return sweep_configuration(
        graph,
        base,
        {"shil_strength": list(strengths)},
        iterations=iterations,
        seed=seed,
        engine=engine,
        runner=runner,
    )


def annealing_time_sweep(
    graph: GraphLike,
    annealing_times: Sequence[float],
    base_config: Optional[MSROPMConfig] = None,
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Ablation: solution quality versus the per-stage annealing duration."""
    from repro.circuit.control import TimingPlan

    base = base_config or MSROPMConfig()
    timings = [replace(base.timing, annealing=duration) for duration in annealing_times]
    return sweep_configuration(
        graph, base, {"timing": timings}, iterations=iterations, seed=seed, engine=engine, runner=runner
    )
