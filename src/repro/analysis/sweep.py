"""Parameter-sweep harness for design-space exploration and ablations.

Section 2.3 of the paper describes the design tensions (coupling strength vs
oscillation, SHIL strength vs waveform integrity) and Section 4.1 notes the
empirically chosen stage durations.  The sweep harness runs the MSROPM across
a grid of configuration overrides and records summary statistics, powering the
ablation benchmarks and the "how was the operating point chosen" analysis in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import AnalysisError, ConfigurationError
from repro.analysis.statistics import IterationStatistics
from repro.core.config import MSROPMConfig
from repro.core.machine import MSROPM
from repro.graphs.graph import Graph


@dataclass
class SweepPoint:
    """One evaluated configuration of a sweep."""

    overrides: Dict[str, Any]
    statistics: IterationStatistics
    mean_stage1_accuracy: float

    @property
    def mean_accuracy(self) -> float:
        """Mean final accuracy at this sweep point."""
        return self.statistics.mean_accuracy

    @property
    def best_accuracy(self) -> float:
        """Best final accuracy at this sweep point."""
        return self.statistics.best_accuracy


@dataclass
class SweepResult:
    """All evaluated points of one sweep."""

    parameter_names: List[str]
    points: List[SweepPoint]

    def best_point(self) -> SweepPoint:
        """The point with the highest mean accuracy (ties: best accuracy)."""
        if not self.points:
            raise AnalysisError("sweep produced no points")
        return max(self.points, key=lambda p: (p.mean_accuracy, p.best_accuracy))

    def as_rows(self) -> List[List[object]]:
        """Rows suitable for :func:`repro.analysis.reporting.format_table`."""
        rows: List[List[object]] = []
        for point in self.points:
            row: List[object] = [point.overrides.get(name) for name in self.parameter_names]
            row.extend(
                [
                    f"{point.mean_accuracy:.3f}",
                    f"{point.best_accuracy:.3f}",
                    f"{point.mean_stage1_accuracy:.3f}",
                ]
            )
            rows.append(row)
        return rows


def sweep_configuration(
    graph: Graph,
    base_config: MSROPMConfig,
    parameter_grid: Dict[str, Sequence[Any]],
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
) -> SweepResult:
    """Evaluate the MSROPM over the cartesian product of ``parameter_grid``.

    ``parameter_grid`` maps :class:`MSROPMConfig` field names to the values to
    try.  Configurations rejected by the config validation (e.g. a coupling
    strength beyond the oscillation-quenching cap) are skipped rather than
    aborting the sweep, since probing the edges of the valid region is exactly
    what a design-space exploration does.

    Every point's iterations execute on the replica engine selected by
    ``engine`` (``"sequential"``/``"batched"``); ``None`` keeps
    ``base_config.engine`` — the batched default makes wide ablation grids
    roughly an order of magnitude cheaper.
    """
    if iterations < 1:
        raise AnalysisError("iterations must be at least 1")
    if not parameter_grid:
        raise AnalysisError("parameter_grid must not be empty")
    if engine is not None:
        # Applied (and validated) up front: a bad engine name is a caller
        # error and must raise, not silently skip every grid point.
        base_config = base_config.with_updates(engine=engine)
    names = list(parameter_grid.keys())
    points: List[SweepPoint] = []

    def recurse(position: int, chosen: Dict[str, Any]) -> None:
        if position == len(names):
            try:
                config = base_config.with_updates(**chosen)
            except ConfigurationError:
                return
            machine = MSROPM(graph, config)
            result = machine.solve(iterations=iterations, seed=seed)
            statistics = IterationStatistics.from_result(result)
            points.append(
                SweepPoint(
                    overrides=dict(chosen),
                    statistics=statistics,
                    mean_stage1_accuracy=float(result.stage1_accuracies.mean()),
                )
            )
            return
        name = names[position]
        for value in parameter_grid[name]:
            chosen[name] = value
            recurse(position + 1, chosen)
        del chosen[name]

    recurse(0, {})
    return SweepResult(parameter_names=names, points=points)


def coupling_strength_sweep(
    graph: Graph,
    strengths: Sequence[float],
    base_config: Optional[MSROPMConfig] = None,
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
) -> SweepResult:
    """Ablation: solution quality versus B2B coupling strength."""
    base = base_config or MSROPMConfig()
    return sweep_configuration(
        graph,
        base,
        {"coupling_strength": list(strengths)},
        iterations=iterations,
        seed=seed,
        engine=engine,
    )


def shil_strength_sweep(
    graph: Graph,
    strengths: Sequence[float],
    base_config: Optional[MSROPMConfig] = None,
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
) -> SweepResult:
    """Ablation: solution quality versus SHIL injection strength."""
    base = base_config or MSROPMConfig()
    return sweep_configuration(
        graph,
        base,
        {"shil_strength": list(strengths)},
        iterations=iterations,
        seed=seed,
        engine=engine,
    )


def annealing_time_sweep(
    graph: Graph,
    annealing_times: Sequence[float],
    base_config: Optional[MSROPMConfig] = None,
    iterations: int = 5,
    seed: Optional[int] = 0,
    engine: Optional[str] = None,
) -> SweepResult:
    """Ablation: solution quality versus the per-stage annealing duration."""
    from repro.circuit.control import TimingPlan

    base = base_config or MSROPMConfig()
    timings = [replace(base.timing, annealing=duration) for duration in annealing_times]
    return sweep_configuration(
        graph, base, {"timing": timings}, iterations=iterations, seed=seed, engine=engine
    )
