"""Iteration statistics: accuracy distributions, success probabilities, time-to-solution.

These are the aggregate quantities the paper's evaluation reports on top of
raw per-iteration accuracies: best/average accuracy (Table 1), exact-solution
counts (e.g. "6 times among 40 iterations" for the 49-node problem), and the
time-to-solution metrics customary for probabilistic solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import AnalysisError
from repro.core.results import SolveResult


@dataclass(frozen=True)
class IterationStatistics:
    """Summary statistics of a multi-iteration experiment."""

    num_iterations: int
    best_accuracy: float
    worst_accuracy: float
    mean_accuracy: float
    std_accuracy: float
    num_exact: int
    success_probability: float

    @classmethod
    def from_result(cls, result: SolveResult, exact_threshold: float = 1.0) -> "IterationStatistics":
        """Build statistics from a :class:`SolveResult`."""
        accuracies = result.accuracies
        exact = int(np.sum(accuracies >= exact_threshold - 1e-12))
        return cls(
            num_iterations=result.num_iterations,
            best_accuracy=float(accuracies.max()),
            worst_accuracy=float(accuracies.min()),
            mean_accuracy=float(accuracies.mean()),
            std_accuracy=float(accuracies.std()),
            num_exact=exact,
            success_probability=exact / result.num_iterations,
        )

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a flat dictionary (for reports)."""
        return {
            "iterations": self.num_iterations,
            "best": self.best_accuracy,
            "worst": self.worst_accuracy,
            "mean": self.mean_accuracy,
            "std": self.std_accuracy,
            "exact": self.num_exact,
            "success_probability": self.success_probability,
        }


def time_to_solution(
    single_run_time: float,
    success_probability: float,
    target_confidence: float = 0.99,
) -> float:
    """Expected time to reach a success with the usual TTS formula.

    ``TTS = t_run * ln(1 - confidence) / ln(1 - p_success)``; returns infinity
    when no run succeeded and ``t_run`` when every run succeeds.
    """
    if single_run_time < 0:
        raise AnalysisError("single_run_time must be non-negative")
    if not 0.0 < target_confidence < 1.0:
        raise AnalysisError("target_confidence must be in (0, 1)")
    if success_probability <= 0.0:
        return float("inf")
    if success_probability >= 1.0:
        return single_run_time
    repeats = np.log(1.0 - target_confidence) / np.log(1.0 - success_probability)
    return float(single_run_time * max(1.0, repeats))


def accuracy_percentiles(accuracies: Sequence[float], percentiles: Sequence[float] = (5, 25, 50, 75, 95)) -> Dict[float, float]:
    """Return the requested percentiles of an accuracy distribution."""
    if len(accuracies) == 0:
        raise AnalysisError("accuracy list must not be empty")
    values = np.asarray(accuracies, dtype=float)
    return {float(p): float(np.percentile(values, p)) for p in percentiles}


def iterations_to_reach(accuracies: Sequence[float], threshold: float) -> Optional[int]:
    """Return the 1-based index of the first iteration reaching ``threshold``, or None."""
    for position, value in enumerate(accuracies, start=1):
        if value >= threshold - 1e-12:
            return position
    return None


def expected_best_of_n(accuracies: Sequence[float], n: int, num_samples: int = 2000, seed: int = 0) -> float:
    """Bootstrap estimate of the expected best accuracy when running ``n`` iterations.

    Useful for answering "how many iterations does the machine need" from an
    existing batch of runs without re-simulating.
    """
    if n < 1:
        raise AnalysisError("n must be at least 1")
    values = np.asarray(accuracies, dtype=float)
    if values.size == 0:
        raise AnalysisError("accuracy list must not be empty")
    rng = np.random.default_rng(seed)
    picks = rng.choice(values, size=(num_samples, n), replace=True)
    return float(picks.max(axis=1).mean())
