"""Prior-work comparison (Table 2).

Table 2 of the paper compares the MSROPM against other Potts and Ising
machines along: solver type, solved COP, technology, spin count, average
power, time to solution, accuracy range, and baseline.  The rows fall into
two groups here:

* *measured rows* — architectures this repository re-implements on the same
  phase-domain substrate (the MSROPM itself, the single-stage N-SHIL ROPM, the
  ROIM max-cut machine); their numbers come from running the code.
* *literature rows* — optical/hybrid machines that cannot be re-implemented
  meaningfully in this substrate; their numbers are carried over from the
  paper's table (clearly marked as cited).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import AnalysisError
from repro.analysis.reporting import format_table


@dataclass(frozen=True)
class ComparisonRow:
    """One row of the Table 2 comparison."""

    label: str
    solver_type: str
    solved_cop: str
    technology: str
    spins: int
    average_power_w: Optional[float]
    time_to_solution_s: Optional[float]
    accuracy_range: str
    baseline: str
    source: str = "measured"

    def cells(self) -> List[str]:
        """Render the row's cells as strings."""
        power = "DNR" if self.average_power_w is None else f"{self.average_power_w * 1e3:.1f} mW"
        if self.time_to_solution_s is None:
            time_text = "DNR"
        elif self.time_to_solution_s >= 1e-6:
            time_text = f"{self.time_to_solution_s * 1e6:.0f} us"
        else:
            time_text = f"{self.time_to_solution_s * 1e9:.0f} ns"
        return [
            self.label,
            self.solver_type,
            self.solved_cop,
            self.technology,
            str(self.spins),
            power,
            time_text,
            self.accuracy_range,
            self.baseline,
            self.source,
        ]


#: Literature rows of Table 2 that are cited, not re-measured (optical machines).
LITERATURE_ROWS = (
    ComparisonRow(
        label="CPM [13]",
        solver_type="Potts",
        solved_cop="4-coloring",
        technology="Optical & Digital",
        spins=47,
        average_power_w=None,
        time_to_solution_s=500e-6,
        accuracy_range="50% success rate",
        baseline="Exact solution",
        source="cited",
    ),
    ComparisonRow(
        label="Optical Potts [11]",
        solver_type="Potts",
        solved_cop="3-coloring",
        technology="Optical",
        spins=30,
        average_power_w=None,
        time_to_solution_s=None,
        accuracy_range="50%-100%",
        baseline="Exact solution",
        source="cited",
    ),
    ComparisonRow(
        label="RTWOIM [9]",
        solver_type="Ising",
        solved_cop="Max-Cut",
        technology="CMOS 65nm GP",
        spins=2750,
        average_power_w=17.48,
        time_to_solution_s=10e-9,
        accuracy_range="91%-94%",
        baseline="SA",
        source="cited",
    ),
    ComparisonRow(
        label="ROIM [8]",
        solver_type="Ising",
        solved_cop="Max-Cut",
        technology="CMOS 65nm LP",
        spins=1968,
        average_power_w=42e-3,
        time_to_solution_s=50e-9,
        accuracy_range="89%-100%",
        baseline="Tabu",
        source="cited",
    ),
)

TABLE2_HEADERS = (
    "Implementation",
    "Solver type",
    "Solved COP",
    "Technology",
    "Spins",
    "Average power",
    "Time to solution",
    "Accuracy",
    "Baseline",
    "Source",
)


@dataclass
class ComparisonTable:
    """A Table 2-style comparison: measured rows plus cited literature rows."""

    rows: List[ComparisonRow] = field(default_factory=list)

    def add_row(self, row: ComparisonRow) -> None:
        """Append a row."""
        self.rows.append(row)

    def with_literature(self) -> "ComparisonTable":
        """Return a copy with the cited literature rows appended."""
        return ComparisonTable(rows=list(self.rows) + list(LITERATURE_ROWS))

    def render(self, title: str = "Table 2: comparison with prior work") -> str:
        """Render the table as aligned ASCII text."""
        if not self.rows:
            raise AnalysisError("comparison table has no rows")
        return format_table(TABLE2_HEADERS, [row.cells() for row in self.rows], title=title)


def accuracy_range_text(worst: float, best: float) -> str:
    """Format an accuracy range the way Table 2 does (``worst%-best%``).

    Accuracy measurements are raw ratios and may exceed 1.0 against heuristic
    references (e.g. the ROIM row's striping cut); this presentation helper
    clips them to 100% — with a warning — via :func:`present_accuracy`.
    """
    import math

    from repro.analysis.reporting import present_accuracy

    if math.isnan(worst) or math.isnan(best):
        raise AnalysisError("accuracies must not be NaN")
    if worst < 0.0 or best < 0.0:
        raise AnalysisError("accuracies must be non-negative")
    if best < worst:
        raise AnalysisError("best accuracy must be >= worst accuracy")
    worst = present_accuracy(worst, label="worst accuracy")
    best = present_accuracy(best, label="best accuracy")
    return f"{worst * 100:.0f}%-{best * 100:.0f}%"
