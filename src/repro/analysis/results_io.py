"""Serialization of solve results to JSON.

Long experiments (the 40-iteration runs on the 2116-node problem) are worth
persisting so the analysis and the EXPERIMENTS.md bookkeeping can be redone
without re-simulating.  Results are stored as plain JSON: the graph (via the
graphs JSON codec), the per-iteration accuracies, seeds, stage records and
colorings.  Trajectories and phase arrays are intentionally *not* persisted —
they are large and can be regenerated from the recorded seeds.

Every payload is stamped with :data:`SCHEMA` and :data:`FORMAT_VERSION`, and
loading rejects any mismatch.  This is what the runtime's result cache
(:mod:`repro.runtime.cache`) relies on for clean invalidation: when the format
evolves, old cache entries fail to load, read as misses, and are recomputed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import AnalysisError
from repro.core.results import IterationResult, SolveResult, StageResult
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph
from repro.graphs.io import from_json as graph_from_json
from repro.graphs.io import to_json as graph_to_json
from repro.graphs.partition import Bipartition

PathLike = Union[str, Path]

#: Schema identifier written into every results payload.  Together with
#: :data:`FORMAT_VERSION` it names the exact serialized layout; loaders reject
#: anything else, so downstream stores (the runtime's result cache keys its
#: entries by a hash that includes these) invalidate cleanly whenever the
#: result format evolves instead of deserializing stale shapes.
SCHEMA = "msropm/solve-result"

#: Format version written into every results file.  Bump on any layout change.
#: History: 2 — stage records with clipped accuracies.  3 — stages carry the
#: raw (unclipped) accuracy ratio alongside the [0, 1] paper metric.  4 — the
#: payload carries the result's execution ``metadata`` (precision tier, state
#: dtype, numpy version).
FORMAT_VERSION = 4


def solve_result_to_dict(result: SolveResult) -> Dict:
    """Convert a :class:`SolveResult` to a JSON-serializable dictionary."""
    node_order = result.graph.nodes
    iterations: List[Dict] = []
    for item in result.iterations:
        stages = []
        for stage in item.stage_results:
            stages.append(
                {
                    "stage_index": stage.stage_index,
                    "cut_value": stage.cut_value,
                    "reference_cut": stage.reference_cut,
                    "accuracy": stage.accuracy,
                    "raw_accuracy": stage.raw,
                    "side_b_indices": sorted(
                        index for index, node in enumerate(node_order) if node in stage.partition.side_b
                    ),
                }
            )
        iterations.append(
            {
                "iteration_index": item.iteration_index,
                "seed": item.seed,
                "accuracy": item.accuracy,
                "run_time": item.run_time,
                "colors": [item.coloring.color_of(node) for node in node_order],
                "stages": stages,
            }
        )
    return {
        "schema": SCHEMA,
        "format_version": FORMAT_VERSION,
        "num_colors": result.num_colors,
        "graph": json.loads(graph_to_json(result.graph)),
        "metadata": dict(result.metadata),
        "iterations": iterations,
    }


def solve_result_from_dict(payload: Dict) -> SolveResult:
    """Rebuild a :class:`SolveResult` from :func:`solve_result_to_dict` output."""
    if not isinstance(payload, dict) or "iterations" not in payload or "graph" not in payload:
        raise AnalysisError("malformed solve-result payload")
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise AnalysisError(f"unsupported results schema {schema!r} (expected {SCHEMA!r})")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise AnalysisError(
            f"unsupported results format version {version!r} (expected {FORMAT_VERSION})"
        )
    graph = graph_from_json(json.dumps(payload["graph"]))
    num_colors = int(payload["num_colors"])
    node_order = graph.nodes
    iterations: List[IterationResult] = []
    for item in payload["iterations"]:
        coloring = Coloring.from_array(graph, item["colors"], num_colors)
        stages: List[StageResult] = []
        for stage in item.get("stages", []):
            side_b_indices = set(stage["side_b_indices"])
            side_b = frozenset(node for index, node in enumerate(node_order) if index in side_b_indices)
            side_a = frozenset(node for index, node in enumerate(node_order) if index not in side_b_indices)
            stages.append(
                StageResult(
                    stage_index=int(stage["stage_index"]),
                    partition=Bipartition(side_a=side_a, side_b=side_b),
                    cut_value=int(stage["cut_value"]),
                    reference_cut=int(stage["reference_cut"]),
                    accuracy=float(stage["accuracy"]),
                    raw_accuracy=float(stage["raw_accuracy"]),
                )
            )
        iterations.append(
            IterationResult(
                iteration_index=int(item["iteration_index"]),
                seed=int(item["seed"]),
                coloring=coloring,
                accuracy=float(item["accuracy"]),
                stage_results=stages,
                run_time=float(item.get("run_time", 0.0)),
            )
        )
    metadata = payload.get("metadata", {})
    if not isinstance(metadata, dict):
        raise AnalysisError("solve-result metadata must be a JSON object")
    return SolveResult(
        graph=graph, num_colors=num_colors, iterations=iterations, metadata=metadata
    )


def save_solve_result(result: SolveResult, path: PathLike) -> None:
    """Write a solve result to ``path`` as JSON."""
    Path(path).write_text(json.dumps(solve_result_to_dict(result)), encoding="utf-8")


def load_solve_result(path: PathLike) -> SolveResult:
    """Read a solve result previously written by :func:`save_solve_result`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"invalid results JSON in {path}: {exc}") from exc
    return solve_result_from_dict(payload)
