"""Plain-text rendering of tables and figure data.

The benchmark harness prints the same rows and series the paper reports;
these helpers format them as aligned ASCII tables and simple text histograms
so results are readable in terminal output, CI logs and EXPERIMENTS.md.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an aligned ASCII table.

    Every row must have the same number of cells as ``headers``; cells are
    stringified with ``str``.
    """
    if not headers:
        raise AnalysisError("a table needs at least one column")
    str_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        str_rows.append([str(cell) for cell in row])
    widths = [len(header) for header in headers]
    for row in str_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in str_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def present_accuracy(value: float, label: str = "accuracy") -> float:
    """Clamp an accuracy ratio into [0, 1] for display, warning when it exceeds 1.

    Accuracy *measurements* are raw ratios (``cut / reference``) and may
    legitimately exceed 1.0 when a solver beats a heuristic reference (see
    :meth:`repro.ising.maxcut.MaxCutProblem.accuracy`).  Reports and tables
    clip here — the one place allowed to — so better-than-reference results
    stay visible in the data and audible in the logs.
    """
    if value != value:  # NaN passes through; hiding it as 0.0 would misreport
        return value
    if value > 1.0:
        warnings.warn(
            f"{label} {value:.3f} exceeds its reference (better-than-reference "
            "result); clipping to 1.0 for display",
            stacklevel=2,
        )
        return 1.0
    return max(0.0, float(value))


def format_accuracy(value: float, digits: int = 3, label: str = "accuracy") -> str:
    """Format an accuracy ratio for a table cell (presentation-layer clipping, NaN-safe)."""
    presented = present_accuracy(value, label=label)
    if presented != presented:
        return "nan"
    return f"{presented:.{digits}f}"


@dataclass(frozen=True)
class FamilyAccuracySummary:
    """Aggregate accuracy of one workload family across its instances."""

    family: str
    count: int
    mean_accuracy: float
    best_accuracy: float


def summarize_accuracy_by_family(
    pairs: Iterable[Tuple[str, Sequence[float]]]
) -> List[FamilyAccuracySummary]:
    """Aggregate ``(family, accuracies)`` pairs into per-family summaries.

    Families appear in first-seen order; ``count`` is the number of pairs
    (instances) contributed, ``mean_accuracy`` averages over every value and
    ``best_accuracy`` is the overall maximum.  Used by the scenario-matrix
    experiment and the sweep reports to compare workload families at a glance.
    """
    grouped: Dict[str, List[float]] = {}
    counts: Dict[str, int] = {}
    for family, accuracies in pairs:
        values = [float(value) for value in accuracies]
        if not values:
            raise AnalysisError(f"family {family!r} contributed an empty accuracy list")
        grouped.setdefault(family, []).extend(values)
        counts[family] = counts.get(family, 0) + 1
    return [
        FamilyAccuracySummary(
            family=family,
            count=counts[family],
            mean_accuracy=float(np.mean(values)),
            best_accuracy=float(np.max(values)),
        )
        for family, values in grouped.items()
    ]


def format_campaign_report(stages: Sequence[object], title: str = "Campaign") -> str:
    """Render a campaign's per-stage execution accounting as a table.

    ``stages`` is a sequence of stage-report objects (duck-typed to avoid a
    dependency on :mod:`repro.campaigns`) carrying ``name``, ``requires``,
    ``state``, ``num_jobs``, ``jobs_run`` and ``served``: the orchestrator's
    :class:`~repro.campaigns.orchestrator.StageReport` and the CLI's status
    rows both qualify.  "Computed" counts jobs actually executed this
    invocation; "Served" counts jobs answered by the cache/memo/dedup — the
    number that makes a resumed campaign's zero-recompute property visible.
    """
    rows = [
        [
            stage.name,
            ", ".join(stage.requires) if stage.requires else "-",
            stage.state,
            stage.num_jobs,
            stage.jobs_run,
            stage.served,
        ]
        for stage in stages
    ]
    return format_table(
        ("Stage", "Requires", "State", "Jobs", "Computed", "Served"),
        rows,
        title=title,
    )


def summarize_campaign_totals(stages: Sequence[object]) -> Dict[str, int]:
    """Aggregate a campaign's stage reports into whole-run counters."""
    return {
        "stages": len(stages),
        "stages_passed": sum(1 for stage in stages if stage.state == "passed"),
        "jobs": sum(stage.num_jobs for stage in stages),
        "computed": sum(stage.jobs_run for stage in stages),
        "served": sum(stage.served for stage in stages),
    }


def format_float(value: float, digits: int = 3) -> str:
    """Format a float with a fixed number of decimals (NaN-safe)."""
    if value != value:  # NaN
        return "nan"
    return f"{value:.{digits}f}"


def format_power_mw(watts: float) -> str:
    """Format a power value in milliwatts, the unit of Table 1."""
    return f"{watts * 1e3:.1f} mW"


def format_time_ns(seconds: float) -> str:
    """Format a duration in nanoseconds, the unit of the paper's run times."""
    return f"{seconds * 1e9:.0f} ns"


def format_search_space(num_nodes: int, num_colors: int) -> str:
    """Format the search-space size the way Table 1 does (``K^n``)."""
    return f"{num_colors}^{num_nodes}"


def text_histogram(
    values: Sequence[float],
    num_bins: int = 10,
    value_range: Optional[tuple] = None,
    width: int = 40,
    label: str = "",
) -> str:
    """Render a horizontal text histogram (used for the Fig. 5(c) data)."""
    if num_bins < 1:
        raise AnalysisError("num_bins must be at least 1")
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        return f"{label}(no data)"
    counts, edges = np.histogram(values, bins=num_bins, range=value_range)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [label] if label else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{edges[i]:.2f}, {edges[i + 1]:.2f}) {str(count).rjust(5)} {bar}")
    return "\n".join(lines)


def accuracy_series_text(accuracies: Sequence[float], label: str = "", per_line: int = 10) -> str:
    """Render a per-iteration accuracy series (the Fig. 5(a)/(b) data) as text."""
    values = list(accuracies)
    lines = [label] if label else []
    for start in range(0, len(values), per_line):
        chunk = values[start:start + per_line]
        lines.append(
            " ".join(f"{value:5.3f}" for value in chunk)
        )
    return "\n".join(lines)
