"""Analysis layer: statistics, sweeps, comparisons and text reporting."""

from repro.analysis.statistics import (
    IterationStatistics,
    accuracy_percentiles,
    expected_best_of_n,
    iterations_to_reach,
    time_to_solution,
)
from repro.analysis.reporting import (
    FamilyAccuracySummary,
    accuracy_series_text,
    format_accuracy,
    format_float,
    format_power_mw,
    format_search_space,
    format_table,
    format_time_ns,
    present_accuracy,
    summarize_accuracy_by_family,
    text_histogram,
)
from repro.analysis.sweep import (
    SweepPoint,
    SweepResult,
    annealing_time_sweep,
    coupling_strength_sweep,
    shil_strength_sweep,
    sweep_configuration,
)
from repro.analysis.comparison import (
    LITERATURE_ROWS,
    TABLE2_HEADERS,
    ComparisonRow,
    ComparisonTable,
    accuracy_range_text,
)
from repro.analysis.results_io import (
    load_solve_result,
    save_solve_result,
    solve_result_from_dict,
    solve_result_to_dict,
)

__all__ = [
    "IterationStatistics",
    "time_to_solution",
    "accuracy_percentiles",
    "iterations_to_reach",
    "expected_best_of_n",
    "format_table",
    "format_float",
    "format_power_mw",
    "format_time_ns",
    "format_search_space",
    "format_accuracy",
    "present_accuracy",
    "FamilyAccuracySummary",
    "summarize_accuracy_by_family",
    "text_histogram",
    "accuracy_series_text",
    "SweepPoint",
    "SweepResult",
    "sweep_configuration",
    "coupling_strength_sweep",
    "shil_strength_sweep",
    "annealing_time_sweep",
    "ComparisonRow",
    "ComparisonTable",
    "LITERATURE_ROWS",
    "TABLE2_HEADERS",
    "accuracy_range_text",
    "save_solve_result",
    "load_solve_result",
    "solve_result_to_dict",
    "solve_result_from_dict",
]
