"""CNF formula representation for the SAT baseline.

The paper normalizes its accuracy metric against exact solutions obtained
with "a generic SAT solver".  This package provides that substrate from
scratch: a CNF data structure (this module), DIMACS CNF serialization, a
DPLL solver with unit propagation and activity-based branching, and a graph
coloring → CNF encoder.

Literals follow the DIMACS convention: variables are positive integers
``1..n`` and a negative integer denotes a negated variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SATError

Literal = int
Clause = Tuple[Literal, ...]


def negate(literal: Literal) -> Literal:
    """Return the negation of a literal."""
    if literal == 0:
        raise SATError("0 is not a valid literal")
    return -literal


def variable_of(literal: Literal) -> int:
    """Return the variable index of a literal."""
    if literal == 0:
        raise SATError("0 is not a valid literal")
    return abs(literal)


class CNF:
    """A CNF formula: a conjunction of clauses over integer variables.

    Variables do not need to be declared in advance; ``num_variables`` is the
    largest variable index seen.  Empty clauses are allowed (they make the
    formula trivially unsatisfiable) but adding one raises unless explicitly
    permitted, because it almost always indicates an encoding bug.
    """

    def __init__(self, clauses: Optional[Iterable[Sequence[Literal]]] = None, num_variables: int = 0) -> None:
        self._clauses: List[Clause] = []
        self._num_variables = int(num_variables)
        if self._num_variables < 0:
            raise SATError(f"num_variables must be non-negative, got {num_variables}")
        if clauses is not None:
            for clause in clauses:
                self.add_clause(clause)

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of variables (largest index referenced or declared)."""
        return self._num_variables

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    @property
    def clauses(self) -> List[Clause]:
        """The clause list (tuples of literals)."""
        return list(self._clauses)

    def new_variable(self) -> int:
        """Allocate and return a fresh variable index."""
        self._num_variables += 1
        return self._num_variables

    def add_clause(self, literals: Sequence[Literal], allow_empty: bool = False) -> None:
        """Add a clause given as a sequence of non-zero integer literals.

        Duplicate literals are removed; tautological clauses (containing both
        ``l`` and ``-l``) are silently dropped since they are always satisfied.
        """
        unique: Set[Literal] = set()
        for literal in literals:
            if not isinstance(literal, int) or literal == 0:
                raise SATError(f"invalid literal {literal!r}")
            unique.add(literal)
        if not unique and not allow_empty:
            raise SATError("refusing to add an empty clause (pass allow_empty=True to force)")
        for literal in unique:
            if -literal in unique:
                return  # tautology
            self._num_variables = max(self._num_variables, abs(literal))
        self._clauses.append(tuple(sorted(unique, key=abs)))

    def add_clauses(self, clauses: Iterable[Sequence[Literal]]) -> None:
        """Add every clause in ``clauses``."""
        for clause in clauses:
            self.add_clause(clause)

    def add_at_most_one(self, literals: Sequence[Literal]) -> None:
        """Add pairwise clauses enforcing that at most one literal is true."""
        literals = list(literals)
        for i in range(len(literals)):
            for j in range(i + 1, len(literals)):
                self.add_clause([negate(literals[i]), negate(literals[j])])

    def add_exactly_one(self, literals: Sequence[Literal]) -> None:
        """Add clauses enforcing that exactly one literal is true."""
        literals = list(literals)
        if not literals:
            raise SATError("exactly-one constraint over an empty literal set is unsatisfiable")
        self.add_clause(literals)
        self.add_at_most_one(literals)

    # ------------------------------------------------------------------
    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Return ``True`` if ``assignment`` (variable → bool) satisfies the formula.

        Every variable appearing in the formula must be assigned.
        """
        for clause in self._clauses:
            satisfied = False
            for literal in clause:
                var = variable_of(literal)
                if var not in assignment:
                    raise SATError(f"variable {var} is unassigned")
                value = assignment[var]
                if (literal > 0 and value) or (literal < 0 and not value):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def is_satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """Alias of :meth:`evaluate` for readability at call sites."""
        return self.evaluate(assignment)

    def variables(self) -> Set[int]:
        """Return the set of variables that appear in at least one clause."""
        return {variable_of(literal) for clause in self._clauses for literal in clause}

    def copy(self) -> "CNF":
        """Return a copy of this formula."""
        clone = CNF(num_variables=self._num_variables)
        clone._clauses = list(self._clauses)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CNF variables={self.num_variables} clauses={self.num_clauses}>"
