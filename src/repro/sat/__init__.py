"""SAT substrate: CNF representation, DIMACS I/O, DPLL solver, coloring encoder."""

from repro.sat.cnf import CNF, negate, variable_of
from repro.sat.dimacs import (
    from_dimacs_cnf,
    read_dimacs_cnf,
    to_dimacs_cnf,
    write_dimacs_cnf,
)
from repro.sat.solver import DPLLSolver, SATResult, solve_cnf
from repro.sat.coloring_sat import (
    ColoringEncodingSAT,
    chromatic_number_sat,
    encode_coloring,
    sat_coloring,
)

__all__ = [
    "CNF",
    "negate",
    "variable_of",
    "to_dimacs_cnf",
    "from_dimacs_cnf",
    "read_dimacs_cnf",
    "write_dimacs_cnf",
    "DPLLSolver",
    "SATResult",
    "solve_cnf",
    "ColoringEncodingSAT",
    "encode_coloring",
    "sat_coloring",
    "chromatic_number_sat",
]
