"""Graph coloring → CNF encoding and SAT-based exact coloring.

The encoding is the standard direct encoding: one Boolean variable
``x_{v,k}`` per (vertex, color), "at least one color" and "at most one color"
clauses per vertex, and "different colors" clauses per edge.  Static symmetry
breaking fixes the colors of one maximal clique, which makes structured
instances (grids, King's graphs) propagate almost entirely without search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SATError
from repro.graphs.coloring import Coloring
from repro.graphs.graph import Graph, Node
from repro.sat.cnf import CNF
from repro.sat.solver import SATResult, solve_cnf


@dataclass
class ColoringEncodingSAT:
    """A CNF encoding of the K-coloring of a graph, with its variable map."""

    graph: Graph
    num_colors: int
    formula: CNF
    variable_map: Dict[Tuple[Node, int], int]

    def decode(self, result: SATResult) -> Coloring:
        """Decode a satisfying assignment back into a :class:`Coloring`."""
        if not result.is_sat or result.assignment is None:
            raise SATError("cannot decode a non-SAT result")
        assignment: Dict[Node, int] = {}
        for node in self.graph.nodes:
            chosen: Optional[int] = None
            for color in range(self.num_colors):
                if result.assignment.get(self.variable_map[(node, color)], False):
                    chosen = color
                    break
            if chosen is None:
                raise SATError(f"node {node!r} has no color set in the SAT model")
            assignment[node] = chosen
        return Coloring(assignment=assignment, num_colors=self.num_colors)


def encode_coloring(graph: Graph, num_colors: int, symmetry_breaking: bool = True) -> ColoringEncodingSAT:
    """Build the direct CNF encoding of the ``num_colors``-coloring of ``graph``."""
    if num_colors < 1:
        raise SATError(f"num_colors must be positive, got {num_colors}")
    formula = CNF()
    variable_map: Dict[Tuple[Node, int], int] = {}
    for node in graph.nodes:
        for color in range(num_colors):
            variable_map[(node, color)] = formula.new_variable()
    for node in graph.nodes:
        literals = [variable_map[(node, color)] for color in range(num_colors)]
        formula.add_exactly_one(literals)
    for u, v in graph.edges():
        for color in range(num_colors):
            formula.add_clause([-variable_map[(u, color)], -variable_map[(v, color)]])
    if symmetry_breaking and graph.num_nodes:
        for position, node in enumerate(_greedy_clique(graph)):
            if position >= num_colors:
                break
            formula.add_clause([variable_map[(node, position)]])
    return ColoringEncodingSAT(graph=graph, num_colors=num_colors, formula=formula, variable_map=variable_map)


def _greedy_clique(graph: Graph) -> List[Node]:
    """Return a greedily grown clique starting from a maximum-degree node."""
    if graph.num_nodes == 0:
        return []
    start = max(graph.nodes, key=lambda node: (graph.degree(node), -graph.node_index()[node]))
    clique = [start]
    candidates = graph.neighbors(start)
    while candidates:
        node = max(candidates, key=lambda n: (len(graph.neighbors(n) & candidates), -graph.node_index()[n]))
        clique.append(node)
        candidates = candidates & graph.neighbors(node)
    return clique


def sat_coloring(graph: Graph, num_colors: int, max_decisions: Optional[int] = None) -> Optional[Coloring]:
    """Return a proper ``num_colors``-coloring found by the SAT solver, or None.

    ``None`` means the instance is unsatisfiable (not ``num_colors``-colorable).
    A search aborted by ``max_decisions`` raises so an "unknown" outcome is
    never silently confused with UNSAT.
    """
    encoding = encode_coloring(graph, num_colors)
    result = solve_cnf(encoding.formula, max_decisions=max_decisions)
    if result.is_unknown:
        raise SATError("SAT search aborted by the decision limit; result unknown")
    if result.is_unsat:
        return None
    coloring = encoding.decode(result)
    if not coloring.is_proper(graph):
        raise SATError("internal error: SAT model decodes to an improper coloring")
    return coloring


def chromatic_number_sat(graph: Graph, max_colors: int = 8, max_decisions: Optional[int] = None) -> int:
    """Return the chromatic number by solving K-coloring for K = 1, 2, ...

    ``max_colors`` bounds the search; exceeding it raises (the graphs used in
    this repository are all 4-colorable, so the default is generous).
    """
    if graph.num_nodes == 0:
        return 0
    if graph.num_edges == 0:
        return 1
    for num_colors in range(1, max_colors + 1):
        if sat_coloring(graph, num_colors, max_decisions=max_decisions) is not None:
            return num_colors
    raise SATError(f"chromatic number exceeds the max_colors limit of {max_colors}")
