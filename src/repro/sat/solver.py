"""An iterative DPLL SAT solver with unit propagation and activity branching.

This is the "generic SAT solver" the paper uses to compute exact solutions
against which the MSROPM's accuracy is normalized.  The solver is a classic
DPLL search:

* two-literal-watching-free, clause-state propagation (simple but correct);
* unit propagation to fixpoint after every decision;
* conflict-driven variable *activity* bumping (a light-weight VSIDS flavour)
  to steer branching towards recently conflicting variables;
* an explicit trail + decision stack, so the search is iterative rather than
  recursive and cannot hit Python's recursion limit on the 2116-node
  benchmark encodings.

It is intended for the structured coloring encodings used in this repository
(tens of thousands of variables, highly propagating), not as a competitive
general-purpose CDCL solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import SATError
from repro.sat.cnf import CNF, Literal, negate, variable_of


@dataclass
class SATResult:
    """Outcome of a SAT run.

    Attributes
    ----------
    satisfiable:
        ``True`` for SAT, ``False`` for UNSAT, ``None`` when the search was
        aborted by the decision limit.
    assignment:
        For SAT results, a complete variable → bool assignment.
    decisions / propagations / conflicts:
        Search statistics.
    """

    satisfiable: Optional[bool]
    assignment: Optional[Dict[int, bool]] = None
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0

    @property
    def is_sat(self) -> bool:
        """``True`` iff a satisfying assignment was found."""
        return self.satisfiable is True

    @property
    def is_unsat(self) -> bool:
        """``True`` iff the formula was proven unsatisfiable."""
        return self.satisfiable is False

    @property
    def is_unknown(self) -> bool:
        """``True`` iff the search hit its decision limit."""
        return self.satisfiable is None


class DPLLSolver:
    """Iterative DPLL solver over a :class:`CNF` formula.

    Parameters
    ----------
    formula:
        The formula to solve.  It is not modified.
    max_decisions:
        Optional cap on the number of branching decisions; exceeded searches
        return an "unknown" :class:`SATResult`.
    """

    def __init__(self, formula: CNF, max_decisions: Optional[int] = None) -> None:
        if max_decisions is not None and max_decisions <= 0:
            raise SATError(f"max_decisions must be positive, got {max_decisions}")
        self._formula = formula
        self._max_decisions = max_decisions
        self._clauses: List[Tuple[Literal, ...]] = formula.clauses
        self._num_vars = formula.num_variables
        # occurrence lists: literal -> clause indices containing it
        self._occurrences: Dict[Literal, List[int]] = {}
        for index, clause in enumerate(self._clauses):
            for literal in clause:
                self._occurrences.setdefault(literal, []).append(index)
        self._activity: Dict[int, float] = {var: 0.0 for var in range(1, self._num_vars + 1)}

    # ------------------------------------------------------------------
    def solve(self, assumptions: Optional[Sequence[Literal]] = None) -> SATResult:
        """Run the search, optionally under a list of assumption literals."""
        assignment: Dict[int, Optional[bool]] = {var: None for var in range(1, self._num_vars + 1)}
        # Trail entries are (literal, kind) with kind one of:
        #   "decision" — first branch of a decision (its flip is still untried)
        #   "flipped"  — second branch of a decision (both phases now tried)
        #   "implied"  — unit propagation or assumption
        trail: List[Tuple[Literal, str]] = []
        decisions = 0
        propagations = 0
        conflicts = 0

        def assign(literal: Literal, kind: str) -> bool:
            """Assert ``literal``; return False on immediate contradiction."""
            var = variable_of(literal)
            value = literal > 0
            current = assignment[var]
            if current is not None:
                return current == value
            assignment[var] = value
            trail.append((literal, kind))
            return True

        def unit_propagate() -> Optional[Tuple[Literal, ...]]:
            """Propagate to fixpoint; return a conflicting clause or None."""
            nonlocal propagations
            changed = True
            while changed:
                changed = False
                for clause in self._clauses:
                    unassigned: Optional[Literal] = None
                    satisfied = False
                    num_unassigned = 0
                    for literal in clause:
                        value = assignment[variable_of(literal)]
                        if value is None:
                            num_unassigned += 1
                            unassigned = literal
                        elif (literal > 0) == value:
                            satisfied = True
                            break
                    if satisfied:
                        continue
                    if num_unassigned == 0:
                        return clause
                    if num_unassigned == 1:
                        assert unassigned is not None
                        if not assign(unassigned, "implied"):
                            return clause
                        propagations += 1
                        changed = True
            return None

        def backtrack_to_decision() -> Optional[Literal]:
            """Undo assignments up to (and including) the most recent first-branch decision.

            Returns that decision literal (so the caller can try its flip), or
            ``None`` when no untried branch remains, i.e. the formula is UNSAT.
            Flipped decisions encountered on the way are undone and skipped,
            because both of their phases have already been explored.
            """
            while trail:
                literal, kind = trail.pop()
                assignment[variable_of(literal)] = None
                if kind == "decision":
                    return literal
            return None

        # Apply assumptions as forced (non-decision) assignments.
        if assumptions:
            for literal in assumptions:
                if not assign(literal, "implied"):
                    return SATResult(satisfiable=False, decisions=0, propagations=0, conflicts=1)

        # Trivial empty-clause check.
        if any(len(clause) == 0 for clause in self._clauses):
            return SATResult(satisfiable=False, conflicts=1)

        while True:
            conflict = unit_propagate()
            if conflict is not None:
                conflicts += 1
                for literal in conflict:
                    self._activity[variable_of(literal)] += 1.0
                # Flip the most recent decision whose other phase is untried.
                flipped = False
                while not flipped:
                    decision = backtrack_to_decision()
                    if decision is None:
                        return SATResult(
                            satisfiable=False,
                            decisions=decisions,
                            propagations=propagations,
                            conflicts=conflicts,
                        )
                    flipped = assign(negate(decision), "flipped")
                continue

            # Pick the next branching variable (highest activity, then lowest index).
            branch_var = self._pick_branch_variable(assignment)
            if branch_var is None:
                final = {var: bool(value) for var, value in assignment.items() if value is not None}
                for var in range(1, self._num_vars + 1):
                    final.setdefault(var, False)
                return SATResult(
                    satisfiable=True,
                    assignment=final,
                    decisions=decisions,
                    propagations=propagations,
                    conflicts=conflicts,
                )
            decisions += 1
            if self._max_decisions is not None and decisions > self._max_decisions:
                return SATResult(
                    satisfiable=None,
                    decisions=decisions,
                    propagations=propagations,
                    conflicts=conflicts,
                )
            assign(branch_var, "decision")

    # ------------------------------------------------------------------
    def _pick_branch_variable(self, assignment: Dict[int, Optional[bool]]) -> Optional[Literal]:
        """Return a positive literal of the best unassigned variable, or None."""
        best_var: Optional[int] = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if assignment[var] is None:
                activity = self._activity.get(var, 0.0)
                if activity > best_activity:
                    best_activity = activity
                    best_var = var
        if best_var is None:
            return None
        return best_var


def solve_cnf(formula: CNF, assumptions: Optional[Sequence[Literal]] = None, max_decisions: Optional[int] = None) -> SATResult:
    """Convenience wrapper: build a :class:`DPLLSolver` and solve ``formula``."""
    solver = DPLLSolver(formula, max_decisions=max_decisions)
    result = solver.solve(assumptions=assumptions)
    if result.is_sat and result.assignment is not None and not formula.evaluate(result.assignment):
        raise SATError("internal error: solver returned a non-satisfying assignment")
    return result
