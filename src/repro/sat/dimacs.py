"""DIMACS CNF serialization (``p cnf`` format)."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.exceptions import SATError
from repro.sat.cnf import CNF

PathLike = Union[str, Path]


def to_dimacs_cnf(formula: CNF, comment: str = "") -> str:
    """Serialize ``formula`` to the DIMACS ``p cnf`` format."""
    lines: List[str] = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    lines.append(f"p cnf {formula.num_variables} {formula.num_clauses}")
    for clause in formula.clauses:
        lines.append(" ".join(str(literal) for literal in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs_cnf(text: str) -> CNF:
    """Parse a DIMACS CNF document."""
    declared_vars: Optional[int] = None
    formula = CNF()
    pending: List[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c") or line.startswith("%"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SATError(f"malformed problem line at {line_number}: {raw!r}")
            declared_vars = int(parts[2])
            continue
        for token in line.split():
            try:
                literal = int(token)
            except ValueError as exc:
                raise SATError(f"invalid literal {token!r} at line {line_number}") from exc
            if literal == 0:
                if pending:
                    formula.add_clause(pending)
                    pending = []
            else:
                pending.append(literal)
    if pending:
        formula.add_clause(pending)
    if declared_vars is None:
        raise SATError("DIMACS CNF input has no problem ('p cnf') line")
    if declared_vars > formula.num_variables:
        # Declare the extra (unused) variables so num_variables matches the header.
        while formula.num_variables < declared_vars:
            formula.new_variable()
    return formula


def write_dimacs_cnf(formula: CNF, path: PathLike, comment: str = "") -> None:
    """Write ``formula`` to ``path``."""
    Path(path).write_text(to_dimacs_cnf(formula, comment=comment), encoding="utf-8")


def read_dimacs_cnf(path: PathLike) -> CNF:
    """Read a DIMACS CNF file from ``path``."""
    return from_dimacs_cnf(Path(path).read_text(encoding="utf-8"))
