"""Schema-manifest extraction: the hash-relevant surfaces, fingerprinted.

The job hash is a SHA-256 of ``SolveJob.describe()``; the cache keys
envelopes by it and gates reuse on ``CACHE_SCHEMA_VERSION``; persisted
results are gated on ``FORMAT_VERSION``.  Changing any surface that feeds
those bytes — a hashed dataclass field, a ``describe()``/``fingerprint()``
key, the envelope layout, the results payload — without bumping the
governing version makes stale cache entries *collide* instead of miss.

This module computes, purely from the AST (the analyzed code is never
imported), a canonical manifest of every such surface:

* the three governing version constants,
* ``SolveJob``/``BaselineJob`` hashed fields and ``describe()`` keys,
* every ``GraphSpec`` subclass's fields and ``fingerprint()`` keys,
* ``MSROPMConfig``/``ThroughputOptions`` members (folded into the hash via
  ``asdict``),
* the cache envelope layouts and the results payload keys.

The checked-in ``devtools/schema_manifest.json`` is the reviewed baseline;
the ``schema-manifest`` lint rule fails when HEAD's computed manifest
differs, and ``python -m repro.devtools regen-manifest`` refuses to
regenerate while a changed surface's governing version is unbumped.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Version of the manifest file layout itself.
MANIFEST_SCHEMA_VERSION = 1

#: Repo-relative path of the checked-in manifest.
MANIFEST_PATH = "src/repro/devtools/schema_manifest.json"

#: Repo-relative sources each surface is extracted from.
SOURCES = {
    "jobs": "src/repro/runtime/jobs.py",
    "baselines": "src/repro/runtime/baselines.py",
    "config": "src/repro/core/config.py",
    "batched": "src/repro/dynamics/batched.py",
    "cache": "src/repro/runtime/cache.py",
    "results_io": "src/repro/analysis/results_io.py",
    "ledger": "src/repro/campaigns/ledger.py",
}


class SchemaExtractionError(RuntimeError):
    """A surface this module fingerprints could not be located."""


# ----------------------------------------------------------------------
# AST extraction primitives.

def _find_class(tree: ast.Module, name: str, relpath: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise SchemaExtractionError(f"class {name} not found in {relpath}")


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _int_constant(tree: ast.Module, name: str, relpath: str) -> int:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, int)
        ):
            return node.value.value
    raise SchemaExtractionError(f"constant {name} not found in {relpath}")


def _literal_assignment(tree: ast.Module, name: str, relpath: str) -> Any:
    """Evaluate a module-level pure-literal assignment (dicts of tuples etc.).

    The assigned expression must be a Python literal — which is exactly the
    constraint that makes it extractable without importing the module, and
    why :data:`LEDGER_EVENT_SHAPES` is declared as one.
    """
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == name
        ):
            try:
                return ast.literal_eval(node.value)
            except ValueError as exc:
                raise SchemaExtractionError(
                    f"{name} in {relpath} is not a pure literal: {exc}"
                ) from exc
    raise SchemaExtractionError(f"assignment {name} not found in {relpath}")


def _annotated_fields(cls: ast.ClassDef) -> List[str]:
    """Annotated class-body names, i.e. the dataclass fields, in order."""
    fields: List[str] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append(node.target.id)
    return fields


def _dict_keys(node: ast.AST) -> List[str]:
    """Every constant-string dict-literal key anywhere inside ``node``."""
    keys: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.append(key.value)
    return sorted(set(keys))


def _method_dict_keys(cls: ast.ClassDef, method: str, relpath: str) -> List[str]:
    func = _find_method(cls, method)
    if func is None:
        raise SchemaExtractionError(f"{cls.name}.{method} not found in {relpath}")
    return _dict_keys(func)


def _graph_spec_classes(tree: ast.Module) -> List[ast.ClassDef]:
    subclasses = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and any(
            isinstance(base, ast.Name) and base.id == "GraphSpec" for base in node.bases
        ):
            subclasses.append(node)
    return subclasses


# ----------------------------------------------------------------------
# Manifest computation.

def compute_manifest(
    root: Path, overrides: Optional[Dict[str, str]] = None
) -> Dict[str, Any]:
    """The manifest of HEAD's hash-relevant surfaces.

    ``overrides`` maps repo-relative source paths to replacement source
    text — the unit-test hook for simulating a schema change without
    touching the working tree.
    """
    root = Path(root)
    overrides = overrides or {}

    trees: Dict[str, ast.Module] = {}
    for label, relpath in SOURCES.items():
        text = overrides.get(relpath)
        if text is None:
            text = (root / relpath).read_text(encoding="utf-8")
        trees[label] = ast.parse(text, filename=relpath)

    jobs, cache = trees["jobs"], trees["cache"]

    versions = {
        "JOB_SCHEMA_VERSION": _int_constant(jobs, "JOB_SCHEMA_VERSION", SOURCES["jobs"]),
        "CACHE_SCHEMA_VERSION": _int_constant(
            cache, "CACHE_SCHEMA_VERSION", SOURCES["cache"]
        ),
        "FORMAT_VERSION": _int_constant(
            trees["results_io"], "FORMAT_VERSION", SOURCES["results_io"]
        ),
        "LEDGER_SCHEMA_VERSION": _int_constant(
            trees["ledger"], "LEDGER_SCHEMA_VERSION", SOURCES["ledger"]
        ),
    }

    solve_job = _find_class(jobs, "SolveJob", SOURCES["jobs"])
    baseline_job = _find_class(trees["baselines"], "BaselineJob", SOURCES["baselines"])
    config_cls = _find_class(trees["config"], "MSROPMConfig", SOURCES["config"])
    throughput_cls = _find_class(trees["batched"], "ThroughputOptions", SOURCES["batched"])
    cache_cls = _find_class(cache, "ResultCache", SOURCES["cache"])

    graph_specs: Dict[str, Any] = {}
    for cls in _graph_spec_classes(jobs):
        fingerprint = _find_method(cls, "fingerprint")
        graph_specs[cls.name] = {
            "fields": _annotated_fields(cls),
            "fingerprint_keys": _dict_keys(fingerprint) if fingerprint else [],
        }

    results_func = None
    for node in trees["results_io"].body:
        if isinstance(node, ast.FunctionDef) and node.name == "solve_result_to_dict":
            results_func = node
    if results_func is None:
        raise SchemaExtractionError(
            f"solve_result_to_dict not found in {SOURCES['results_io']}"
        )

    surfaces: Dict[str, Any] = {
        "solve_job": {
            "governed_by": "JOB_SCHEMA_VERSION",
            "source": SOURCES["jobs"],
            "fields": _annotated_fields(solve_job),
            "describe_keys": _method_dict_keys(solve_job, "describe", SOURCES["jobs"]),
        },
        "baseline_job": {
            "governed_by": "JOB_SCHEMA_VERSION",
            "source": SOURCES["baselines"],
            "fields": _annotated_fields(baseline_job),
            "describe_keys": _method_dict_keys(
                baseline_job, "describe", SOURCES["baselines"]
            ),
        },
        "graph_specs": {
            "governed_by": "JOB_SCHEMA_VERSION",
            "source": SOURCES["jobs"],
            "classes": graph_specs,
        },
        "msropm_config": {
            "governed_by": "JOB_SCHEMA_VERSION",
            "source": SOURCES["config"],
            "fields": _annotated_fields(config_cls),
        },
        "throughput_options": {
            "governed_by": "JOB_SCHEMA_VERSION",
            "source": SOURCES["batched"],
            "fields": _annotated_fields(throughput_cls),
        },
        "cache_envelope": {
            "governed_by": "CACHE_SCHEMA_VERSION",
            "source": SOURCES["cache"],
            "store_keys": _method_dict_keys(cache_cls, "store", SOURCES["cache"]),
            "payload_keys": _method_dict_keys(
                cache_cls, "store_payload", SOURCES["cache"]
            ),
        },
        "results_payload": {
            "governed_by": "FORMAT_VERSION",
            "source": SOURCES["results_io"],
            "keys": _dict_keys(results_func),
        },
        "ledger_events": {
            "governed_by": "LEDGER_SCHEMA_VERSION",
            "source": SOURCES["ledger"],
            # kind -> sorted field list; adding a kind or a field changes the
            # manifest and therefore demands a LEDGER_SCHEMA_VERSION bump.
            "event_shapes": {
                kind: sorted(fields)
                for kind, fields in _literal_assignment(
                    trees["ledger"], "LEDGER_EVENT_SHAPES", SOURCES["ledger"]
                ).items()
            },
        },
    }

    body = {"versions": versions, "surfaces": surfaces}
    fingerprint = hashlib.sha256(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    ).hexdigest()
    return {
        "manifest_schema": MANIFEST_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        **body,
    }


# ----------------------------------------------------------------------
# Checked-in manifest I/O and diffing.

def manifest_path(root: Path) -> Path:
    return Path(root) / MANIFEST_PATH


def load_manifest(root: Path) -> Optional[Dict[str, Any]]:
    path = manifest_path(root)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def write_manifest(root: Path, manifest: Dict[str, Any]) -> Path:
    from repro.runtime.atomic import write_atomic_json

    path = manifest_path(root)
    write_atomic_json(path, manifest, indent=2)
    return path


def changed_surfaces(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[Tuple[str, str, bool]]:
    """``(surface, governing version, bumped?)`` for every changed surface."""
    old_surfaces = old.get("surfaces", {})
    new_surfaces = new.get("surfaces", {})
    old_versions = old.get("versions", {})
    new_versions = new.get("versions", {})
    changes: List[Tuple[str, str, bool]] = []
    for name in sorted(set(old_surfaces) | set(new_surfaces)):
        if old_surfaces.get(name) == new_surfaces.get(name):
            continue
        governed = (new_surfaces.get(name) or old_surfaces.get(name) or {}).get(
            "governed_by", "JOB_SCHEMA_VERSION"
        )
        bumped = old_versions.get(governed) != new_versions.get(governed)
        changes.append((name, governed, bumped))
    return changes


def unbumped_changes(
    old: Dict[str, Any], new: Dict[str, Any]
) -> List[Tuple[str, str]]:
    """Changed surfaces whose governing version was *not* bumped."""
    return [(s, v) for s, v, bumped in changed_surfaces(old, new) if not bumped]


def regenerate(root: Path, force: bool = False) -> Tuple[Path, Dict[str, Any]]:
    """Recompute and write the manifest, enforcing the bump discipline.

    Refuses (raises :class:`SchemaExtractionError`) when a hash-relevant
    surface changed but its governing version constant did not — regeneration
    must never be the tool that papers over a missing bump.  ``force``
    overrides, for intentional non-semantic refactors of a fingerprinted
    method.
    """
    new = compute_manifest(root)
    old = load_manifest(root)
    if old is not None and not force:
        missing = unbumped_changes(old, new)
        if missing:
            detail = ", ".join(f"{surface} (bump {version})" for surface, version in missing)
            raise SchemaExtractionError(
                "refusing to regenerate: hash-relevant surface(s) changed without "
                f"a version bump: {detail}. Bump the governing version(s), or pass "
                "--force for a provably non-semantic change."
            )
    return write_manifest(root, new), new
