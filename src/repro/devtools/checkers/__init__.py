"""The registered checker suite.

Order here is presentation order in ``msropm dev lint`` rule listings; the
analyzer sorts findings by location, so registration order never affects
output stability.
"""

from repro.devtools.checkers.atomicity import AtomicityChecker
from repro.devtools.checkers.determinism import DeterminismChecker
from repro.devtools.checkers.hotpath import HotPathChecker
from repro.devtools.checkers.schema_coupling import SchemaCouplingChecker

CHECKERS = [
    DeterminismChecker,
    SchemaCouplingChecker,
    AtomicityChecker,
    HotPathChecker,
]
