"""Determinism checker: no ambient entropy in hash/execution paths.

Job hashes, generated-graph recipes, and campaign resume all assume that the
same inputs replay to the same bytes on any host.  Three things break that
silently: wall-clock reads, RNG streams not derived from the job seed, and
iteration over unordered containers (``set``, directory listings) whose
order leaks into results or hashes.

Rules
-----
``determinism-wallclock``
    ``time.time``/``time.time_ns``/``datetime.now``-family calls.
``determinism-rng``
    ``os.urandom``, stdlib ``random.*``, or direct ``np.random.*`` use; all
    randomness must flow through :mod:`repro.rng` so replica streams stay
    seed-derived and reproducible.
``determinism-unsorted-iter``
    ``for``/comprehension iteration over a ``set(...)``/set literal or a
    filesystem enumeration (``glob``/``iterdir``/``listdir``/``scandir``/
    ``os.walk``) that is not wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, List

from repro.devtools.analyzer import (
    Checker,
    Finding,
    LintConfig,
    ModuleSource,
    dotted_name,
)

_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
}

_RNG_EXACT = {"os.urandom"}

_RNG_PREFIXES = ("np.random.", "numpy.random.", "random.")

_FS_ENUM_ATTRS = {"glob", "iglob", "rglob", "iterdir"}

_FS_ENUM_EXACT = {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}


class DeterminismChecker(Checker):
    name = "determinism"
    rules = (
        "determinism-wallclock",
        "determinism-rng",
        "determinism-unsorted-iter",
    )
    DEFAULTS: Dict[str, Any] = {
        "paths": [
            "src/repro/runtime/jobs.py",
            "src/repro/runtime/baselines.py",
            "src/repro/campaigns",
            "src/repro/obs",
            "src/repro/service",
            "src/repro/workloads",
        ],
    }

    def check_module(self, module: ModuleSource, config: LintConfig) -> List[Finding]:
        findings: List[Finding] = []

        def flag(rule: str, node: ast.AST, message: str, hint: str) -> None:
            findings.append(
                Finding(
                    rule=rule,
                    path=module.relpath,
                    line=getattr(node, "lineno", 1),
                    message=message,
                    hint=hint,
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name in _WALLCLOCK:
                    flag(
                        "determinism-wallclock",
                        node,
                        f"wall-clock read `{name}()` in a determinism-scoped module",
                        "derive ordering/identity from job content, not the clock",
                    )
                elif name in _RNG_EXACT or name.startswith(_RNG_PREFIXES):
                    flag(
                        "determinism-rng",
                        node,
                        f"ambient RNG `{name}()` bypasses the seeded replica streams",
                        "route randomness through repro.rng (make_rng/spawn_rngs)",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterator = node.iter
                unsorted = self._unsorted_source(iterator)
                if unsorted is not None:
                    flag(
                        "determinism-unsorted-iter",
                        iterator,
                        f"iteration over unordered `{unsorted}` leaks container order",
                        "wrap the iterable in sorted(...)",
                    )
        return findings

    @staticmethod
    def _unsorted_source(iterator: ast.AST) -> "str | None":
        """The unordered-source label if ``iterator`` is one, else ``None``."""
        if isinstance(iterator, ast.Set):
            return "set literal"
        if not isinstance(iterator, ast.Call):
            return None
        name = dotted_name(iterator.func)
        if name == "set":
            return "set(...)"
        if name in _FS_ENUM_EXACT:
            return name
        if (
            isinstance(iterator.func, ast.Attribute)
            and iterator.func.attr in _FS_ENUM_ATTRS
        ):
            return f".{iterator.func.attr}(...)"
        return None
