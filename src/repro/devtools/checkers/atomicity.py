"""Atomicity checker: durable artifacts are published by atomic rename only.

The spool, the result cache, the campaign ledger and the benchmark payloads
are all read concurrently with writers (fleet workers, resumed campaigns,
CI artifact uploads).  A truncating ``open(..., "w")`` exposes readers to a
half-written file; the blessed pattern is
:mod:`repro.runtime.atomic` (write-to-temp in the target directory +
``os.replace``), or ``O_APPEND`` single-write appends for the JSONL ledger.

Rule ``atomic-write`` flags, inside the scoped durability modules:

* ``open(...)`` with a truncating/creating mode (any ``w`` or ``x``),
* ``Path.write_text`` / ``Path.write_bytes`` calls,
* direct ``tempfile.NamedTemporaryFile`` use (hand-rolled rename dances
  belong in the shared helper, not inline).

Append (``"a"``) and read/repair (``"r"``, ``"rb+"``) modes pass: the
ledger's O_APPEND single-write protocol is its own atomicity story.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional

from repro.devtools.analyzer import (
    Checker,
    Finding,
    LintConfig,
    ModuleSource,
    dotted_name,
)

_WRITE_METHODS = {"write_text", "write_bytes"}


def _call_mode(node: ast.Call) -> Optional[str]:
    """The constant-string mode of an ``open`` call (``None`` = unknown)."""
    mode: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class AtomicityChecker(Checker):
    name = "atomicity"
    rules = ("atomic-write",)
    DEFAULTS: Dict[str, Any] = {
        "paths": [
            "src/repro/runtime/spool.py",
            "src/repro/runtime/cache.py",
            "src/repro/campaigns",
            "src/repro/obs",
            "src/repro/service",
            "benchmarks",
        ],
    }

    def check_module(self, module: ModuleSource, config: LintConfig) -> List[Finding]:
        findings: List[Finding] = []
        hint = "publish via repro.runtime.atomic.write_atomic_{bytes,text,json}"
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "open" or (name or "").endswith(".open"):
                mode = _call_mode(node)
                if mode is None or any(flag in mode for flag in ("w", "x")):
                    shown = "?" if mode is None else mode
                    findings.append(
                        Finding(
                            rule="atomic-write",
                            path=module.relpath,
                            line=node.lineno,
                            message=(
                                f"truncating open(mode={shown!r}) in a durability "
                                "module can expose readers to a torn file"
                            ),
                            hint=hint,
                        )
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHODS
            ):
                findings.append(
                    Finding(
                        rule="atomic-write",
                        path=module.relpath,
                        line=node.lineno,
                        message=(
                            f"direct .{node.func.attr}() bypasses the atomic-rename "
                            "helpers"
                        ),
                        hint=hint,
                    )
                )
            elif name in ("tempfile.NamedTemporaryFile", "tempfile.mkstemp"):
                findings.append(
                    Finding(
                        rule="atomic-write",
                        path=module.relpath,
                        line=node.lineno,
                        message=(
                            "hand-rolled temp-file publication; the rename dance "
                            "lives in repro.runtime.atomic"
                        ),
                        hint=hint,
                    )
                )
        return findings
