"""Hot-path checker: no per-step allocation, no silent float64 promotion.

PR 4 made the integrator loops allocation-free (every step writes into
preallocated buffers via ``out=``); PR 6 added a float32 throughput tier
whose speedup evaporates if an intermediate silently promotes to float64.
Both properties are invisible to tests until someone benchmarks, so this
checker pins them statically for the declared hot modules.

Rules
-----
``hotpath-alloc``
    Inside a ``for``/``while`` loop body (or comprehension) of a hot module:
    an allocating numpy call (``np.zeros``/``np.empty``/``np.concatenate``/
    ...), an ``out=``-capable numpy ufunc called *without* ``out=``, or an
    ``.astype(...)`` copy.  Allocations before the loop are setup and pass.
``hotpath-dtype``
    In a float32-capable context — a function taking a ``dtype`` parameter,
    or any method of a ``Throughput*`` class — a numpy array-constructor
    call without an explicit ``dtype=`` silently defaults to float64.

Setup escapes: a function whose ``def`` line (or the contiguous comment
block above a call) carries ``# repro-lint: hot-setup`` is exempt from
``hotpath-alloc``, as are ``__init__``/``__post_init__`` and functions named
in the ``setup`` config list — buffer construction is setup wherever it
lexically lives.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from repro.devtools.analyzer import Checker, Finding, LintConfig, ModuleSource, dotted_name

_NP_ROOTS = ("np", "numpy")

_ALLOCATING = {
    "zeros", "ones", "empty", "full", "array", "asarray", "ascontiguousarray",
    "copy", "concatenate", "stack", "vstack", "hstack", "column_stack",
    "tile", "repeat", "arange", "linspace", "where", "outer",
    "zeros_like", "ones_like", "empty_like", "full_like",
}

_OUT_CAPABLE = {
    "add", "subtract", "multiply", "divide", "true_divide", "floor_divide",
    "mod", "remainder", "power", "sin", "cos", "tan", "exp", "log", "sqrt",
    "abs", "absolute", "negative", "minimum", "maximum", "clip",
}

_ARRAY_CONSTRUCTORS = {
    "array", "asarray", "zeros", "ones", "empty", "full", "arange", "linspace",
}

_SETUP_NAMES = {"__init__", "__post_init__"}


def _np_call(name: Optional[str]) -> Optional[str]:
    """The numpy function name if ``name`` is ``np.<f>``/``numpy.<f>``."""
    if name is None:
        return None
    head, _, tail = name.partition(".")
    if head in _NP_ROOTS and tail and "." not in tail:
        return tail
    return None


def _has_keyword(node: ast.Call, keyword: str) -> bool:
    return any(k.arg == keyword for k in node.keywords)


class HotPathChecker(Checker):
    name = "hotpath"
    rules = ("hotpath-alloc", "hotpath-dtype")
    DEFAULTS: Dict[str, Any] = {
        "paths": [
            "src/repro/dynamics/integrators.py",
            "src/repro/dynamics/batched.py",
            "src/repro/core/stages.py",
        ],
        #: Function names exempt from hotpath-alloc (buffer construction).
        "setup": [],
    }

    def check_module(self, module: ModuleSource, config: LintConfig) -> List[Finding]:
        setup_names = set(self.options(config).get("setup", ())) | _SETUP_NAMES
        findings: List[Finding] = []

        def is_setup(func: ast.AST) -> bool:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            if func.name in setup_names:
                return True
            def_line = module.lines[func.lineno - 1]
            return "repro-lint: hot-setup" in def_line

        def f32_context(stack: List[ast.AST]) -> bool:
            for owner in reversed(stack):
                if isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    params = list(owner.args.args) + list(owner.args.kwonlyargs)
                    if any(arg.arg == "dtype" for arg in params):
                        return True
                if isinstance(owner, ast.ClassDef) and owner.name.startswith("Throughput"):
                    return True
            return False

        def visit(node: ast.AST, stack: List[ast.AST], loop_depth: int) -> None:
            pushed = False
            entered_loop = 0
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                stack = stack + [node]
                pushed = True
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    loop_depth = 0  # a nested def starts its own loop context
            if isinstance(
                node,
                (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp),
            ):
                entered_loop = 1
            if isinstance(node, ast.Call):
                self._check_call(node, stack, loop_depth, is_setup, f32_context, module, findings)
            for child in ast.iter_child_nodes(node):
                visit(child, stack, loop_depth + entered_loop)

        visit(module.tree, [], 0)
        return findings

    def _check_call(
        self,
        node: ast.Call,
        stack: List[ast.AST],
        loop_depth: int,
        is_setup: Any,
        f32_context: Any,
        module: ModuleSource,
        findings: List[Finding],
    ) -> None:
        name = dotted_name(node.func)
        np_name = _np_call(name)
        owner = next(
            (
                item
                for item in reversed(stack)
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            None,
        )
        in_hot_loop = loop_depth > 0 and not (owner is not None and is_setup(owner))
        if in_hot_loop:
            if np_name in _ALLOCATING:
                findings.append(
                    Finding(
                        rule="hotpath-alloc",
                        path=module.relpath,
                        line=node.lineno,
                        message=f"allocating `{name}(...)` inside a hot loop body",
                        hint=(
                            "preallocate before the loop and write in place, or mark "
                            "the function `# repro-lint: hot-setup`"
                        ),
                    )
                )
            elif np_name in _OUT_CAPABLE and not _has_keyword(node, "out"):
                findings.append(
                    Finding(
                        rule="hotpath-alloc",
                        path=module.relpath,
                        line=node.lineno,
                        message=(
                            f"`{name}(...)` allocates a temporary in a hot loop; "
                            "an out= form exists"
                        ),
                        hint="pass out=<preallocated buffer>",
                    )
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                findings.append(
                    Finding(
                        rule="hotpath-alloc",
                        path=module.relpath,
                        line=node.lineno,
                        message=".astype(...) copies inside a hot loop body",
                        hint="convert once during setup",
                    )
                )
        if (
            np_name in _ARRAY_CONSTRUCTORS
            and not _has_keyword(node, "dtype")
            and f32_context(stack)
        ):
            findings.append(
                Finding(
                    rule="hotpath-dtype",
                    path=module.relpath,
                    line=node.lineno,
                    message=(
                        f"`{name}(...)` without dtype= in a float32-capable context "
                        "defaults to float64"
                    ),
                    hint="pass dtype= (the dtype parameter or np.float32) explicitly",
                )
            )
