"""Schema-hash coupling checker: surface changes require version bumps.

Project-level rule ``schema-manifest``: the manifest computed from HEAD
(:func:`repro.devtools.schema.compute_manifest`) must equal the checked-in
``devtools/schema_manifest.json`` byte for byte.  Any drift is a finding;
the message distinguishes the dangerous case (surface changed, governing
version unbumped — stale cache entries would *collide*) from the mechanical
one (bump done, manifest not regenerated — run
``python -m repro.devtools regen-manifest``).
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.devtools.analyzer import Checker, Finding, LintConfig
from repro.devtools import schema


class SchemaCouplingChecker(Checker):
    name = "schema"
    rules = ("schema-manifest",)

    def check_project(self, root: Path, config: LintConfig) -> List[Finding]:
        try:
            current = schema.compute_manifest(root)
        except (OSError, SyntaxError, schema.SchemaExtractionError) as exc:
            return [
                Finding(
                    rule="schema-manifest",
                    path=schema.MANIFEST_PATH,
                    line=1,
                    message=f"cannot compute schema manifest: {exc}",
                )
            ]
        checked_in = schema.load_manifest(root)
        if checked_in is None:
            return [
                Finding(
                    rule="schema-manifest",
                    path=schema.MANIFEST_PATH,
                    line=1,
                    message="checked-in schema manifest is missing or unreadable",
                    hint="run `python -m repro.devtools regen-manifest`",
                )
            ]
        if checked_in == current:
            return []
        findings: List[Finding] = []
        changes = schema.changed_surfaces(checked_in, current)
        for surface, governed, bumped in changes:
            source = current.get("surfaces", {}).get(surface, {}).get(
                "source", schema.MANIFEST_PATH
            )
            if bumped:
                findings.append(
                    Finding(
                        rule="schema-manifest",
                        path=source,
                        line=1,
                        message=(
                            f"hash-relevant surface '{surface}' changed ({governed} "
                            "was bumped) but the manifest was not regenerated"
                        ),
                        hint="run `python -m repro.devtools regen-manifest`",
                    )
                )
            else:
                findings.append(
                    Finding(
                        rule="schema-manifest",
                        path=source,
                        line=1,
                        message=(
                            f"hash-relevant surface '{surface}' changed without "
                            f"bumping {governed}; stale cache entries would collide"
                        ),
                        hint=(
                            f"bump {governed} and run "
                            "`python -m repro.devtools regen-manifest`"
                        ),
                    )
                )
        if not findings:
            # Version constants or manifest metadata drifted with identical
            # surfaces (e.g. a bump without regeneration, or a hand-edit).
            findings.append(
                Finding(
                    rule="schema-manifest",
                    path=schema.MANIFEST_PATH,
                    line=1,
                    message=(
                        "schema manifest is stale (versions or metadata changed "
                        "with identical surfaces)"
                    ),
                    hint="run `python -m repro.devtools regen-manifest`",
                )
            )
        return findings
