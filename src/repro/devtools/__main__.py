"""Command-line front door: ``python -m repro.devtools <command>``.

``msropm dev`` delegates here, so CI and humans share one implementation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools import analyzer, schema


def find_repo_root(start: Optional[Path] = None) -> Path:
    """The nearest ancestor holding ``pyproject.toml`` (fallback: cwd)."""
    cursor = (start or Path.cwd()).resolve()
    for candidate in (cursor, *cursor.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return cursor


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description="In-repo static analysis guarding the reproduction's invariants.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root (default: nearest ancestor with pyproject.toml)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser("lint", help="run the checker suite")
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE",
        help="restrict to a checker name or rule id (repeatable)",
    )

    regen = commands.add_parser(
        "regen-manifest",
        help="recompute devtools/schema_manifest.json (requires version bumps)",
    )
    regen.add_argument(
        "--force",
        action="store_true",
        help="regenerate even when a changed surface's version is unbumped",
    )
    regen.add_argument(
        "--check",
        action="store_true",
        help="only report whether the manifest is current; write nothing",
    )
    return parser


def run_lint_command(root: Path, fmt: str, rules: Optional[List[str]]) -> int:
    try:
        findings = analyzer.run_lint(root, rules=rules)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if fmt == "json":
        sys.stdout.write(analyzer.render_json(findings))
    else:
        print(analyzer.render_text(findings))
    return 1 if findings else 0


def run_regen_command(root: Path, force: bool, check: bool) -> int:
    if check:
        current = schema.compute_manifest(root)
        checked_in = schema.load_manifest(root)
        if checked_in == current:
            print("schema manifest is current")
            return 0
        print("schema manifest is stale; run regen-manifest")
        return 1
    try:
        path, manifest = schema.regenerate(root, force=force)
    except schema.SchemaExtractionError as exc:
        print(f"regen-manifest: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {path} (fingerprint {manifest['fingerprint'][:12]})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = (args.root or find_repo_root()).resolve()
    if args.command == "lint":
        return run_lint_command(root, args.format, args.rule)
    return run_regen_command(root, args.force, args.check)


if __name__ == "__main__":
    sys.exit(main())
