"""In-repo static analysis (``repro-lint``) guarding this repo's invariants.

The reproduction's load-bearing guarantees — determinism of everything that
feeds a job hash, schema-version-gated cache reuse, atomic-rename-only
durable writes, allocation-free hot loops — are enforced dynamically by the
test suite.  This package enforces them *statically*, at lint time, so a
violating line fails CI the moment it is pushed instead of hours later (or
never, if no test happens to cover it).

Entry points:

* ``msropm dev lint [--format json] [--rule ...]`` (or
  ``python -m repro.devtools lint``) — run the checker suite.
* ``python -m repro.devtools regen-manifest`` — regenerate
  ``schema_manifest.json`` after a hash-relevant schema change *and* its
  version bump.

Everything here is stdlib-only (``ast`` + ``tokenize``-free line scanning);
the analyzer never imports the code it checks.
"""

from repro.devtools.analyzer import (  # noqa: F401
    Finding,
    LintConfig,
    load_config,
    render_json,
    render_text,
    run_lint,
)
