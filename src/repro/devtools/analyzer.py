"""Core of the ``repro-lint`` static analyzer.

Architecture: a file walker parses every in-scope Python file exactly once
(:class:`ModuleSource`), hands the AST to each registered checker that
declares interest in the file (:class:`Checker.applies_to`), and collects
:class:`Finding` records (rule id, ``file:line``, message, fix hint).
Project-level checkers (the schema manifest) run once against the repo root
instead of per file.

Suppressions are inline and must carry a reason::

    value = time.time()  # repro-lint: disable=determinism-wallclock -- why

A ``disable`` directive may sit on the offending line or in the contiguous
comment block directly above it.  A directive *without* a ``-- reason`` is
inert and is itself reported (rule ``lint-suppression``), so the repo can
never accumulate unexplained escapes.

Configuration lives in ``pyproject.toml`` under ``[tool.repro-lint]`` and
merges over the defaults coded here.  The coded defaults are authoritative:
``tomllib`` only exists on Python >= 3.11, so on older interpreters the
pyproject section is ignored and the defaults must match it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - version-dependent
    tomllib = None  # type: ignore[assignment]

#: Version of the JSON findings report layout.
REPORT_SCHEMA_VERSION = 1

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,-]+)"
    r"(?:\s+--\s*(?P<reason>\S.*))?"
)

_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative POSIX path
    line: int
    message: str
    hint: str = ""

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.hint:
            record["hint"] = self.hint
        return record

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class LintConfig:
    """Effective analyzer configuration (defaults merged with pyproject)."""

    root: Path
    #: Walk roots, repo-relative.
    paths: List[str] = field(default_factory=lambda: ["src/repro", "benchmarks"])
    #: Repo-relative prefixes never scanned (the analyzer itself, fixtures).
    exclude: List[str] = field(default_factory=lambda: ["src/repro/devtools"])
    #: checker name -> checker option dict (see each checker's DEFAULTS).
    options: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: ``"rule:path"`` or ``"rule:path:line"`` entries accepted as legacy
    #: baseline findings (kept empty in this repo — fix, don't baseline).
    baseline: List[str] = field(default_factory=list)

    def checker_options(self, name: str, defaults: Dict[str, Any]) -> Dict[str, Any]:
        merged = dict(defaults)
        merged.update(self.options.get(name, {}))
        return merged

    def is_baselined(self, finding: Finding) -> bool:
        keys = (
            f"{finding.rule}:{finding.path}",
            f"{finding.rule}:{finding.path}:{finding.line}",
        )
        return any(entry in keys for entry in self.baseline)


@dataclass
class ModuleSource:
    """One parsed in-scope Python file."""

    path: Path
    relpath: str
    text: str
    tree: ast.Module
    lines: List[str]

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        relpath = path.relative_to(root).as_posix()
        tree = ast.parse(text, filename=relpath)
        return cls(path=path, relpath=relpath, text=text, tree=tree, lines=text.splitlines())


class Checker:
    """Base class: one named checker owning one or more rule ids."""

    #: Unique checker name (also a valid ``--rule`` filter value).
    name: str = ""
    #: Rule ids this checker can emit.
    rules: Tuple[str, ...] = ()
    #: Default option dict, overridable via ``[tool.repro-lint.<name>]``.
    DEFAULTS: Dict[str, Any] = {}

    def applies_to(self, relpath: str, config: LintConfig) -> bool:
        scope = self.options(config).get("paths", ())
        return any(relpath == p or relpath.startswith(p.rstrip("/") + "/") for p in scope)

    def options(self, config: LintConfig) -> Dict[str, Any]:
        return config.checker_options(self.name, self.DEFAULTS)

    def check_module(self, module: ModuleSource, config: LintConfig) -> List[Finding]:
        return []

    def check_project(self, root: Path, config: LintConfig) -> List[Finding]:
        return []


# ----------------------------------------------------------------------
# AST helpers shared by checkers.

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def enclosing_functions(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    """Map every node to its nearest enclosing function/class definition."""
    parents: Dict[ast.AST, ast.AST] = {}

    def visit(node: ast.AST, owner: Optional[ast.AST]) -> None:
        for child in ast.iter_child_nodes(node):
            if owner is not None:
                parents[child] = owner
            next_owner = owner
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                next_owner = child
            visit(child, next_owner)

    visit(tree, None)
    return parents


# ----------------------------------------------------------------------
# Suppressions.

def _directives(module: ModuleSource) -> Dict[int, Tuple[List[str], bool]]:
    """Line number -> (disabled rules, has_reason) for every directive."""
    found: Dict[int, Tuple[List[str], bool]] = {}
    for index, line in enumerate(module.lines, start=1):
        match = _DISABLE_RE.search(line)
        if match:
            rules = [r for r in match.group("rules").split(",") if r]
            found[index] = (rules, match.group("reason") is not None)
    return found


def _suppressed(
    finding: Finding,
    directives: Dict[int, Tuple[List[str], bool]],
    lines: List[str],
) -> bool:
    """True if a reasoned directive covers the finding's line.

    A directive applies to its own line and, when it sits in a comment-only
    block, to the first code line below that block — so multi-line
    explanations can precede the offending statement.
    """
    line = finding.line
    candidates = [line]
    # Walk upward through the contiguous comment block above the line.
    cursor = line - 1
    while cursor >= 1 and _COMMENT_ONLY_RE.match(lines[cursor - 1] if cursor <= len(lines) else ""):
        candidates.append(cursor)
        cursor -= 1
    for candidate in candidates:
        entry = directives.get(candidate)
        if entry is None:
            continue
        rules, has_reason = entry
        if has_reason and (finding.rule in rules or "all" in rules):
            return True
    return False


# ----------------------------------------------------------------------
# Configuration.

def load_config(root: Path) -> LintConfig:
    """Defaults merged with ``[tool.repro-lint]`` (when tomllib exists)."""
    config = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return config
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return config
    section = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return config
    if isinstance(section.get("paths"), list):
        config.paths = [str(p) for p in section["paths"]]
    if isinstance(section.get("exclude"), list):
        config.exclude = [str(p) for p in section["exclude"]]
    if isinstance(section.get("baseline"), list):
        config.baseline = [str(p) for p in section["baseline"]]
    for key, value in section.items():
        if isinstance(value, dict):
            config.options[key] = dict(value)
    return config


def all_checkers() -> List[Checker]:
    """Instantiate the registered checker suite."""
    from repro.devtools.checkers import CHECKERS

    return [cls() for cls in CHECKERS]


def _rule_filter(checkers: List[Checker], rules: Optional[Sequence[str]]) -> Tuple[List[Checker], Optional[set]]:
    """Resolve ``--rule`` values (checker names or rule ids) to a rule set."""
    if not rules:
        return checkers, None
    allowed: set = set()
    for value in rules:
        matched = False
        for checker in checkers:
            if value == checker.name:
                allowed.update(checker.rules)
                matched = True
            elif value in checker.rules:
                allowed.add(value)
                matched = True
        if not matched:
            raise ValueError(f"unknown rule or checker {value!r}")
    active = [c for c in checkers if allowed.intersection(c.rules)]
    return active, allowed


def iter_python_files(root: Path, config: LintConfig) -> Iterable[Path]:
    """Every ``*.py`` under the configured walk roots, excluded prefixes cut."""
    for base in config.paths:
        base_path = root / base
        if not base_path.is_dir():
            continue
        for path in sorted(base_path.rglob("*.py")):
            relpath = path.relative_to(root).as_posix()
            if any(
                relpath == ex or relpath.startswith(ex.rstrip("/") + "/")
                for ex in config.exclude
            ):
                continue
            yield path


def run_lint(
    root: Path,
    rules: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run the checker suite over the repo; return sorted findings."""
    root = Path(root).resolve()
    config = config or load_config(root)
    checkers, allowed = _rule_filter(all_checkers(), rules)
    findings: List[Finding] = []
    for path in iter_python_files(root, config):
        relpath = path.relative_to(root).as_posix()
        applicable = [c for c in checkers if c.applies_to(relpath, config)]
        if not applicable:
            continue
        try:
            module = ModuleSource.parse(path, root)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="parse-error",
                    path=relpath,
                    line=exc.lineno or 1,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        directives = _directives(module)
        for lineno, (_, has_reason) in sorted(directives.items()):
            if not has_reason:
                findings.append(
                    Finding(
                        rule="lint-suppression",
                        path=relpath,
                        line=lineno,
                        message="suppression without a reason is inert",
                        hint="append ' -- <why this line is exempt>' to the directive",
                    )
                )
        for checker in applicable:
            for finding in checker.check_module(module, config):
                if not _suppressed(finding, directives, module.lines):
                    findings.append(finding)
    for checker in checkers:
        findings.extend(checker.check_project(root, config))
    if allowed is not None:
        allowed = set(allowed) | {"parse-error", "lint-suppression"}
        findings = [f for f in findings if f.rule in allowed]
    findings = [f for f in findings if not config.is_baselined(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


# ----------------------------------------------------------------------
# Reporters.

def render_text(findings: List[Finding]) -> str:
    if not findings:
        return "repro-lint: 0 findings"
    body = "\n".join(finding.render() for finding in findings)
    return f"{body}\nrepro-lint: {len(findings)} finding(s)"


def render_json(findings: List[Finding]) -> str:
    payload = {
        "schema": "repro-lint/findings",
        "report_version": REPORT_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2) + "\n"
