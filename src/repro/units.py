"""Small SI-unit helpers used throughout the circuit and timing models.

The circuit layer works internally in SI base units (seconds, hertz, watts,
volts, farads, amps).  The paper quotes values in engineering units (ns, GHz,
mW, fF); these helpers make those conversions explicit and readable at call
sites, e.g. ``ns(20)`` or ``as_mw(power)``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Prefix multipliers
# ---------------------------------------------------------------------------
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANO


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICRO


def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * PICO


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * GIGA


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * MEGA


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * MILLI


def uw(value: float) -> float:
    """Convert microwatts to watts."""
    return value * MICRO


def ff(value: float) -> float:
    """Convert femtofarads to farads."""
    return value * FEMTO


def pf(value: float) -> float:
    """Convert picofarads to farads."""
    return value * PICO


def ua(value: float) -> float:
    """Convert microamperes to amperes."""
    return value * MICRO


def as_ns(seconds: float) -> float:
    """Express a duration in nanoseconds."""
    return seconds / NANO

def as_us(seconds: float) -> float:
    """Express a duration in microseconds."""
    return seconds / MICRO


def as_ghz(hertz: float) -> float:
    """Express a frequency in gigahertz."""
    return hertz / GIGA


def as_mw(watts: float) -> float:
    """Express a power in milliwatts."""
    return watts / MILLI


def as_uw(watts: float) -> float:
    """Express a power in microwatts."""
    return watts / MICRO
