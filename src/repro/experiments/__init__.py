"""Experiment harness: one module per paper table/figure, plus ablations."""

from repro.experiments.problems import (
    FIGURE5_SIZES,
    PAPER_ITERATIONS,
    TABLE1_SIZES,
    BenchmarkProblem,
    default_config,
    file_workload,
    paper_problem,
    scaled_iterations,
    scaled_problem,
)
from repro.experiments.fig3_waveforms import Figure3Result, render_figure3, run_figure3
from repro.experiments.fig5_accuracy import (
    Figure5Result,
    Figure5Series,
    plan_figure5_requests,
    render_figure5,
    run_figure5,
)
from repro.experiments.table1_stats import (
    Table1Result,
    Table1Row,
    plan_table1_requests,
    power_scaling_series,
    run_table1,
)
from repro.experiments.table2_comparison import Table2Result, plan_table2_requests, run_table2
from repro.experiments.scenario_matrix import (
    SCENARIO_BASELINES,
    ScenarioMatrixResult,
    ScenarioRow,
    plan_scenario_requests,
    run_scenario_matrix,
)
from repro.experiments.suite import SuiteResult, plan_suite_requests, run_suite
from repro.experiments.energy_landscape import (
    EnergyLandscapeResult,
    IntervalTrace,
    render_energy_landscape,
    run_energy_landscape,
)
from repro.experiments.ablations import (
    MultiVsSingleStageResult,
    run_annealing_time_ablation,
    run_coupling_ablation,
    run_detuning_ablation,
    run_multi_vs_single_stage,
    run_shil_ablation,
)

__all__ = [
    "BenchmarkProblem",
    "file_workload",
    "paper_problem",
    "scaled_problem",
    "scaled_iterations",
    "default_config",
    "PAPER_ITERATIONS",
    "TABLE1_SIZES",
    "FIGURE5_SIZES",
    "Figure3Result",
    "run_figure3",
    "render_figure3",
    "Figure5Result",
    "Figure5Series",
    "run_figure5",
    "render_figure5",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "power_scaling_series",
    "Table2Result",
    "run_table2",
    "plan_table1_requests",
    "plan_table2_requests",
    "plan_figure5_requests",
    "SuiteResult",
    "plan_suite_requests",
    "run_suite",
    "SCENARIO_BASELINES",
    "ScenarioMatrixResult",
    "ScenarioRow",
    "plan_scenario_requests",
    "run_scenario_matrix",
    "MultiVsSingleStageResult",
    "run_coupling_ablation",
    "run_shil_ablation",
    "run_annealing_time_ablation",
    "run_detuning_ablation",
    "run_multi_vs_single_stage",
    "EnergyLandscapeResult",
    "IntervalTrace",
    "run_energy_landscape",
    "render_energy_landscape",
]
