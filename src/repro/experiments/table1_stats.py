"""Table 1 reproduction: per-problem statistics.

Table 1 of the paper reports, for the 49/400/1024/2116-node problems:
the search-space size (``4^n``), the iteration count (40), the average power
and the top accuracy.  This module plans one solve job per problem, routes the
batch through the experiment runtime (``plan_table1_requests`` ->
:meth:`repro.runtime.runner.ExperimentRunner.solve_many` — sharded across
workers, cached on disk), evaluates the bottom-up power model on the mapped
fabric, and renders the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_power_mw, format_search_space, format_table
from repro.circuit.power import PAPER_POWER_MW, PowerModel
from repro.core.config import MSROPMConfig
from repro.experiments.problems import (
    PAPER_ITERATIONS,
    TABLE1_SIZES,
    default_config,
    scaled_iterations,
    scaled_problem,
    scaled_spec,
)
from repro.runtime.runner import ExperimentRunner, SolveRequest


@dataclass
class Table1Row:
    """One row of Table 1 (one benchmark problem)."""

    problem_name: str
    requested_nodes: int
    simulated_nodes: int
    num_edges: int
    iterations: int
    average_power_w: float
    top_accuracy: float
    mean_accuracy: float
    num_exact: int

    def search_space_text(self, num_colors: int = 4) -> str:
        """The search-space column (``4^n`` for the requested problem size)."""
        return format_search_space(self.requested_nodes, num_colors)


@dataclass
class Table1Result:
    """All rows of the Table 1 reproduction."""

    rows: List[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        """Render the table in the paper's layout (plus measured extras)."""
        headers = (
            "Graph size",
            "Search space",
            "Iterations",
            "Average power",
            "Top accuracy",
            "Mean accuracy",
            "Exact solutions",
        )
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.problem_name,
                    row.search_space_text(),
                    row.iterations,
                    format_power_mw(row.average_power_w),
                    f"{row.top_accuracy:.2f}",
                    f"{row.mean_accuracy:.2f}",
                    row.num_exact,
                ]
            )
        return format_table(headers, table_rows, title="Table 1: statistics from the simulations")

    def paper_power_comparison(self) -> Dict[int, Dict[str, float]]:
        """Modeled vs paper power (mW) for the problem sizes the paper lists."""
        comparison: Dict[int, Dict[str, float]] = {}
        for row in self.rows:
            paper_value = PAPER_POWER_MW.get(row.requested_nodes)
            if paper_value is not None:
                comparison[row.requested_nodes] = {
                    "paper_mw": paper_value,
                    "model_mw": row.average_power_w * 1e3,
                }
        return comparison


def plan_table1_requests(
    sizes: Sequence[int] = TABLE1_SIZES,
    iterations: Optional[int] = None,
    scale: float = 1.0,
    config: Optional[MSROPMConfig] = None,
    seed: int = 2025,
    engine: Optional[str] = None,
    precision: Optional[str] = None,
) -> List[SolveRequest]:
    """The solve requests Table 1 schedules: one per problem size.

    Shared with :func:`run_table1` and the suite planner so a suite-level
    warm pass produces byte-identical job hashes to a standalone Table 1 run.
    """
    config = config or default_config(seed)
    if engine is not None:
        config = config.with_updates(engine=engine)
    if precision is not None:
        config = config.with_updates(precision=precision)
    iterations = iterations if iterations is not None else scaled_iterations(scale)
    return [
        SolveRequest(
            spec=scaled_spec(requested, scale=scale),
            config=config,
            iterations=iterations,
            seed=seed + requested,
        )
        for requested in sizes
    ]


def run_table1(
    sizes: Sequence[int] = TABLE1_SIZES,
    iterations: Optional[int] = None,
    scale: float = 1.0,
    config: Optional[MSROPMConfig] = None,
    power_model: Optional[PowerModel] = None,
    seed: int = 2025,
    engine: Optional[str] = None,
    precision: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Table1Result:
    """Run the Table 1 experiment (optionally scaled) and collect the rows.

    ``engine`` selects the replica engine for the 40-iteration solves
    (``None`` keeps the config's engine, batched by default); ``precision``
    selects the tier (``None`` keeps the config's, exact by default).
    ``runner`` supplies the execution runtime (worker pool + result cache);
    ``None`` uses a serial, uncached runner, which reproduces the historical
    behaviour exactly.
    """
    runner = runner or ExperimentRunner()
    power_model = power_model or PowerModel()
    requests = plan_table1_requests(
        sizes=sizes,
        iterations=iterations,
        scale=scale,
        config=config,
        seed=seed,
        engine=engine,
        precision=precision,
    )
    solves = runner.solve_many(requests)
    result = Table1Result()
    for requested, request, solve in zip(sizes, requests, solves):
        problem = scaled_problem(requested, scale=scale)
        power = power_model.total_power(problem.graph.num_nodes, problem.graph.num_edges)
        result.rows.append(
            Table1Row(
                problem_name=f"{requested}-node",
                requested_nodes=requested,
                simulated_nodes=problem.graph.num_nodes,
                num_edges=problem.graph.num_edges,
                iterations=request.iterations,
                average_power_w=power,
                top_accuracy=float(solve.best_accuracy),
                mean_accuracy=float(solve.accuracies.mean()),
                num_exact=solve.num_exact_solutions,
            )
        )
    return result


def power_scaling_series(
    sizes: Sequence[int] = TABLE1_SIZES, power_model: Optional[PowerModel] = None
) -> Dict[int, float]:
    """Modeled average power (W) versus problem size — the Table 1 power column.

    Power is a pure circuit-model quantity (it does not require solving), so
    the full-size fabrics are always evaluated exactly.
    """
    power_model = power_model or PowerModel()
    series: Dict[int, float] = {}
    for requested in sizes:
        problem = scaled_problem(requested, scale=1.0)
        series[requested] = power_model.total_power(problem.graph.num_nodes, problem.graph.num_edges)
    return series
