"""Figure 3 reproduction: simulated ROSC waveforms across the computation cycles.

Figure 3 of the paper shows transistor-level waveforms of a few oscillators as
the MSROPM progresses through its five phases: (a) couplings on, (b) SHIL 1
injection and 2-phase binarization, (c) SHIL and couplings off for
re-initialization, (d) partitioned couplings on, and (e) SHIL 1 / SHIL 2
injection producing 4-phase stability.

The phase-domain reproduction runs a small King's graph with full trajectory
recording, reconstructs the oscillator output voltages from the phases, and
reports per-interval phase statistics (how many distinct phase clusters exist
in each interval — 2 after the first SHIL, 4 after the second).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import MSROPMConfig
from repro.core.machine import MSROPM
from repro.core.results import IterationResult
from repro.dynamics.integrators import Trajectory
from repro.dynamics.waveform import WaveformSet, reconstruct_waveforms
from repro.graphs.generators import kings_graph
from repro.ising.vector_potts import phases_to_spins
from repro.units import ns


@dataclass
class IntervalSnapshot:
    """Phase statistics at the end of one control interval."""

    label: str
    end_time: float
    num_phase_clusters: int
    cluster_populations: Dict[int, int]


@dataclass
class Figure3Result:
    """The Figure 3 reproduction: trajectory, waveforms and interval snapshots."""

    iteration: IterationResult
    trajectory: Trajectory
    waveforms: WaveformSet
    snapshots: List[IntervalSnapshot] = field(default_factory=list)
    traced_oscillators: Sequence[int] = ()

    @property
    def final_num_clusters(self) -> int:
        """Number of distinct phase clusters at the end of the run (4 for 4-coloring)."""
        return self.snapshots[-1].num_phase_clusters if self.snapshots else 0


def _cluster_phases(phases: np.ndarray, num_grid: int = 8) -> Dict[int, int]:
    """Histogram phases onto a fine grid and return the occupied grid points."""
    spins = phases_to_spins(phases, num_grid)
    populations: Dict[int, int] = {}
    for spin in spins:
        populations[int(spin)] = populations.get(int(spin), 0) + 1
    return populations


def run_figure3(
    rows: int = 4,
    cols: int = 4,
    config: Optional[MSROPMConfig] = None,
    seed: int = 7,
    num_traced_oscillators: int = 4,
    samples_per_period: int = 16,
) -> Figure3Result:
    """Simulate a small MSROPM run with full trajectory recording.

    A 4x4 King's graph keeps the waveform reconstruction small while showing
    every stage transition of Fig. 3; the traced oscillators are the first
    ``num_traced_oscillators`` nodes of the board.
    """
    config = config or MSROPMConfig(num_colors=4, seed=seed, record_every=1)
    graph = kings_graph(rows, cols)
    machine = MSROPM(graph, config)
    iteration = machine.run_iteration(iteration_index=0, seed=seed, collect_trajectory=True)
    trajectory = iteration.trajectory
    if trajectory is None:
        raise RuntimeError("trajectory collection was requested but not produced")

    traced = list(range(min(num_traced_oscillators, graph.num_nodes)))
    waveforms = reconstruct_waveforms(
        trajectory,
        traced,
        frequency=config.oscillator_frequency,
        samples_per_period=samples_per_period,
    )

    # Interval snapshots at each control boundary of the 2-stage schedule.
    timing = config.timing
    boundaries = []
    labels = []
    time = 0.0
    for stage in (1, 2):
        for label, duration in (
            (f"init-{stage}", timing.initialization),
            (f"anneal-{stage}", timing.annealing),
            (f"shil-{stage}", timing.shil_settling),
        ):
            time += duration
            boundaries.append(time)
            labels.append(label)

    snapshots: List[IntervalSnapshot] = []
    for label, boundary in zip(labels, boundaries):
        phases = trajectory.at_time(boundary)
        populations = _cluster_phases(phases)
        snapshots.append(
            IntervalSnapshot(
                label=label,
                end_time=boundary,
                num_phase_clusters=len(populations),
                cluster_populations=populations,
            )
        )
    return Figure3Result(
        iteration=iteration,
        trajectory=trajectory,
        waveforms=waveforms,
        snapshots=snapshots,
        traced_oscillators=traced,
    )


def render_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 reproduction as text (interval summary + ASCII waveforms)."""
    lines: List[str] = ["Figure 3: MSROPM computation cycles (phase-domain reproduction)"]
    for snapshot in result.snapshots:
        lines.append(
            f"  t = {snapshot.end_time * 1e9:5.1f} ns  after {snapshot.label:9s}  "
            f"occupied phase bins (of 8): {snapshot.num_phase_clusters}"
        )
    lines.append("")
    lines.append(f"Final 4-coloring accuracy of the traced run: {result.iteration.accuracy:.3f}")
    lines.append("")
    for index in list(result.traced_oscillators)[:2]:
        lines.append(f"Oscillator {index} output (reconstructed, full run):")
        lines.append(result.waveforms.as_ascii(index, width=72, height=6))
        lines.append("")
    return "\n".join(lines)
