"""Statistical equivalence of the throughput tier against the exact tier.

The throughput precision tier (``MSROPMConfig.precision = "throughput"``)
deliberately breaks the bit-identity contract — float32 state, one batched
noise stream for all replicas, moment-matched uniform increments — in
exchange for speed.  The claim that justifies it is *statistical* rather
than bitwise: over an ensemble of runs, the accuracy distribution it
produces is indistinguishable from the exact tier's.  This module is the
harness that checks that claim.

For each requested workload family the harness runs matched ensembles —
the same instances, iteration counts and base seeds — once per tier, pools
the per-iteration accuracies by family, and compares the two samples with

* a two-sample Kolmogorov–Smirnov test (distribution shape), and
* a seeded bootstrap confidence interval of the mean-accuracy difference
  (a TOST-style equivalence check: the CI must sit inside ``±tolerance``).

A family passes when the KS test does not reject at ``alpha`` *and* the
bootstrap CI lies within the equivalence margin.  Both ensembles route
through the experiment runtime, so the exact half of a harness run is
cache-shared with every other exact-tier experiment at the same seeds.

``msropm equivalence`` is the CLI entry; CI runs it at reduced scale on two
zoo families.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.analysis.reporting import format_table
from repro.core.config import MSROPMConfig
from repro.experiments.problems import default_config
from repro.experiments.scenario_matrix import plan_scenario_requests
from repro.runtime.runner import ExperimentRunner, SolveRequest
from repro.workloads.registry import expand_workloads

#: Families the harness compares by default: two independent random-graph
#: ensembles with very different degree structure.
DEFAULT_EQUIVALENCE_FAMILIES = ("er", "regular")

#: KS rejection level.  Deliberately strict-to-*reject* (small alpha): the
#: harness fails only on strong evidence the distributions differ.
DEFAULT_ALPHA = 0.01

#: Equivalence margin on the mean accuracy difference.  The bootstrap CI of
#: ``mean(throughput) - mean(exact)`` must sit inside ``±tolerance``.
DEFAULT_TOLERANCE = 0.05

#: Bootstrap resamples of the mean difference.
DEFAULT_BOOTSTRAP_SAMPLES = 2000


@dataclass(frozen=True)
class EquivalenceRow:
    """One family's exact-vs-throughput comparison."""

    family: str
    num_instances: int
    sample_size: int
    exact_mean: float
    throughput_mean: float
    mean_diff: float
    ci_low: float
    ci_high: float
    ks_statistic: float
    ks_pvalue: float
    ks_ok: bool
    ci_ok: bool

    @property
    def equivalent(self) -> bool:
        """Whether this family passes both checks."""
        return self.ks_ok and self.ci_ok


@dataclass
class EquivalenceResult:
    """Everything one harness invocation produced."""

    rows: List[EquivalenceRow] = field(default_factory=list)
    iterations: int = 0
    alpha: float = DEFAULT_ALPHA
    tolerance: float = DEFAULT_TOLERANCE
    wall_time_s: float = 0.0
    runner_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """``True`` when every compared family is statistically equivalent."""
        return bool(self.rows) and all(row.equivalent for row in self.rows)

    def render(self) -> str:
        """Render the per-family comparison and the verdict."""
        table_rows = [
            [
                row.family,
                row.num_instances,
                row.sample_size,
                f"{row.exact_mean:.4f}",
                f"{row.throughput_mean:.4f}",
                f"{row.mean_diff:+.4f}",
                f"[{row.ci_low:+.4f}, {row.ci_high:+.4f}]",
                f"{row.ks_statistic:.3f}",
                f"{row.ks_pvalue:.3f}",
                "yes" if row.equivalent else "NO",
            ]
            for row in self.rows
        ]
        table = format_table(
            (
                "Family",
                "Instances",
                "Samples/tier",
                "Exact mean",
                "Throughput mean",
                "Mean diff",
                f"Bootstrap CI (tol ±{self.tolerance:g})",
                "KS stat",
                "KS p",
                "Equivalent",
            ),
            table_rows,
            title="Exact vs throughput tier: statistical equivalence",
        )
        verdict = (
            "equivalence: PASS — the throughput tier is statistically "
            "indistinguishable from the exact tier on every compared family"
            if self.passed
            else "equivalence: FAIL — at least one family's accuracy "
            "distribution differs between the tiers"
        )
        return f"{table}\n\n{verdict}"


def bootstrap_mean_difference_ci(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    num_samples: int = DEFAULT_BOOTSTRAP_SAMPLES,
    confidence: float = 0.99,
    seed: int = 0,
) -> Tuple[float, float]:
    """Seeded percentile-bootstrap CI of ``mean(a) - mean(b)``.

    Deterministic per seed, so harness runs are reproducible end to end.
    """
    if len(sample_a) == 0 or len(sample_b) == 0:
        raise ConfigurationError("bootstrap needs non-empty samples")
    rng = np.random.default_rng(seed)
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    draws_a = rng.integers(0, len(a), size=(num_samples, len(a)))
    draws_b = rng.integers(0, len(b), size=(num_samples, len(b)))
    diffs = a[draws_a].mean(axis=1) - b[draws_b].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(diffs, [tail, 1.0 - tail])
    return float(low), float(high)


def plan_equivalence_requests(
    families: Sequence[str] = DEFAULT_EQUIVALENCE_FAMILIES,
    iterations: int = 20,
    seed: int = 2025,
    config: Optional[MSROPMConfig] = None,
) -> List[SolveRequest]:
    """Both tiers' solve requests: the matched ensembles, exact first.

    Reuses the scenario matrix's planner per tier, so the exact half shares
    job hashes (and therefore cache entries) with scenario/suite runs at the
    same seeds, and the throughput half exercises exactly the jobs a
    throughput-tier scenario run would schedule.
    """
    if iterations < 2:
        raise ConfigurationError("the equivalence harness needs at least 2 iterations")
    instances = expand_workloads(list(families), base_seed=seed)
    base = config or default_config(seed)
    requests: List[SolveRequest] = []
    for precision in ("exact", "throughput"):
        requests.extend(
            plan_scenario_requests(
                instances,
                iterations=iterations,
                seed=seed,
                config=base,
                precision=precision,
            )
        )
    return requests


def run_equivalence(
    families: Sequence[str] = DEFAULT_EQUIVALENCE_FAMILIES,
    iterations: int = 20,
    seed: int = 2025,
    config: Optional[MSROPMConfig] = None,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
    bootstrap_samples: int = DEFAULT_BOOTSTRAP_SAMPLES,
    runner: Optional[ExperimentRunner] = None,
) -> EquivalenceResult:
    """Run matched exact/throughput ensembles and test their equivalence.

    ``families`` selects the zoo ensembles (at least one; the default
    compares two).  Accuracies are pooled per family across its instances,
    giving one KS test and one bootstrap CI per family.
    """
    from scipy import stats

    if not families:
        raise ConfigurationError("the equivalence harness needs at least one family")
    runner = runner or ExperimentRunner()
    start = time.perf_counter()
    instances = expand_workloads(list(families), base_seed=seed)
    requests = plan_equivalence_requests(
        families=families, iterations=iterations, seed=seed, config=config
    )
    solves = runner.solve_many(requests)
    half = len(instances)
    exact_solves, throughput_solves = solves[:half], solves[half:]

    pooled: Dict[str, Dict[str, List[float]]] = {}
    counts: Dict[str, int] = {}
    for instance, exact, throughput in zip(instances, exact_solves, throughput_solves):
        bucket = pooled.setdefault(instance.family, {"exact": [], "throughput": []})
        bucket["exact"].extend(float(value) for value in exact.accuracies)
        bucket["throughput"].extend(float(value) for value in throughput.accuracies)
        counts[instance.family] = counts.get(instance.family, 0) + 1

    result = EquivalenceResult(
        iterations=iterations, alpha=alpha, tolerance=tolerance
    )
    for family in dict.fromkeys(instance.family for instance in instances):
        exact_sample = np.array(pooled[family]["exact"], dtype=float)
        throughput_sample = np.array(pooled[family]["throughput"], dtype=float)
        ks = stats.ks_2samp(exact_sample, throughput_sample)
        ci_low, ci_high = bootstrap_mean_difference_ci(
            throughput_sample,
            exact_sample,
            num_samples=bootstrap_samples,
            seed=seed,
        )
        mean_diff = float(throughput_sample.mean() - exact_sample.mean())
        result.rows.append(
            EquivalenceRow(
                family=family,
                num_instances=counts[family],
                sample_size=len(exact_sample),
                exact_mean=float(exact_sample.mean()),
                throughput_mean=float(throughput_sample.mean()),
                mean_diff=mean_diff,
                ci_low=ci_low,
                ci_high=ci_high,
                ks_statistic=float(ks.statistic),
                ks_pvalue=float(ks.pvalue),
                ks_ok=bool(ks.pvalue >= alpha),
                ci_ok=bool(-tolerance <= ci_low and ci_high <= tolerance),
            )
        )
    result.wall_time_s = time.perf_counter() - start
    result.runner_stats = runner.stats()
    return result
