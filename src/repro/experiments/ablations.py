"""Design-choice ablations (not a paper table, but the paper's stated trade-offs).

Section 2.3 and Section 4.1 of the paper describe the design parameters that
were tuned empirically: coupling strength (too strong halts the oscillation),
SHIL strength (too weak fails to discretize, too strong deforms waveforms),
and the per-stage annealing time (20 ns was "empirically determined to be
enough").  These ablations quantify those trade-offs on the 49-node benchmark
using the sweep harness, and additionally compare the multi-stage 2-SHIL
approach against the single-stage N-SHIL architecture on the same instance —
the paper's central architectural claim.

Every sweep accepts a ``runner`` (:class:`repro.runtime.runner.ExperimentRunner`)
and forwards it to :mod:`repro.analysis.sweep`, which expands the grid into
runtime solve jobs — so ablations shard across worker processes and reuse the
result cache like every other experiment.  ``None`` keeps the serial,
uncached behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.sweep import (
    SweepResult,
    annealing_time_sweep,
    coupling_strength_sweep,
    shil_strength_sweep,
)
from repro.baselines.single_stage_ropm import SingleStageROPM
from repro.core.config import MSROPMConfig
from repro.experiments.problems import default_config
from repro.graphs.generators import kings_graph
from repro.units import ns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runner import ExperimentRunner


@dataclass
class MultiVsSingleStageResult:
    """Accuracy of the multi-stage MSROPM vs the single-stage N-SHIL ROPM."""

    multi_stage_accuracies: np.ndarray
    single_stage_accuracies: np.ndarray

    @property
    def multi_stage_mean(self) -> float:
        """Mean accuracy of the multi-stage machine."""
        return float(self.multi_stage_accuracies.mean())

    @property
    def single_stage_mean(self) -> float:
        """Mean accuracy of the single-stage machine."""
        return float(self.single_stage_accuracies.mean())

    @property
    def advantage(self) -> float:
        """Mean-accuracy advantage of the multi-stage approach."""
        return self.multi_stage_mean - self.single_stage_mean


def run_coupling_ablation(
    rows: int = 7,
    strengths: Sequence[float] = (0.02, 0.05, 0.1, 0.2, 0.4),
    iterations: int = 5,
    config: Optional[MSROPMConfig] = None,
    seed: int = 11,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Sweep the B2B coupling strength on a ``rows x rows`` King's graph."""
    graph = kings_graph(rows, rows)
    return coupling_strength_sweep(
        graph,
        strengths,
        base_config=config or default_config(seed),
        iterations=iterations,
        seed=seed,
        runner=runner,
    )


def run_shil_ablation(
    rows: int = 7,
    strengths: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 0.9),
    iterations: int = 5,
    config: Optional[MSROPMConfig] = None,
    seed: int = 12,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Sweep the SHIL injection strength on a ``rows x rows`` King's graph."""
    graph = kings_graph(rows, rows)
    return shil_strength_sweep(
        graph,
        strengths,
        base_config=config or default_config(seed),
        iterations=iterations,
        seed=seed,
        runner=runner,
    )


def run_annealing_time_ablation(
    rows: int = 7,
    annealing_times_ns: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 40.0),
    iterations: int = 5,
    config: Optional[MSROPMConfig] = None,
    seed: int = 13,
    runner: Optional["ExperimentRunner"] = None,
) -> SweepResult:
    """Sweep the per-stage annealing duration (the paper's empirically chosen 20 ns)."""
    graph = kings_graph(rows, rows)
    times = [ns(value) for value in annealing_times_ns]
    return annealing_time_sweep(
        graph,
        times,
        base_config=config or default_config(seed),
        iterations=iterations,
        seed=seed,
        runner=runner,
    )


def run_detuning_ablation(
    rows: int = 7,
    detuning_stds: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05),
    iterations: int = 5,
    config: Optional[MSROPMConfig] = None,
    seed: int = 15,
    runner: Optional["ExperimentRunner"] = None,
):
    """Ablation: robustness to static oscillator frequency mismatch (process variation).

    The paper simulates identical oscillators; real 65 nm rings spread by a few
    per-mill to a few per-cent.  Injection locking tolerates mismatch only up
    to its locking range, so the accuracy should be flat for small mismatch and
    degrade once the detuning becomes comparable to the SHIL/coupling rates.
    """
    from repro.analysis.sweep import sweep_configuration

    graph = kings_graph(rows, rows)
    base = config or default_config(seed)
    return sweep_configuration(
        graph,
        base,
        {"frequency_detuning_std": list(detuning_stds)},
        iterations=iterations,
        seed=seed,
        runner=runner,
    )


def run_multi_vs_single_stage(
    rows: int = 7,
    iterations: int = 10,
    config: Optional[MSROPMConfig] = None,
    seed: int = 14,
    runner: Optional["ExperimentRunner"] = None,
) -> MultiVsSingleStageResult:
    """Compare 4-coloring via 2 stages (MSROPM) against 4-coloring via one 4-SHIL stage.

    The single-stage machine must discretize phases at 4 points in one shot
    (a 4th-order SHIL); the paper argues the multi-stage decomposition reaches
    higher accuracy because each stage only needs robust binary discrimination.
    """
    from repro.runtime.runner import ExperimentRunner

    graph = kings_graph(rows, rows)
    config = config or default_config(seed)
    runner = runner or ExperimentRunner()
    multi = runner.solve(graph, config, iterations=iterations, seed=seed)
    single = SingleStageROPM(graph, num_colors=4, config=config).solve(iterations=iterations, seed=seed)
    return MultiVsSingleStageResult(
        multi_stage_accuracies=multi.accuracies,
        single_stage_accuracies=single.accuracies,
    )
