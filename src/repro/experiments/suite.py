"""The full evaluation suite: every table and figure in one sharded pass.

``msropm suite`` reproduces the paper's whole evaluation grid — Table 1,
Table 2 and Figure 5 — through a single :class:`ExperimentRunner`.  The suite
first collects every experiment's planned solve requests (via the per-module
``plan_*_requests`` helpers) and submits them as **one batch**, so the
process pool shards the union of all jobs freely; duplicate jobs across
experiments (Fig. 5 re-plots the sizes Table 1 solves, under the same seeds)
are deduplicated by content hash and solved once.  The individual experiments
then run against the warmed runner and resolve entirely from its memo/cache.

With a persistent cache directory, a second ``msropm suite`` invocation skips
every solve and renders straight from disk.

The suite also exists as the built-in ``suite`` *campaign*
(:mod:`repro.campaigns.builtin`): the same planners as separate ledgered
stages with the Table 1 / Fig. 5 overlap as an explicit dependency, which is
the resumable form (``msropm campaign run suite``).  Both forms share job
hashes, so either one warms the other's cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import MSROPMConfig
from repro.experiments.fig5_accuracy import (
    Figure5Result,
    plan_figure5_requests,
    render_figure5,
    run_figure5,
)
from repro.experiments.table1_stats import Table1Result, plan_table1_requests, run_table1
from repro.experiments.table2_comparison import (
    Table2Result,
    plan_table2_requests,
    run_table2,
)
from repro.runtime.runner import ExperimentRunner, SolveRequest


@dataclass
class SuiteResult:
    """Everything one suite invocation produced."""

    table1: Table1Result
    table2: Table2Result
    figure5: Figure5Result
    wall_time_s: float
    runner_stats: Dict[str, int]
    workers: int

    def render(self) -> str:
        """Render the full evaluation plus a runtime summary."""
        stats = self.runner_stats
        summary = (
            f"suite finished in {self.wall_time_s:.1f}s with {self.workers} worker(s): "
            f"{stats['jobs_run']} job(s) solved, "
            f"{stats['cache_hits']} cache hit(s), {stats['cache_stores']} store(s)"
        )
        stale = stats.get("cache_stale_misses", 0)
        if stale:
            summary += (
                f"\nnote: {stale} cache entr{'y' if stale == 1 else 'ies'} were stale "
                "(schema or tier change) and recomputed"
            )
        return "\n\n".join(
            [
                self.table1.render(),
                self.table2.render(),
                render_figure5(self.figure5),
                summary,
            ]
        )


def plan_suite_requests(
    scale: float = 1.0,
    iterations: Optional[int] = None,
    seed: int = 2025,
    config: Optional[MSROPMConfig] = None,
    engine: Optional[str] = None,
    precision: Optional[str] = None,
) -> List[SolveRequest]:
    """The union of all solve requests the suite's experiments schedule.

    Reuses each experiment's own planner, so the job hashes here are exactly
    the hashes the standalone experiments compute — the warm pass and the
    per-experiment runs address the same cache entries.
    """
    shared = dict(
        iterations=iterations,
        scale=scale,
        config=config,
        seed=seed,
        engine=engine,
        precision=precision,
    )
    requests: List[SolveRequest] = []
    requests.extend(plan_table1_requests(**shared))
    requests.extend(plan_table2_requests(**shared))
    requests.extend(plan_figure5_requests(**shared))
    return requests


def run_suite(
    scale: float = 1.0,
    iterations: Optional[int] = None,
    seed: int = 2025,
    config: Optional[MSROPMConfig] = None,
    engine: Optional[str] = None,
    precision: Optional[str] = None,
    runner: Optional[ExperimentRunner] = None,
) -> SuiteResult:
    """Run the whole evaluation (Tables 1-2, Figure 5) through one runner.

    ``runner`` supplies the worker pool and cache (``None`` = serial,
    uncached).  Per seed, the results are bit-identical regardless of the
    runner's worker count (the throughput tier is equally deterministic per
    seed, though not bit-identical to the exact tier).
    """
    runner = runner or ExperimentRunner()
    start = time.perf_counter()
    shared = dict(
        iterations=iterations,
        scale=scale,
        config=config,
        seed=seed,
        engine=engine,
        precision=precision,
    )

    # One sharded pass over the union of all jobs (deduplicated by hash).
    runner.solve_many(plan_suite_requests(**shared))

    # The experiments now resolve from the warmed runner.
    table1 = run_table1(runner=runner, **shared)
    table2 = run_table2(runner=runner, **shared)
    figure5 = run_figure5(runner=runner, **shared)
    wall = time.perf_counter() - start
    return SuiteResult(
        table1=table1,
        table2=table2,
        figure5=figure5,
        wall_time_s=wall,
        runner_stats=runner.stats(),
        workers=runner.workers,
    )
